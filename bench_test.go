package binetrees

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/harness"
	"binetrees/internal/netsim"
	"binetrees/internal/synth"
	"binetrees/internal/topology"
)

// Execution microbenchmarks: real collective executions on the in-process
// fabric, one sub-benchmark per algorithm family, matching the paper's
// per-collective comparisons.

func benchAllreduce(b *testing.B, algo string, p, n int) {
	b.Helper()
	a, ok := coll.Find(coll.Registry(), coll.CAllreduce, algo)
	if !ok {
		b.Fatalf("algorithm %s not registered", algo)
	}
	run, err := a.Make(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	f := fabric.NewMem(p)
	defer f.Close()
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fabric.Run(f, func(c fabric.Comm) error {
			return run(coll.Offset(c, i<<16), 0, make([]int32, n), nil, coll.OpSum)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	const p, n = 64, 1 << 14
	for _, algo := range []string{"bine-bw", "bine-lat", "rabenseifner", "recursive-doubling", "ring", "swing"} {
		b.Run(algo, func(b *testing.B) { benchAllreduce(b, algo, p, n) })
	}
}

func BenchmarkReduceScatterStrategies(b *testing.B) {
	// The four non-contiguous-data strategies of Sec. 4.3.1 head to head.
	const p, n = 64, 1 << 14
	for _, algo := range []string{"bine-permute", "bine-send", "bine-block", "bine-two-trans", "recursive-halving"} {
		a, ok := coll.Find(coll.Registry(), coll.CReduceScatter, algo)
		if !ok {
			b.Fatalf("algorithm %s not registered", algo)
		}
		b.Run(algo, func(b *testing.B) {
			run, err := a.Make(p, 0)
			if err != nil {
				b.Fatal(err)
			}
			f := fabric.NewMem(p)
			defer f.Close()
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := fabric.Run(f, func(c fabric.Comm) error {
					out := make([]int32, n/p)
					return run(coll.Offset(c, i<<16), 0, make([]int32, n), out, coll.OpSum)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBcastTrees(b *testing.B) {
	const p, n = 128, 1 << 12
	for _, kind := range []core.Kind{core.BineDH, core.BinomialDD, core.BinomialDH} {
		b.Run(kind.String(), func(b *testing.B) {
			tree := core.MustTree(kind, p, 0)
			f := fabric.NewMem(p)
			defer f.Close()
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := fabric.Run(f, func(c fabric.Comm) error {
					return coll.Bcast(coll.Offset(c, i<<16), tree, make([]int32, n))
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoreConstruction(b *testing.B) {
	// Schedule construction cost (amortized once per communicator in MPI).
	b.Run("tree-bine-dh-4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewTree(core.BineDH, 4096, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("butterfly-bine-dd-4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewButterfly(core.BflyBineDD, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("negabinary-roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if core.NBToRank(core.RankToNB(i&1023, 1024), 1024) != i&1023 {
				b.Fatal("roundtrip")
			}
		}
	})
}

// Paper-artifact benchmarks: one per table and figure, each timing the full
// regeneration of that artifact (quick sweep; `binebench -full` runs the
// paper-scale version).

func benchArtifact(b *testing.B, run func(ctx context.Context, w io.Writer, opts harness.Options) error) {
	b.Helper()
	opts := harness.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		// Drop the process-wide trace cache so every iteration — and every
		// benchmark, regardless of run order — records its schedules from
		// scratch, as the serial engine did.
		harness.ResetTraceCache()
		if err := run(context.Background(), io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01Broadcast(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, _ harness.Options) error { return harness.Fig1(ctx, w) })
}

func BenchmarkEq2Distances(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, _ harness.Options) error { return harness.Eq2(ctx, w) })
}

func BenchmarkFig05AllocationStudy(b *testing.B) {
	benchArtifact(b, harness.Fig5)
}

func BenchmarkTable3LUMI(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.TableBinomial(ctx, w, harness.LUMI(), o)
	})
}

func BenchmarkFig09aHeatmapLUMI(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.HeatmapAllreduce(ctx, w, harness.LUMI(), o)
	})
}

func BenchmarkFig09bBoxplotsLUMI(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.Boxplots(ctx, w, harness.LUMI(), o)
	})
}

func BenchmarkTable4Leonardo(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.TableBinomial(ctx, w, harness.Leonardo(), o)
	})
}

func BenchmarkFig10aHeatmapLeonardo(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.HeatmapAllreduce(ctx, w, harness.Leonardo(), o)
	})
}

func BenchmarkFig10bBoxplotsLeonardo(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.Boxplots(ctx, w, harness.Leonardo(), o)
	})
}

func BenchmarkTable5MareNostrum(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.TableBinomial(ctx, w, harness.MareNostrum(), o)
	})
}

func BenchmarkFig11aBoxplotsMareNostrum(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, o harness.Options) error {
		return harness.Boxplots(ctx, w, harness.MareNostrum(), o)
	})
}

func BenchmarkFig11bFugaku(b *testing.B) {
	benchArtifact(b, harness.Fig11b)
}

func BenchmarkFig14Strategies(b *testing.B) {
	benchArtifact(b, harness.Fig14)
}

func BenchmarkHierarchicalAllreduce(b *testing.B) {
	benchArtifact(b, harness.Hier)
}

func BenchmarkAppDTorus(b *testing.B) {
	benchArtifact(b, func(ctx context.Context, w io.Writer, _ harness.Options) error { return harness.AppD(ctx, w) })
}

// BenchmarkSweepParallel tracks the worker-pool speedup of the sweep
// engine: the same quick allreduce sweep (heatmap artifact) on one worker
// vs one per CPU. The trace cache is dropped every iteration so both widths
// record their schedules from scratch.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			opts := harness.Options{Quick: true, Workers: workers}
			for i := 0; i < b.N; i++ {
				harness.ResetTraceCache()
				if err := harness.HeatmapAllreduce(context.Background(), io.Discard, harness.LUMI(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	harness.ResetTraceCache()
}

// BenchmarkSweepStore tracks the persistent trace store: the same quick
// allreduce sweep (heatmap artifact) with no store, a cold store (records
// and writes through every schedule) and a warm store (loads every schedule
// from disk, zero recordings). The in-process cache is dropped every
// iteration so the store tier is what's measured.
func BenchmarkSweepStore(b *testing.B) {
	sweep := func(b *testing.B) {
		if err := harness.HeatmapAllreduce(context.Background(), io.Discard, harness.LUMI(), harness.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
	restore := func(b *testing.B) {
		if err := harness.SetTraceStore(""); err != nil {
			b.Fatal(err)
		}
		harness.ResetTraceCache()
	}
	b.Run("no-store", func(b *testing.B) {
		defer restore(b)
		for i := 0; i < b.N; i++ {
			harness.ResetTraceCache()
			sweep(b)
		}
	})
	b.Run("cold-store", func(b *testing.B) {
		defer restore(b)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "tracestore-bench-*")
			if err != nil {
				b.Fatal(err)
			}
			harness.ResetTraceCache()
			b.StartTimer()
			if err := harness.SetTraceStore(dir); err != nil {
				b.Fatal(err)
			}
			sweep(b)
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})
	b.Run("warm-store", func(b *testing.B) {
		defer restore(b)
		dir := b.TempDir()
		if err := harness.SetTraceStore(dir); err != nil {
			b.Fatal(err)
		}
		harness.ResetTraceCache()
		sweep(b) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			harness.ResetTraceCache()
			sweep(b)
		}
	})
}

// BenchmarkSynthRing tracks the cold-path trajectory record → synth for the
// suite's heaviest flat schedule (allreduce/ring): direct synthesis from
// schedule math vs the same schedule executed on the recording goroutine
// fabric at p=1024, plus — skipped under -short — synthesis at the
// paper-scale p=8192 the Fugaku sweep needs (its ~134M-record trace is
// exactly the recording synthesis exists to avoid, so the fabric leg stays
// at p=1024). Replay cost for comparison lives in
// BenchmarkEvaluateSizes/BENCH_pipeline.json.
func BenchmarkSynthRing(b *testing.B) {
	a, ok := coll.Find(coll.Registry(), coll.CAllreduce, "ring")
	if !ok {
		b.Fatal("ring not registered")
	}
	synthBench := func(p int) func(b *testing.B) {
		return func(b *testing.B) {
			s, err := a.Pattern(p, 0, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Schedule(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("synth-p1024", synthBench(1024))
	b.Run("record-p1024", func(b *testing.B) {
		run, err := a.Make(1024, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			rec := fabric.NewRecorder(fabric.NewMem(1024))
			err := fabric.Run(rec, func(c fabric.Comm) error {
				return run(c, 0, make([]int32, 1024), nil, coll.OpSum)
			})
			if err != nil {
				b.Fatal(err)
			}
			rec.Trace()
			rec.Close()
		}
	})
	if !testing.Short() {
		b.Run("synth-p8192", synthBench(8192))
	}
}

// BenchmarkEvaluateSizes compares per-size trace replay against the batched
// evaluator over the paper's nine-size ladder: EvaluateSizes replays the
// topology once and derives each size arithmetically, returning bit-identical
// Results.
func BenchmarkEvaluateSizes(b *testing.B) {
	const p = 256
	a, ok := coll.Find(coll.Registry(), coll.CAllreduce, "bine-bw")
	if !ok {
		b.Fatal("bine-bw not registered")
	}
	run, err := a.Make(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	rec := fabric.NewRecorder(fabric.NewMem(p))
	err = fabric.Run(rec, func(c fabric.Comm) error {
		return run(c, 0, make([]int32, p), nil, coll.OpSum)
	})
	rec.Close()
	if err != nil {
		b.Fatal(err)
	}
	tr := rec.Trace()
	topo, err := topology.NewUpDown(topology.UpDownConfig{
		Name: "bench", Groups: 8, NodesPerGroup: p / 8, NICBW: 25e9, Oversub: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	placement := make([]int, p)
	for i := range placement {
		placement[i] = i
	}
	sizes := harness.VectorSizes()
	elemBytes := make([]float64, len(sizes))
	for si, size := range sizes {
		elemBytes[si] = float64(size) / float64(p)
	}
	params := harness.LUMI().Params
	b.Run("per-size-evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, eb := range elemBytes {
				if _, err := netsim.Evaluate(tr, topo, params, netsim.Eval{
					Placement: placement, ElemBytes: eb, Reduces: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("evaluate-sizes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.EvaluateSizes(tr, topo, params, netsim.Eval{
				Placement: placement, Reduces: true,
			}, elemBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI measures the façade overhead end to end.
func BenchmarkPublicAPI(b *testing.B) {
	for _, p := range []int{16, 64} {
		b.Run(fmt.Sprintf("allreduce-p%d", p), func(b *testing.B) {
			cl := NewCluster(p)
			defer cl.Close()
			n := p * 64
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := cl.Run(func(r *Rank) error {
					return r.Allreduce(make([]int32, n))
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
