package binetrees_test

import (
	"fmt"

	"binetrees"
)

// The smallest complete program: an allreduce across 8 in-process ranks
// with the default Bine algorithms.
func ExampleCluster() {
	cl := binetrees.NewCluster(8)
	defer cl.Close()
	err := cl.Run(func(r *binetrees.Rank) error {
		buf := []int32{int32(r.ID()), 1}
		if err := r.Allreduce(buf); err != nil {
			return err
		}
		if r.ID() == 0 {
			fmt.Println(buf[0], buf[1])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: 28 8
}

// Rooted collectives take options: the root rank, the reduction operator,
// or a specific algorithm from the registry.
func ExampleRank_Reduce() {
	cl := binetrees.NewCluster(4)
	defer cl.Close()
	err := cl.Run(func(r *binetrees.Rank) error {
		in := []int32{int32(r.ID())}
		out := make([]int32, 1)
		if err := r.Reduce(in, out, binetrees.WithRoot(2), binetrees.WithOp(binetrees.OpMax)); err != nil {
			return err
		}
		if r.ID() == 2 {
			fmt.Println("max:", out[0])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: max: 3
}

// Recording captures the communication schedule so the paper's headline
// metric — traffic crossing group boundaries — can be computed for any
// rank-to-group placement.
func ExampleGlobalTraffic() {
	cl := binetrees.NewCluster(8)
	defer cl.Close()
	cl.EnableRecording()
	err := cl.Run(func(r *binetrees.Rank) error {
		buf := make([]int32, 8)
		return r.Allreduce(buf, binetrees.WithAlgorithm("bine-bw"))
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	groupOf := []int{0, 0, 0, 0, 1, 1, 1, 1} // two groups of four
	global, total := binetrees.GlobalTraffic(cl.Trace(), groupOf)
	fmt.Printf("global %d of %d elements\n", global, total)
	// Output: global 24 of 112 elements
}

// Torus collectives treat ranks as coordinates (Appendix D of the paper).
func ExampleRank_TorusAllreduce() {
	cl := binetrees.NewCluster(16)
	defer cl.Close()
	err := cl.Run(func(r *binetrees.Rank) error {
		buf := make([]int32, 16)
		for i := range buf {
			buf[i] = 1
		}
		if err := r.TorusAllreduce([]int{4, 4}, buf); err != nil {
			return err
		}
		if r.ID() == 5 {
			fmt.Println("sum:", buf[0])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum: 16
}
