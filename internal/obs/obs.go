// Package obs is the pipeline's dependency-free observability substrate:
// monotonic counters, gauges, and fixed-bucket latency histograms collected
// in a process-wide registry, plus a lightweight span/trace layer (span.go)
// that turns one request's stage timings into a timeline. The registry
// exposes itself three ways — hand-rolled Prometheus text exposition
// (WritePrometheus, no client library), a JSON snapshot (WriteJSON, the
// binebench -obs-json dump), and per-histogram quantile summaries — so the
// sweep CLI, the artifact service, and CI all read the same vocabulary.
//
// Everything is stdlib-only and safe for concurrent use; metric operations
// (Inc/Add/Set/Observe) are lock-free atomics so instrumented hot paths pay
// a few nanoseconds, never a lock or an allocation.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds in seconds: roughly
// exponential from 100µs (a warm cache lookup) to 60s (a full-scale cold
// render stage), the range the pipeline's stages actually span.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Default is the process-wide registry every instrumented package reports
// into; /metrics and -obs-json expose it.
var Default = NewRegistry()

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every label variant of one metric name under one HELP/TYPE
// pair, the unit Prometheus exposition is organized around.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64
	mu      sync.Mutex
	metrics map[string]any // canonical label string → metric
}

// Registry is a set of named metrics. Metrics are created on first use and
// returned on every later request with the same (name, labels) — callers
// cache the returned pointer, so steady-state observation never touches the
// registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default; tests that
// assert exact counts or exposition bytes build their own.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString canonicalizes alternating key/value label pairs into the
// rendered `key="value",...` form, sorted by key, that identifies a metric
// within its family and prints verbatim in the exposition.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, metrics: map[string]any{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels []string, mk func() any) any {
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[ls]
	if !ok {
		m = mk()
		f.metrics[ls] = m
	}
	return m
}

// Counter returns the monotonic counter for (name, labels), creating it if
// needed. labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, counterType, nil)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the settable gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, gaugeType, nil)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// the form used for values another subsystem already tracks (queue depth on
// the resident pool, uptime, readiness). Re-registering the same (name,
// labels) replaces the callback. The returned func unregisters the callback
// so an owner being shut down stops getting invoked (and stops being pinned)
// by scrapes; it is a no-op once a later registration has replaced this one,
// so a stale unregister can never drop a successor's callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) func() {
	f := r.family(name, help, gaugeType, nil)
	ls := labelString(labels)
	m := &gaugeFunc{fn: fn}
	f.mu.Lock()
	f.metrics[ls] = m
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		if f.metrics[ls] == any(m) {
			delete(f.metrics, ls)
		}
		f.mu.Unlock()
	}
}

// Histogram returns the fixed-bucket histogram for (name, labels). buckets
// are ascending upper bounds (an implicit +Inf bucket is appended); nil
// selects DefBuckets. The bucket layout is fixed by the first registration
// of the name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, histogramType, buckets)
	return f.get(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (CAS loop, safe concurrently).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a pointer-identified callback gauge entry: the pointer
// identity lets GaugeFunc's unregister handle tell "still mine" from
// "replaced by a later registration".
type gaugeFunc struct{ fn func() float64 }

// Histogram is a fixed-bucket latency histogram: per-bucket counts, a total
// count and a sum, all atomics. Quantiles are estimated by linear
// interpolation within the crossing bucket (the same estimate Prometheus's
// histogram_quantile makes from the exposition).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (for latency histograms: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the `le` bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// bucketCounts snapshots the per-bucket counts (not cumulative) — the raw
// material Window deltas against for recent-quantile estimates.
func (h *Histogram) bucketCounts() []uint64 {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts:
// linear interpolation between the crossing bucket's bounds, the highest
// finite bound for observations in the +Inf bucket, and 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileOver(h.bounds, h.bucketCounts(), q)
}

// quantileOver is the interpolation core shared by lifetime and windowed
// quantiles: counts are per-bucket (bounds plus a trailing +Inf bucket).
func quantileOver(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(bounds) { // +Inf bucket: clamp to the last finite bound
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// HistogramSummary is the digest of one histogram: count, sum, and the
// p50/p95/p99 latency estimates.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary digests the histogram.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// MetricSnapshot is one metric's state in a registry Snapshot.
type MetricSnapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"` // canonical `k="v",...` form
	Type   string `json:"type"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Histogram holds the digest for histogram metrics.
	Histogram *HistogramSummary `json:"histogram,omitempty"`
	// Buckets holds the cumulative per-bucket counts (le → count).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket: observations <= LE.
type BucketCount struct {
	LE    float64 `json:"le"` // +Inf encodes as math.Inf(1)
	Count uint64  `json:"count"`
}

// Snapshot captures every metric, sorted by name then labels — the single
// source for both exposition formats.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var out []MetricSnapshot
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.metrics))
		for k := range f.metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := MetricSnapshot{Name: f.name, Labels: k, Type: f.typ.String()}
			switch m := f.metrics[k].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *gaugeFunc:
				s.Value = m.fn()
			case *Histogram:
				sum := m.Summary()
				s.Histogram = &sum
				var cum uint64
				for i := range m.counts {
					cum += m.counts[i].Load()
					le := math.Inf(1)
					if i < len(m.bounds) {
						le = m.bounds[i]
					}
					s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
				}
			}
			out = append(out, s)
		}
		f.mu.Unlock()
	}
	return out
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

func writeSeries(w io.Writer, name, labels, suffix, extraLabel, value string) error {
	ls := labels
	if extraLabel != "" {
		if ls != "" {
			ls += ","
		}
		ls += extraLabel
	}
	if ls != "" {
		ls = "{" + ls + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s%s %s\n", name, suffix, ls, value)
	return err
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE per family, counters and gauges as single
// series, histograms as cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	r.mu.Lock()
	helps := make(map[string]string, len(r.families))
	for n, f := range r.families {
		helps[n] = f.help
	}
	r.mu.Unlock()
	lastName := ""
	for _, s := range snaps {
		if s.Name != lastName {
			lastName = s.Name
			if h := helps[s.Name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, strings.ReplaceAll(h, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
		}
		if s.Histogram == nil {
			if err := writeSeries(w, s.Name, s.Labels, "", "", formatValue(s.Value)); err != nil {
				return err
			}
			continue
		}
		for _, b := range s.Buckets {
			le := fmt.Sprintf(`le="%s"`, formatLE(b.LE))
			if err := writeSeries(w, s.Name, s.Labels, "_bucket", le, strconv.FormatUint(b.Count, 10)); err != nil {
				return err
			}
		}
		if err := writeSeries(w, s.Name, s.Labels, "_sum", "", strconv.FormatFloat(s.Histogram.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		if err := writeSeries(w, s.Name, s.Labels, "_count", "", strconv.FormatUint(s.Histogram.Count, 10)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
