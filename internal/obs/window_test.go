package obs

import (
	"testing"
	"time"
)

// fakeClock drives a Window's epoch rotation deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newWindowAt(h *Histogram, interval time.Duration, c *fakeClock) *Window {
	w := NewWindow(h, interval)
	w.now = c.now
	return w
}

// TestWindowTracksRecentObservations pins the recency contract: after the
// load shape changes, the windowed quantile follows the new shape within two
// intervals while the lifetime quantile stays dominated by history.
func TestWindowTracksRecentObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w_test_seconds", "t", []float64{0.01, 0.1, 1, 10})
	clock := &fakeClock{t: time.Unix(1000, 0)}
	w := newWindowAt(h, 10*time.Second, clock)

	// Epoch 0: a thousand fast observations.
	for i := 0; i < 1000; i++ {
		h.Observe(0.005)
	}
	if got := w.Quantile(0.95); got > 0.01 {
		t.Fatalf("fast-epoch p95 = %v, want <= 0.01", got)
	}

	// Next epochs: the service slows down to ~5s. After two rotations the
	// window must have forgotten the fast millennium entirely.
	for epoch := 0; epoch < 2; epoch++ {
		clock.advance(10 * time.Second)
		for i := 0; i < 10; i++ {
			h.Observe(5)
		}
		w.Quantile(0.95) // rotate
	}
	// Mid-epoch: the window now spans only the slow observations.
	clock.advance(5 * time.Second)
	got := w.Quantile(0.95)
	if got < 1 {
		t.Fatalf("slow-epoch windowed p95 = %v, want >= 1", got)
	}
	// The lifetime estimate is still dominated by the 1000 fast samples.
	if life := h.Quantile(0.95); life > 0.01 {
		t.Fatalf("lifetime p95 = %v, want <= 0.01 (1000 fast vs 20 slow)", life)
	}
}

// TestWindowEmptyFallsBackToLifetime pins the idle behavior: with nothing
// observed in the recent window the estimate falls back to the lifetime
// quantile rather than reporting zero.
func TestWindowEmptyFallsBackToLifetime(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w_idle_seconds", "t", []float64{0.01, 0.1, 1, 10})
	clock := &fakeClock{t: time.Unix(2000, 0)}
	w := newWindowAt(h, 10*time.Second, clock)

	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	w.Quantile(0.95) // snapshot the observations into the epoch base

	// A long idle stretch: both snapshots go stale, the window is empty.
	clock.advance(time.Hour)
	got := w.Quantile(0.95)
	want := h.Quantile(0.95)
	if got != want {
		t.Fatalf("idle windowed p95 = %v, want lifetime %v", got, want)
	}
	if got == 0 {
		t.Fatal("idle fallback reported zero despite lifetime history")
	}
}

// TestWindowEmptyHistogram: a window over a never-observed histogram
// reports zero (the caller treats that as "no estimate").
func TestWindowEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w_zero_seconds", "t", nil)
	w := NewWindow(h, 0)
	if got := w.Quantile(0.95); got != 0 {
		t.Fatalf("empty histogram windowed p95 = %v, want 0", got)
	}
}
