// Recent-window quantile estimation over a Histogram. The registry's
// histograms are cumulative for the process lifetime — right for dashboards,
// wrong for control decisions like "how long should a shed client wait",
// which must track what latency looks like *now*, not averaged over every
// request since startup. Window layers recency on top without touching the
// hot observation path: it snapshots the bucket counts at epoch boundaries
// and estimates quantiles from the delta.

package obs

import (
	"sync"
	"time"
)

// Window estimates quantiles over a Histogram's recent observations. It
// keeps bucket-count snapshots taken at most every interval; Quantile reads
// the delta between the live counts and the snapshot from the previous
// epoch, so the estimate covers between one and two intervals of history.
// With no observations in that window (startup, or a long idle stretch) it
// falls back to the lifetime quantile — a stale estimate beats none.
//
// The observation path is untouched: writers keep hitting the Histogram's
// lock-free atomics, and only Quantile callers pay for the snapshot.
type Window struct {
	h        *Histogram
	interval time.Duration
	now      func() time.Time // clock seam for tests

	mu    sync.Mutex
	epoch time.Time
	base  []uint64 // live counts at the current epoch's start
	prev  []uint64 // live counts at the previous epoch's start (nil: none)
}

// NewWindow returns a recency window over h. interval <= 0 selects 30s —
// long enough to smooth render-length variance, short enough that overload
// advice (Retry-After) tracks the current load shape.
func NewWindow(h *Histogram, interval time.Duration) *Window {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Window{h: h, interval: interval, now: time.Now}
}

// Quantile estimates the q-th quantile over the window's recent
// observations, rotating the epoch snapshots as time passes.
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	if w.base == nil {
		w.epoch = now
		w.base = w.h.bucketCounts()
	} else if elapsed := now.Sub(w.epoch); elapsed >= w.interval {
		if elapsed >= 2*w.interval {
			// The previous epoch is ancient history: a delta against it
			// would smear idle time into the estimate. Start fresh.
			w.prev = nil
		} else {
			w.prev = w.base
		}
		w.epoch = now
		w.base = w.h.bucketCounts()
	}
	ref := w.prev
	if ref == nil {
		ref = w.base
	}
	live := w.h.bucketCounts()
	delta := make([]uint64, len(live))
	var total uint64
	for i := range live {
		delta[i] = live[i] - ref[i]
		total += delta[i]
	}
	if total == 0 {
		return w.h.Quantile(q)
	}
	return quantileOver(w.h.bounds, delta, q)
}
