package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: an observation
// exactly on a bound lands in that bound's bucket (cumulative counts are
// over v <= le), and values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 1} // (..1], (1..2], (2..5], (5..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: %d observations, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count %d, want 7", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-113.5000001) > 1e-6 {
		t.Errorf("sum %g, want 113.5000001", sum)
	}
}

// TestHistogramQuantiles pins the interpolation: uniform mass in one bucket
// interpolates linearly between its bounds, the +Inf bucket clamps to the
// last finite bound, and an empty histogram reports 0.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", q)
	}
	// 10 observations in (1..2]: pN interpolates to 1 + N/100 * 1.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-1.9) > 1e-9 {
		t.Errorf("p90 = %g, want 1.9", q)
	}
	// Push one observation past every bound: high quantiles clamp to 4.
	h.Observe(1000)
	if q := h.Quantile(1.0); q != 4 {
		t.Errorf("p100 = %g, want clamp to last bound 4", q)
	}
	s := h.Summary()
	if s.Count != 11 || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("summary not monotone: %+v", s)
	}
}

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines; totals must be exact (run under -race in CI).
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	h := r.Histogram("h_seconds", "test histogram", nil)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge %g, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
	if got := math.Abs(h.Sum() - workers*per*0.001); got > 1e-6 {
		t.Errorf("histogram sum off by %g", got)
	}
}

// TestGetOrCreateIdentity pins that the same (name, labels) returns the
// same metric regardless of label order, and different labels don't alias.
func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "b", "2", "a", "1")
	b := r.Counter("x_total", "", "a", "1", "b", "2")
	if a != b {
		t.Error("label order changed metric identity")
	}
	if c := r.Counter("x_total", "", "a", "1"); c == a {
		t.Error("different label sets aliased")
	}
}

// TestPrometheusGolden pins the exposition bytes for a small fixed registry:
// HELP/TYPE lines per family, sorted series, cumulative buckets with +Inf,
// _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", "code", "200").Add(3)
	r.Counter("app_requests_total", "Requests served.", "code", "500").Add(1)
	r.Gauge("app_queue_depth", "Jobs waiting.").Set(2)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 30.55
app_latency_seconds_count 3
# HELP app_queue_depth Jobs waiting.
# TYPE app_queue_depth gauge
app_queue_depth 2
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
`
	if b.String() != want {
		t.Errorf("exposition diverges:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestGaugeFunc pins callback gauges: read at scrape time, replaceable.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn_gauge", "", func() float64 { return v })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "fn_gauge 1.5\n") {
		t.Errorf("missing callback value:\n%s", b.String())
	}
	v = 2
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "fn_gauge 2\n") {
		t.Errorf("stale callback value:\n%s", b.String())
	}
}

// TestGaugeFuncUnregister pins the unregister handle: it removes the
// callback from the exposition, and a stale handle — one whose registration
// a later GaugeFunc already replaced — must not drop the successor.
func TestGaugeFuncUnregister(t *testing.T) {
	r := NewRegistry()
	unreg := r.GaugeFunc("fn_gauge", "", func() float64 { return 1 })
	unreg()
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "fn_gauge") {
		t.Errorf("unregistered callback still exposed:\n%s", b.String())
	}

	stale := r.GaugeFunc("fn_gauge", "", func() float64 { return 1 })
	r.GaugeFunc("fn_gauge", "", func() float64 { return 2 })
	stale() // replaced registration: must be a no-op
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "fn_gauge 2\n") {
		t.Errorf("stale unregister dropped the successor callback:\n%s", b.String())
	}
}

// TestWriteJSON pins the -obs-json dump: valid JSON carrying the same
// snapshot, with +Inf bounds clamped to stay encodable.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "").Add(7)
	r.Histogram("j_seconds", "", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal([]byte(b.String()), &d); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, b.String())
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	if byName["j_total"].Value != 7 {
		t.Errorf("j_total = %g, want 7", byName["j_total"].Value)
	}
	hs := byName["j_seconds"]
	if hs.Histogram == nil || hs.Histogram.Count != 1 || len(hs.Buckets) != 2 {
		t.Errorf("j_seconds snapshot %+v", hs)
	}
}
