package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanNestingAndOrdering pins the timeline shape: spans appear in start
// order, nested spans carry their parent's depth + 1, and sibling spans
// after a nested one return to the parent depth.
func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTrace("req-1", "fig1")
	ctx := WithTrace(context.Background(), tr)

	cctx, end := StartSpan(ctx, "compile")
	_, endInner := StartSpan(cctx, "inner")
	endInner()
	end()
	_, endExec := StartSpan(ctx, "execute")
	endExec()
	tr.Finish()

	s := tr.Summary()
	if s.ID != "req-1" || s.Name != "fig1" {
		t.Fatalf("identity %+v", s)
	}
	want := []struct {
		name  string
		depth int
	}{{"compile", 0}, {"inner", 1}, {"execute", 0}}
	if len(s.Spans) != len(want) {
		t.Fatalf("%d spans, want %d: %+v", len(s.Spans), len(want), s.Spans)
	}
	for i, w := range want {
		sp := s.Spans[i]
		if sp.Name != w.name || sp.Depth != w.depth {
			t.Errorf("span %d = %+v, want %s at depth %d", i, sp, w.name, w.depth)
		}
		if sp.MS < 0 || sp.StartMS < 0 {
			t.Errorf("span %d has negative timing: %+v", i, sp)
		}
		if i > 0 && sp.StartMS < s.Spans[i-1].StartMS {
			t.Errorf("span %d starts before span %d", i, i-1)
		}
	}
	if s.WallMS <= 0 {
		t.Errorf("wall %.3fms, want > 0", s.WallMS)
	}
}

// TestSpanWithoutTrace pins the no-op contract: StartSpan and TimeStage on
// a bare context must not panic and still feed the global stage histogram.
func TestSpanWithoutTrace(t *testing.T) {
	before := stageHists[StageCompile].Count()
	_, end := StartSpan(context.Background(), StageCompile)
	end()
	TimeStage(context.Background(), StageCompile)()
	if got := stageHists[StageCompile].Count(); got != before+2 {
		t.Errorf("stage histogram count %d, want %d", got, before+2)
	}
}

// TestTimeStageAggregates pins the parallel-cell path: concurrent TimeStage
// observations fold into per-stage counts and totals on one trace.
func TestTimeStageAggregates(t *testing.T) {
	tr := NewTrace("req-2", "sweep")
	ctx := WithTrace(context.Background(), tr)
	const cells = 32
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := TimeStage(ctx, StageEvaluate)
			time.Sleep(time.Millisecond)
			done()
		}()
	}
	wg.Wait()
	tr.Finish()
	s := tr.Summary()
	agg, ok := s.Stages[StageEvaluate]
	if !ok || agg.Count != cells {
		t.Fatalf("evaluate stage %+v, want count %d", agg, cells)
	}
	if agg.MS < cells { // every cell slept >= 1ms
		t.Errorf("evaluate total %.3fms, want >= %d", agg.MS, cells)
	}
}

// TestObserveResolve pins the per-origin resolver metrics and the
// trace-side resolve aggregates.
func TestObserveResolve(t *testing.T) {
	tr := NewTrace("req-3", "x")
	ctx := WithTrace(context.Background(), tr)
	before := resolveCounts["synth"].Value()
	ObserveResolve(ctx, "synth", 2*time.Millisecond)
	if got := resolveCounts["synth"].Value(); got != before+1 {
		t.Errorf("resolve counter %d, want %d", got, before+1)
	}
	tr.Finish()
	if agg := tr.Summary().Stages["resolve:synth"]; agg.Count != 1 || agg.MS < 1 {
		t.Errorf("trace resolve agg %+v", agg)
	}
}

// TestTraceLog pins both /tracez views: recent keeps the newest N in
// newest-first order; slowest keeps the largest walls in descending order
// regardless of arrival order.
func TestTraceLog(t *testing.T) {
	l := NewTraceLog(3)
	mk := func(i int, wall time.Duration) *Trace {
		tr := NewTrace(fmt.Sprintf("r%d", i), "t")
		tr.mu.Lock()
		tr.done, tr.wall = true, wall
		tr.mu.Unlock()
		return tr
	}
	walls := []time.Duration{5, 1, 9, 2, 7, 3} // ms-scale ordering is all that matters
	for i, w := range walls {
		l.Record(mk(i, w*time.Millisecond))
	}
	recent, slowest := l.Snapshot()
	if len(recent) != 3 || recent[0].ID != "r5" || recent[1].ID != "r4" || recent[2].ID != "r3" {
		t.Errorf("recent view %+v", recent)
	}
	if len(slowest) != 3 || slowest[0].ID != "r2" || slowest[1].ID != "r4" || slowest[2].ID != "r0" {
		t.Errorf("slowest view %+v", slowest)
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].WallMS > slowest[i-1].WallMS {
			t.Errorf("slowest not descending: %+v", slowest)
		}
	}
}
