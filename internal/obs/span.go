// Span/trace layer: one Trace per served request (or per flight render)
// accumulates a timeline of serial spans (compile → execute → render) plus
// parallel per-cell stage aggregates (synth, store-load, evaluate, …) fed
// by however many pool workers drained the request's cells. Every span and
// stage observation also lands in the Default registry's stage histogram,
// so the global /metrics view and the per-request /tracez view share one
// vocabulary by construction.

package obs

import (
	"context"
	"sync"
	"time"
)

// The stage vocabulary: every timed unit of pipeline work reports under one
// of these names, in the Default registry's binebench_stage_seconds
// histogram and in per-request trace timelines.
const (
	// StageCompile is plan compilation: experiment spec → flat cell list.
	StageCompile = "compile"
	// StageExecute is the drain of a plan's cells on the worker pool.
	StageExecute = "execute"
	// StageRender is the serial artifact render from completed cell slots.
	StageRender = "render"
	// StageServe is a whole HTTP request, first byte of parsing to last
	// byte streamed.
	StageServe = "serve"
	// StageCacheLookup is a trace resolution served by the in-process
	// memory tier (including time spent waiting on a concurrent resolver).
	StageCacheLookup = "cache-lookup"
	// StageStoreLoad is a disk trace-store lookup (hit or miss).
	StageStoreLoad = "store-load"
	// StageSynth is direct schedule synthesis from schedule math.
	StageSynth = "synth"
	// StageRecord is a schedule execution on the recording goroutine
	// fabric (the fallback/oracle path).
	StageRecord = "fabric-record"
	// StageEvaluate is a netsim evaluation of a resolved trace.
	StageEvaluate = "evaluate"
)

// Stages lists the full stage vocabulary in pipeline order.
func Stages() []string {
	return []string{
		StageCompile, StageExecute, StageRender, StageServe,
		StageCacheLookup, StageStoreLoad, StageSynth, StageRecord, StageEvaluate,
	}
}

// The resolver-origin vocabulary: the tier that ultimately served a
// schedule's trace, labeling binebench_resolve_seconds / _total.
const (
	// OriginMemory is the in-process cache tier (including waits on a
	// concurrent resolver of the same key).
	OriginMemory = "memory"
	// OriginStore is the disk trace store.
	OriginStore = "store"
	// OriginSynth is direct synthesis from schedule math.
	OriginSynth = "synth"
	// OriginRecord is an execution on the recording goroutine fabric.
	OriginRecord = "record"
)

// Origins lists the resolver-origin vocabulary in lookup order.
func Origins() []string { return []string{OriginMemory, OriginStore, OriginSynth, OriginRecord} }

// stageHists and resolveHists pre-register the full vocabulary into Default
// so /metrics always exposes every series (at zero) and hot-path lookups
// are a read of an init-built map that is never mutated afterwards.
var (
	stageHists    = map[string]*Histogram{}
	resolveHists  = map[string]*Histogram{}
	resolveCounts = map[string]*Counter{}
)

func init() {
	for _, s := range Stages() {
		stageHists[s] = Default.Histogram("binebench_stage_seconds",
			"Latency of pipeline stages, by stage.", nil, "stage", s)
	}
	for _, o := range Origins() {
		resolveHists[o] = Default.Histogram("binebench_resolve_seconds",
			"Trace resolution latency, by the tier that served it.", nil, "origin", o)
		resolveCounts[o] = Default.Counter("binebench_resolves_total",
			"Trace resolutions, by the tier that served them.", "origin", o)
	}
}

func stageHist(stage string) *Histogram {
	if h, ok := stageHists[stage]; ok {
		return h
	}
	// Unknown stage names fall back to a registry lookup per observation;
	// the init set covers every stage the pipeline emits, so this is only
	// the path of future, not-yet-listed stages.
	return Default.Histogram("binebench_stage_seconds",
		"Latency of pipeline stages, by stage.", nil, "stage", stage)
}

// ObserveStage records one stage duration into the global stage histogram.
func ObserveStage(stage string, d time.Duration) { stageHist(stage).Observe(d.Seconds()) }

// ObserveResolve records one trace resolution into the per-origin resolver
// metrics and, when ctx carries a Trace, into its stage aggregates under
// "resolve:<origin>".
func ObserveResolve(ctx context.Context, origin string, d time.Duration) {
	if h, ok := resolveHists[origin]; ok {
		h.Observe(d.Seconds())
		resolveCounts[origin].Inc()
	}
	if t := TraceOf(ctx); t != nil {
		t.addStage("resolve:"+origin, d)
	}
}

type ctxKey int

const (
	traceKey ctxKey = iota
	depthKey
)

// WithTrace attaches a request trace to the context; every StartSpan and
// TimeStage under it reports into the trace's timeline.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceOf returns the context's trace, or nil.
func TraceOf(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpan opens a named serial span: the returned context parents any
// nested spans one level deeper, and the returned func closes the span,
// reporting its duration to the global stage histogram and — when a trace
// is attached — to the trace's timeline. Without a trace only the
// histogram observation happens. Use for the serial skeleton of a request
// (compile, execute, render); parallel per-cell work uses TimeStage.
func StartSpan(ctx context.Context, stage string) (context.Context, func()) {
	t0 := time.Now()
	tr := TraceOf(ctx)
	if tr == nil {
		return ctx, func() { ObserveStage(stage, time.Since(t0)) }
	}
	depth, _ := ctx.Value(depthKey).(int)
	idx := tr.openSpan(stage, t0, depth)
	ctx = context.WithValue(ctx, depthKey, depth+1)
	return ctx, func() {
		d := time.Since(t0)
		tr.closeSpan(idx, d)
		ObserveStage(stage, d)
	}
}

// TimeStage times one unit of (possibly parallel) cell work: the returned
// func records the elapsed duration into the global stage histogram and
// into the context trace's per-stage aggregates. Cells use this instead of
// StartSpan so a thousand-cell request aggregates rather than growing a
// thousand-span timeline.
func TimeStage(ctx context.Context, stage string) func() {
	t0 := time.Now()
	tr := TraceOf(ctx)
	return func() {
		d := time.Since(t0)
		ObserveStage(stage, d)
		if tr != nil {
			tr.addStage(stage, d)
		}
	}
}

// ObserveStageCtx records an already-measured stage duration into both the
// global histogram and the context trace — the non-closure form of
// TimeStage for call sites that measured the interval themselves.
func ObserveStageCtx(ctx context.Context, stage string, d time.Duration) {
	ObserveStage(stage, d)
	if tr := TraceOf(ctx); tr != nil {
		tr.addStage(stage, d)
	}
}

type spanRec struct {
	name  string
	start time.Duration // offset from trace start
	dur   time.Duration // -1 while open
	depth int
}

type stageAgg struct {
	count uint64
	ns    int64
}

// Trace is one request's (or one flight render's) timeline: an ID, serial
// spans, and parallel stage aggregates. Safe for concurrent use — cells on
// many pool workers feed one trace.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu     sync.Mutex
	spans  []spanRec
	stages map[string]stageAgg
	wall   time.Duration
	done   bool
}

// NewTrace starts a trace; id is the request ID, name the plan key.
func NewTrace(id, name string) *Trace {
	return &Trace{id: id, name: name, start: time.Now(), stages: map[string]stageAgg{}}
}

// ID returns the request ID the trace was started with.
func (t *Trace) ID() string { return t.id }

// Finish stamps the wall time; later calls are no-ops.
func (t *Trace) Finish() {
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.wall = time.Since(t.start)
	}
	t.mu.Unlock()
}

// Wall returns the finished wall time (the running time if not finished).
func (t *Trace) Wall() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.wall
	}
	return time.Since(t.start)
}

func (t *Trace) openSpan(name string, t0 time.Time, depth int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spanRec{name: name, start: t0.Sub(t.start), dur: -1, depth: depth})
	return len(t.spans) - 1
}

func (t *Trace) closeSpan(idx int, d time.Duration) {
	t.mu.Lock()
	t.spans[idx].dur = d
	t.mu.Unlock()
}

func (t *Trace) addStage(stage string, d time.Duration) {
	t.mu.Lock()
	agg := t.stages[stage]
	agg.count++
	agg.ns += d.Nanoseconds()
	t.stages[stage] = agg
	t.mu.Unlock()
}

// SpanSummary is one timeline span in a trace summary.
type SpanSummary struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	MS      float64 `json:"ms"`
	Depth   int     `json:"depth"`
}

// StageSummary aggregates one stage's cell observations in a trace.
type StageSummary struct {
	Count uint64  `json:"count"`
	MS    float64 `json:"ms"`
}

// TraceSummary is the JSON form of a finished trace — what /tracez returns
// and the access log embeds.
type TraceSummary struct {
	ID     string                  `json:"id"`
	Name   string                  `json:"name"`
	Start  time.Time               `json:"start"`
	WallMS float64                 `json:"wall_ms"`
	Spans  []SpanSummary           `json:"spans,omitempty"`
	Stages map[string]StageSummary `json:"stages,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Summary snapshots the trace.
func (t *Trace) Summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	wall := t.wall
	if !t.done {
		wall = time.Since(t.start)
	}
	s := TraceSummary{ID: t.id, Name: t.name, Start: t.start, WallMS: ms(wall)}
	for _, sp := range t.spans {
		d := sp.dur
		if d < 0 { // still open: report the elapsed time so far
			d = time.Since(t.start) - sp.start
		}
		s.Spans = append(s.Spans, SpanSummary{Name: sp.name, StartMS: ms(sp.start), MS: ms(d), Depth: sp.depth})
	}
	if len(t.stages) > 0 {
		s.Stages = make(map[string]StageSummary, len(t.stages))
		for k, agg := range t.stages {
			s.Stages[k] = StageSummary{Count: agg.count, MS: float64(agg.ns) / 1e6}
		}
	}
	return s
}

// TraceLog retains the N most recent and the N slowest finished traces —
// the /tracez view: "what just happened" and "what ever got slow".
type TraceLog struct {
	mu      sync.Mutex
	cap     int
	recent  []*Trace // ring, next is the write cursor
	next    int
	slowest []*Trace // sorted descending by wall
}

// NewTraceLog returns a log retaining n traces per view.
func NewTraceLog(n int) *TraceLog {
	if n <= 0 {
		n = 32
	}
	return &TraceLog{cap: n}
}

// Record files a finished trace into both views.
func (l *TraceLog) Record(t *Trace) {
	wall := t.Wall()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recent) < l.cap {
		l.recent = append(l.recent, t)
	} else {
		l.recent[l.next] = t
		l.next = (l.next + 1) % l.cap
	}
	if len(l.slowest) < l.cap {
		l.slowest = append(l.slowest, t)
	} else if last := l.slowest[len(l.slowest)-1]; wall > last.Wall() {
		l.slowest[len(l.slowest)-1] = t
	} else {
		return
	}
	for i := len(l.slowest) - 1; i > 0 && l.slowest[i].Wall() > l.slowest[i-1].Wall(); i-- {
		l.slowest[i], l.slowest[i-1] = l.slowest[i-1], l.slowest[i]
	}
}

// Snapshot returns the recent view newest-first and the slowest view in
// descending wall order.
func (l *TraceLog) Snapshot() (recent, slowest []TraceSummary) {
	l.mu.Lock()
	rs := make([]*Trace, 0, len(l.recent))
	for i := 1; i <= len(l.recent); i++ { // newest first: walk back from cursor
		rs = append(rs, l.recent[(l.next-i+len(l.recent)+len(l.recent))%len(l.recent)])
	}
	ss := append([]*Trace(nil), l.slowest...)
	l.mu.Unlock()
	for _, t := range rs {
		recent = append(recent, t.Summary())
	}
	for _, t := range ss {
		slowest = append(slowest, t.Summary())
	}
	return recent, slowest
}
