package obs

import (
	"encoding/json"
	"io"
	"math"
	"time"
)

// Dump is the JSON form of a registry snapshot — the binebench -obs-json
// artifact, sharing one vocabulary with the served /metrics endpoint so
// sweep runs and served runs are joinable.
type Dump struct {
	Time    time.Time        `json:"time"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// WriteJSON writes the registry snapshot as indented JSON. Infinite bucket
// bounds are clamped to the largest finite float64 so the document stays
// valid JSON (encoding/json rejects +Inf).
func (r *Registry) WriteJSON(w io.Writer) error {
	d := Dump{Time: time.Now().UTC(), Metrics: r.Snapshot()}
	for i := range d.Metrics {
		for j := range d.Metrics[i].Buckets {
			if math.IsInf(d.Metrics[i].Buckets[j].LE, 1) {
				d.Metrics[i].Buckets[j].LE = math.MaxFloat64
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
