package service

import (
	"context"
	"errors"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"binetrees/internal/obs"
)

// TestFlightGroupSingleflight is the deterministic dedup pin: a herd of
// callers on one key runs exactly one render (held open until every caller
// has attached), every caller streams the identical bytes, and once the
// flight completes the key is released for a fresh render.
func TestFlightGroupSingleflight(t *testing.T) {
	g := &flightGroup{}
	var renders, joins atomic.Int32
	release := make(chan struct{})
	const lanes = 16
	results := make([]string, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, joined, _ := g.do(context.Background(), "key", obs.NewTrace("t", "key"), func(_ context.Context, w io.Writer) error {
				renders.Add(1)
				io.WriteString(w, "artifact ")
				<-release
				io.WriteString(w, "bytes")
				return nil
			})
			if joined {
				joins.Add(1)
			}
			var sb strings.Builder
			if _, err := b.streamTo(context.Background(), &sb); err != nil {
				t.Error(err)
			}
			results[i] = sb.String()
		}()
	}
	// The leader blocks on release, so the flight stays open until every
	// other lane has joined it.
	for joins.Load() != lanes-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := renders.Load(); n != 1 {
		t.Fatalf("%d renders for %d identical concurrent requests, want 1", n, lanes)
	}
	for i, r := range results {
		if r != "artifact bytes" {
			t.Fatalf("lane %d streamed %q", i, r)
		}
	}
	// Completion releases the key: the next identical request renders anew.
	for {
		g.mu.Lock()
		n := len(g.m)
		g.mu.Unlock()
		if n == 0 {
			break
		}
		runtime.Gosched()
	}
	b, joined, _ := g.do(context.Background(), "key", obs.NewTrace("t", "key"), func(_ context.Context, w io.Writer) error {
		renders.Add(1)
		io.WriteString(w, "fresh")
		return nil
	})
	if joined {
		t.Fatal("joined a completed flight")
	}
	var sb strings.Builder
	if _, err := b.streamTo(context.Background(), &sb); err != nil || sb.String() != "fresh" {
		t.Fatalf("fresh flight streamed %q, %v", sb.String(), err)
	}
	if renders.Load() != 2 {
		t.Fatalf("renders %d after the key was released, want 2", renders.Load())
	}
}

// TestBroadcastMidStreamJoin pins the streaming contract: a reader that
// joins while the render is mid-flight still receives the full output from
// byte zero, and readers observe chunks before the render completes.
func TestBroadcastMidStreamJoin(t *testing.T) {
	g := &flightGroup{}
	step := make(chan struct{})
	b1, joined, _ := g.do(context.Background(), "k", obs.NewTrace("t", "k"), func(_ context.Context, w io.Writer) error {
		io.WriteString(w, "hello ")
		<-step
		io.WriteString(w, "world")
		return nil
	})
	if joined {
		t.Fatal("first request joined a flight")
	}
	// The first chunk is observable while the render is still blocked.
	if err := b1.waitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	b2, joined, _ := g.do(context.Background(), "k", obs.NewTrace("t", "k"), func(context.Context, io.Writer) error {
		t.Error("second render started for an in-flight key")
		return nil
	})
	if !joined || b2 != b1 {
		t.Fatal("identical request did not join the in-flight render")
	}
	close(step)
	for _, b := range []*broadcast{b1, b2} {
		var sb strings.Builder
		if _, err := b.streamTo(context.Background(), &sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != "hello world" {
			t.Fatalf("streamed %q, want %q", sb.String(), "hello world")
		}
	}
}

// TestBroadcastErrorPaths covers failures on both sides of the first byte:
// before any output the error surfaces from waitReady (a handler can still
// pick the status code); after output it surfaces from streamTo.
func TestBroadcastErrorPaths(t *testing.T) {
	boom := errors.New("boom")
	b := newBroadcast()
	b.finish(boom)
	if err := b.waitReady(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("waitReady = %v, want boom", err)
	}
	if n, err := b.streamTo(context.Background(), io.Discard); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("streamTo = %d, %v", n, err)
	}

	b = newBroadcast()
	io.WriteString(b, "partial")
	b.finish(boom)
	if err := b.waitReady(context.Background()); err != nil {
		t.Fatalf("waitReady with buffered output = %v, want nil", err)
	}
	var sb strings.Builder
	if n, err := b.streamTo(context.Background(), &sb); n != 7 || sb.String() != "partial" || !errors.Is(err, boom) {
		t.Fatalf("streamTo = %d %q %v", n, sb.String(), err)
	}
}

// TestBroadcastContextCancel ensures blocked readers wake on cancellation
// instead of hanging on the condition variable.
func TestBroadcastContextCancel(t *testing.T) {
	b := newBroadcast() // never written, never finished
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := b.waitReady(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("waitReady = %v, want context.Canceled", err)
		}
		if _, err := b.streamTo(ctx, io.Discard); !errors.Is(err, context.Canceled) {
			t.Errorf("streamTo = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not wake on context cancellation")
	}
}
