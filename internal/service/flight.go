package service

import (
	"context"
	"io"
	"net/http"
	"sync"

	"binetrees/internal/obs"
)

// broadcast is an append-only byte stream with any number of readers: the
// flight leader renders into it while every request on the same flight —
// including ones that join mid-render — streams it from offset zero. Bytes
// at an index below the published length are never rewritten, so readers
// copy nothing and hold no lock while writing chunks to their connections.
type broadcast struct {
	// trace is the flight leader's request trace, set before the broadcast
	// is published and immutable after: followers read it for the stage
	// breakdown of the render they joined.
	trace *obs.Trace

	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	done bool
	err  error
}

func newBroadcast() *broadcast {
	b := &broadcast{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Write appends a rendered chunk and wakes every streaming reader.
func (b *broadcast) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	b.mu.Unlock()
	return len(p), nil
}

// finish marks the stream complete with the render's error and wakes all
// readers. Write must not be called afterwards.
func (b *broadcast) finish(err error) {
	b.mu.Lock()
	b.done, b.err = true, err
	b.cond.Broadcast()
	b.mu.Unlock()
}

// wake kicks the condition so readers re-check their contexts; registered
// via context.AfterFunc per waiting reader.
func (b *broadcast) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// waitReady blocks until the stream has produced its first byte or finished,
// and returns the render error if it failed before producing any output —
// the window in which a handler can still choose the HTTP status code.
func (b *broadcast) waitReady(ctx context.Context) error {
	defer context.AfterFunc(ctx, b.wake)()
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == 0 && !b.done {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.cond.Wait()
	}
	if len(b.buf) == 0 && b.err != nil {
		return b.err
	}
	return nil
}

// streamTo copies the broadcast to w from offset zero as it grows, flushing
// after every chunk when w supports it, until the stream finishes, the
// reader's context is cancelled, or w fails (a disconnected client). It
// returns the bytes written and the first error among those.
func (b *broadcast) streamTo(ctx context.Context, w io.Writer) (int64, error) {
	defer context.AfterFunc(ctx, b.wake)()
	fl, _ := w.(http.Flusher)
	var off int
	for {
		b.mu.Lock()
		for off == len(b.buf) && !b.done && ctx.Err() == nil {
			b.cond.Wait()
		}
		// Snapshot the slice header under the lock — Write's append may
		// reassign it concurrently; the published bytes themselves are
		// immutable, so the snapshot is safely read lock-free.
		buf := b.buf
		end := len(buf)
		done, err := b.done, b.err
		b.mu.Unlock()
		if off < end {
			n, werr := w.Write(buf[off:end])
			off += n
			if werr != nil {
				return int64(off), werr
			}
			if fl != nil {
				fl.Flush()
			}
			continue
		}
		if done {
			return int64(off), err
		}
		if cerr := ctx.Err(); cerr != nil {
			return int64(off), cerr
		}
	}
}

// flightGroup deduplicates identical concurrent requests: all requests
// sharing a compiled-plan key attach to one in-flight render (singleflight),
// so a thundering herd of the same artifact executes each schedule once and
// every caller streams the same bytes.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*broadcast
	wg sync.WaitGroup
}

// do returns the broadcast carrying the rendering for key, launching render
// on a new goroutine when no identical request is in flight. joined reports
// whether an existing flight was reused — in which case tr (the caller's
// request trace) is discarded and the broadcast carries the leader's. The
// render runs to completion even if every reader disconnects — its work
// warms the shared caches either way.
func (g *flightGroup) do(key string, tr *obs.Trace, render func(w io.Writer) error) (b *broadcast, joined bool) {
	g.mu.Lock()
	if b, ok := g.m[key]; ok {
		g.mu.Unlock()
		return b, true
	}
	b = newBroadcast()
	b.trace = tr
	if g.m == nil {
		g.m = map[string]*broadcast{}
	}
	g.m[key] = b
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		b.finish(render(b))
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	return b, false
}

// wait blocks until every launched render has finished. Flights outlive
// their requests by design, so a server shutting shared resources down (the
// resident Runner) must drain them first.
func (g *flightGroup) wait() { g.wg.Wait() }
