package service

import (
	"context"
	"io"
	"net/http"
	"sync"

	"binetrees/internal/obs"
)

// broadcast is an append-only byte stream with any number of readers: the
// flight leader renders into it while every request on the same flight —
// including ones that join mid-render — streams it from offset zero. Bytes
// at an index below the published length are never rewritten, so readers
// copy nothing and hold no lock while writing chunks to their connections.
type broadcast struct {
	// trace is the flight leader's request trace, set before the broadcast
	// is published and immutable after: followers read it for the stage
	// breakdown of the render they joined.
	trace *obs.Trace

	// refs counts requests attached to the flight and cancel aborts its
	// render context; both are guarded by the owning flightGroup's mutex,
	// not b.mu. When the last reader leaves an unfinished flight, the group
	// cancels it so its cells stop dispatching (see flightGroup.release).
	refs   int
	cancel context.CancelFunc

	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	done bool
	err  error
}

func newBroadcast() *broadcast {
	b := &broadcast{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Write appends a rendered chunk and wakes every streaming reader.
func (b *broadcast) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	b.mu.Unlock()
	return len(p), nil
}

// finish marks the stream complete with the render's error and wakes all
// readers. Write must not be called afterwards.
func (b *broadcast) finish(err error) {
	b.mu.Lock()
	b.done, b.err = true, err
	b.cond.Broadcast()
	b.mu.Unlock()
}

// finished reports whether the stream has completed (successfully or not).
func (b *broadcast) finished() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done
}

// wake kicks the condition so readers re-check their contexts; registered
// via context.AfterFunc per waiting reader.
func (b *broadcast) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// waitReady blocks until the stream has produced its first byte or finished,
// and returns the render error if it failed before producing any output —
// the window in which a handler can still choose the HTTP status code.
func (b *broadcast) waitReady(ctx context.Context) error {
	defer context.AfterFunc(ctx, b.wake)()
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == 0 && !b.done {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.cond.Wait()
	}
	if len(b.buf) == 0 && b.err != nil {
		return b.err
	}
	return nil
}

// streamTo copies the broadcast to w from offset zero as it grows, flushing
// after every chunk when w supports it, until the stream finishes, the
// reader's context is cancelled, or w fails (a disconnected client). It
// returns the bytes written and the first error among those.
func (b *broadcast) streamTo(ctx context.Context, w io.Writer) (int64, error) {
	defer context.AfterFunc(ctx, b.wake)()
	fl, _ := w.(http.Flusher)
	var off int
	for {
		b.mu.Lock()
		for off == len(b.buf) && !b.done && ctx.Err() == nil {
			b.cond.Wait()
		}
		// Snapshot the slice header under the lock — Write's append may
		// reassign it concurrently; the published bytes themselves are
		// immutable, so the snapshot is safely read lock-free.
		buf := b.buf
		end := len(buf)
		done, err := b.done, b.err
		b.mu.Unlock()
		if off < end {
			n, werr := w.Write(buf[off:end])
			off += n
			if werr != nil {
				return int64(off), werr
			}
			if fl != nil {
				fl.Flush()
			}
			continue
		}
		if done {
			return int64(off), err
		}
		if cerr := ctx.Err(); cerr != nil {
			return int64(off), cerr
		}
	}
}

// flightGroup deduplicates identical concurrent requests: all requests
// sharing a compiled-plan key attach to one in-flight render (singleflight),
// so a thundering herd of the same artifact executes each schedule once and
// every caller streams the same bytes. When adm is set, brand-new flights
// pass admission control before (or while queued, before) rendering;
// followers always attach for free, since joining adds no work.
type flightGroup struct {
	adm *admission // nil: every new flight renders immediately

	mu sync.Mutex
	m  map[string]*broadcast
	wg sync.WaitGroup
}

// do returns the broadcast carrying the rendering for key, launching render
// on a new goroutine when no identical request is in flight. joined reports
// whether an existing flight was reused — in which case tr (the caller's
// request trace) is discarded and the broadcast carries the leader's. shed
// reports that admission rejected a brand-new flight (b is nil); joins are
// never shed. The render's context derives from parent (the server
// lifetime) and is additionally cancelled if every attached reader leaves
// before the render finishes — abandoned work stops submitting cells
// instead of warming caches nobody asked for.
//
// Every non-shed caller holds a reference on the returned broadcast and
// must pair it with release(key, b) when done streaming.
func (g *flightGroup) do(parent context.Context, key string, tr *obs.Trace, render func(ctx context.Context, w io.Writer) error) (b *broadcast, joined, shed bool) {
	g.mu.Lock()
	if b, ok := g.m[key]; ok {
		b.refs++
		g.mu.Unlock()
		return b, true, false
	}
	// Admission runs under the group lock so the queue-budget check is
	// serialized and a herd on one key can never split across decisions.
	queued := false
	if g.adm != nil {
		switch g.adm.decide() {
		case admitNow:
		case admitQueue:
			queued = true
		case admitShed:
			g.mu.Unlock()
			return nil, false, true
		}
	}
	fctx, cancel := context.WithCancel(parent)
	b = newBroadcast()
	b.trace = tr
	b.refs = 1
	b.cancel = cancel
	if g.m == nil {
		g.m = map[string]*broadcast{}
	}
	g.m[key] = b
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		defer cancel()
		if queued {
			if err := g.adm.await(fctx); err != nil {
				// Abandoned (or shut down) while waiting for a token: the
				// render never ran, so there is no token to release.
				b.finish(err)
				g.remove(key, b)
				return
			}
		}
		if g.adm != nil {
			defer g.adm.release()
		}
		b.finish(render(fctx, b))
		g.remove(key, b)
	}()
	return b, false, false
}

// release drops a reader's reference. When the last reader leaves a flight
// that has not finished, the flight is abandoned: removed from the table
// (so a retry starts a fresh render) and its context cancelled, which makes
// ForEachCtx stop dispatching its remaining cells and frees its admission
// token — the mechanism that lets the pool drain under a client-disconnect
// storm.
func (g *flightGroup) release(key string, b *broadcast) {
	g.mu.Lock()
	b.refs--
	abandoned := b.refs == 0 && !b.finished()
	if abandoned && g.m[key] == b {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if abandoned {
		b.cancel()
	}
}

// remove deletes the flight from the table if it still owns its key (an
// abandoned flight may have been replaced by a fresh render already).
func (g *flightGroup) remove(key string, b *broadcast) {
	g.mu.Lock()
	if g.m[key] == b {
		delete(g.m, key)
	}
	g.mu.Unlock()
}

// active reports the number of in-table flights (rendering or queued).
func (g *flightGroup) active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// wait blocks until every launched render has finished. Flights outlive
// their requests by design, so a server shutting shared resources down (the
// resident Runner) must drain them first.
func (g *flightGroup) wait() { g.wg.Wait() }
