// Package service exposes the experiment harness as a long-running HTTP
// artifact service — the binebenchd daemon. Each /artifact request compiles
// the named experiment into the PR 3 plan form, drains its recording and
// evaluation cells on one resident process-wide pool.Runner, and streams the
// rendered artifact as it is produced; responses are byte-identical to the
// binebench CLI's files for the same request (pinned by tests and CI).
// Identical concurrent requests are deduplicated by singleflight on the
// compiled plan key, so a thundering herd resolves each schedule once —
// normally by direct synthesis from schedule math, with the goroutine
// fabric as fallback/oracle — and the shared -trace-cache directory is
// prewarmed (decode-validated, corrupt files evicted) before the server
// accepts traffic.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"binetrees/internal/harness"
	"binetrees/internal/pool"
	"binetrees/internal/tracestore"
)

// Config tunes a Server.
type Config struct {
	// TraceDir is the shared persistent trace store directory, prewarmed at
	// startup; empty serves from the in-process cache only.
	TraceDir string
	// Workers bounds the resident Runner (<= 0: one per CPU).
	Workers int
	// DisableSynth turns off direct schedule synthesis: every cold schedule
	// executes on the recording goroutine fabric (the oracle path).
	DisableSynth bool
	// VerifySynth records every synthesized schedule on the fabric as well
	// and fails the render on any encoded-byte difference — CI's equivalence
	// gate, at the cost of a full cold pre-synthesis run.
	VerifySynth bool
}

// Server is the artifact service: a resident worker pool, the singleflight
// table, and the request counters behind /statsz.
type Server struct {
	runner  *pool.Runner
	flights flightGroup
	prewarm tracestore.PrewarmStats
	start   time.Time
	ctx     context.Context // bounds cell submission; cancelled by Close
	cancel  context.CancelFunc

	requests, renders, joins, failures, bytesOut atomic.Uint64
}

// New configures the process-wide trace store and synthesis mode, prewarms
// the store, and returns a serving-ready Server owning a resident Runner.
func New(cfg Config) (*Server, error) {
	harness.SetSynthesis(!cfg.DisableSynth)
	harness.SetVerifySynth(cfg.VerifySynth)
	if err := harness.SetTraceStore(cfg.TraceDir); err != nil {
		return nil, err
	}
	ps, err := harness.PrewarmTraceStore()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		runner:  pool.NewRunner(cfg.Workers),
		prewarm: ps,
		start:   time.Now(),
		ctx:     ctx,
		cancel:  cancel,
	}, nil
}

// Prewarm reports the startup validation pass over the trace store.
func (s *Server) Prewarm() tracestore.PrewarmStats { return s.prewarm }

// Close stops new cell submission, drains the in-flight renders (which run
// detached from their requests and may still be submitting cells), and only
// then shuts the resident pool down — closing the pool under a live flight
// would panic its next submission.
func (s *Server) Close() {
	s.cancel()
	s.flights.wait()
	s.runner.Close()
}

// Handler returns the service's HTTP mux:
//
//	GET /artifact/{experiment}?systems=...&full=...  the artifact, streamed
//	GET /healthz                                     liveness
//	GET /statsz                                      counters as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{experiment}", s.artifact)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statsz", s.statsz)
	return mux
}

// renderGate, when non-nil, blocks a flight leader before its plan executes.
// Test-only: it holds a render open until a herd of identical requests has
// piled onto the flight, making the singleflight assertions deterministic.
var renderGate func()

// parseRequest validates an artifact request against the same rules as the
// binebench flags: any experiment name (or "all"), full as a boolean, and
// systems only meaningful — and only accepted — with "all".
func parseRequest(r *http.Request) (name string, full bool, systems []string, code int, err error) {
	name = r.PathValue("experiment")
	known := name == "all"
	for _, n := range harness.ExperimentNames() {
		known = known || n == name
	}
	if !known {
		return "", false, nil, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name)
	}
	q := r.URL.Query()
	if v := q.Get("full"); v != "" {
		full, err = strconv.ParseBool(v)
		if err != nil {
			return "", false, nil, http.StatusBadRequest, fmt.Errorf("full=%q is not a boolean", v)
		}
	}
	if v := q.Get("systems"); v != "" {
		if name != "all" {
			return "", false, nil, http.StatusBadRequest, fmt.Errorf("systems only applies to the all experiment")
		}
		// NormalizeSystems sorts and dedups, so the canonical form keys the
		// flight table: differently-ordered identical selections dedup too.
		systems, err = harness.NormalizeSystems(strings.Split(v, ","))
		if err != nil {
			return "", false, nil, http.StatusBadRequest, err
		}
	}
	return name, full, systems, 0, nil
}

func (s *Server) artifact(w http.ResponseWriter, r *http.Request) {
	name, full, systems, code, err := parseRequest(r)
	if err != nil {
		http.Error(w, err.Error(), code)
		return
	}
	s.requests.Add(1)
	opts := harness.Options{Quick: !full, Systems: systems}
	key := fmt.Sprintf("%s|full=%v|systems=%s", name, full, strings.Join(systems, ","))
	b, joined := s.flights.do(key, func(fw io.Writer) error {
		s.renders.Add(1)
		if renderGate != nil {
			renderGate()
		}
		if name == "all" {
			return harness.RunAllOn(s.ctx, fw, s.runner, opts)
		}
		e, err := harness.CompileExperiment(name, opts)
		if err != nil {
			return err
		}
		return e.Run(s.ctx, fw, s.runner, nil)
	})
	if joined {
		s.joins.Add(1)
	}
	if err := b.waitReady(r.Context()); err != nil {
		if r.Context().Err() != nil {
			return // client gave up before the first byte
		}
		s.failures.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	n, err := b.streamTo(r.Context(), w)
	s.bytesOut.Add(uint64(n))
	if err != nil && r.Context().Err() == nil {
		// The render failed mid-stream: the 200 header is out, so abort the
		// connection instead of passing a truncated body off as complete.
		s.failures.Add(1)
		panic(http.ErrAbortHandler)
	}
}

// Stats is the /statsz document.
type Stats struct {
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers is the resident pool width shared by all requests.
	Workers int `json:"workers"`
	// Experiments lists the valid /artifact/{experiment} names.
	Experiments []string `json:"experiments"`
	// Requests counts accepted artifact requests; Renders the plan
	// executions actually performed; DedupJoins the requests served by
	// joining an identical in-flight render; Failures the requests that
	// surfaced a render error.
	Requests   uint64 `json:"requests"`
	Renders    uint64 `json:"renders"`
	DedupJoins uint64 `json:"dedup_joins"`
	Failures   uint64 `json:"failures"`
	// BytesServed totals artifact bytes written to clients.
	BytesServed uint64 `json:"bytes_served"`
	// Prewarm reports the startup store validation; Cache the live trace
	// cache counters (including the resident columnar footprint).
	Prewarm tracestore.PrewarmStats `json:"prewarm"`
	Cache   harness.CacheStats      `json:"cache"`
}

// Snapshot captures the live counters.
func (s *Server) Snapshot() Stats {
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.runner.Workers(),
		Experiments:   harness.ExperimentNames(),
		Requests:      s.requests.Load(),
		Renders:       s.renders.Load(),
		DedupJoins:    s.joins.Load(),
		Failures:      s.failures.Load(),
		BytesServed:   s.bytesOut.Load(),
		Prewarm:       s.prewarm,
		Cache:         harness.TraceCacheStats(),
	}
}

func (s *Server) statsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
