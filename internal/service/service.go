// Package service exposes the experiment harness as a long-running HTTP
// artifact service — the binebenchd daemon. Each /artifact request compiles
// the named experiment into the PR 3 plan form, drains its recording and
// evaluation cells on one resident process-wide pool.Runner, and streams the
// rendered artifact as it is produced; responses are byte-identical to the
// binebench CLI's files for the same request (pinned by tests and CI).
// Identical concurrent requests are deduplicated by singleflight on the
// compiled plan key, so a thundering herd resolves each schedule once —
// normally by direct synthesis from schedule math, with the goroutine
// fabric as fallback/oracle — and the shared -trace-cache directory is
// prewarmed (decode-validated, corrupt files evicted) in the background;
// /readyz reports 503 until that pass completes.
//
// Observability: every request carries a request ID (X-Request-ID, accepted
// or generated) and an obs.Trace whose serial spans (compile → execute →
// render) and parallel per-cell stage aggregates land in /tracez; the
// process-wide obs registry is served at /metrics in Prometheus text form;
// and each request emits one JSON access-log line with its stage breakdown
// and singleflight role.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"binetrees/internal/harness"
	"binetrees/internal/obs"
	"binetrees/internal/pool"
	"binetrees/internal/tracestore"
)

// Service-level metrics in the process-wide obs registry. Requests are
// counted per status code at response time (see obsRequests).
var (
	obsServeSeconds = obs.Default.Histogram("binebenchd_serve_seconds",
		"Whole-request latency of /artifact, parse to last byte.", nil)
	obsBytes = obs.Default.Counter("binebenchd_response_bytes_total",
		"Artifact bytes written to clients.")
	obsRenders = obs.Default.Counter("binebenchd_renders_total",
		"Plan executions performed (flight leaders).")
	obsJoins = obs.Default.Counter("binebenchd_flight_joins_total",
		"Requests served by joining an identical in-flight render.")
	obsFailures = obs.Default.Counter("binebenchd_failures_total",
		"Requests that surfaced a render error.")
)

func obsRequests(code int) *obs.Counter {
	return obs.Default.Counter("binebenchd_requests_total",
		"Artifact requests answered, by HTTP status code.", "code", strconv.Itoa(code))
}

// Config tunes a Server.
type Config struct {
	// TraceDir is the shared persistent trace store directory, prewarmed in
	// the background after New; empty serves from the in-process cache only.
	TraceDir string
	// Workers bounds the resident Runner (<= 0: one per CPU).
	Workers int
	// DisableSynth turns off direct schedule synthesis: every cold schedule
	// executes on the recording goroutine fabric (the oracle path).
	DisableSynth bool
	// VerifySynth records every synthesized schedule on the fabric as well
	// and fails the render on any encoded-byte difference — CI's equivalence
	// gate, at the cost of a full cold pre-synthesis run.
	VerifySynth bool
	// AccessLog, when non-nil, receives one JSON line per /artifact request:
	// request ID, plan key, singleflight role, status, bytes, duration, and
	// the request trace's stage breakdown. Writes are serialized.
	AccessLog io.Writer
	// MaxFlights bounds concurrent non-follower renders (<= 0: twice the
	// pool width, at least 4). Followers joining an in-flight render never
	// count against it.
	MaxFlights int
	// QueueBudget bounds how many new flights may wait for a render slot
	// before further ones are shed with 429 (<= 0: MaxFlights). Size it off
	// the pool's queue-depth/in-flight gauges: once the pool holds several
	// batches of backlog, queueing more flights only grows latency.
	QueueBudget int
}

// Server is the artifact service: a resident worker pool, the singleflight
// table, the trace log behind /tracez, and the request counters behind
// /statsz.
type Server struct {
	runner      *pool.Runner
	flights     flightGroup
	adm         *admission
	serveWindow *obs.Window // recent p95 behind Retry-After
	start       time.Time
	ctx         context.Context // bounds cell submission; cancelled by Close
	cancel      context.CancelFunc

	// prewarm runs on its own goroutine so the listener binds immediately;
	// the stats fields are written exactly once before prewarmDone closes,
	// so any read after the channel is closed is race-free.
	prewarmDone    chan struct{}
	prewarm        tracestore.PrewarmStats
	prewarmErr     error
	prewarmSeconds float64

	traces     *obs.TraceLog
	logMu      sync.Mutex
	accessLog  io.Writer
	reqSeq     atomic.Uint64
	unregister []func() // drops this server's obs.Default gauge callbacks on Close

	requests, renders, joins, failures, bytesOut atomic.Uint64
}

// New configures the process-wide trace store and synthesis mode, kicks off
// the background prewarm pass, and returns a serving-ready Server owning a
// resident Runner. The server answers immediately; /readyz turns 200 once
// the prewarm completes.
func New(cfg Config) (*Server, error) {
	harness.SetSynthesis(!cfg.DisableSynth)
	harness.SetVerifySynth(cfg.VerifySynth)
	if err := harness.SetTraceStore(cfg.TraceDir); err != nil {
		return nil, err
	}
	//binelint:ignore ctxflow server-lifetime root context, cancelled by Close; requests derive from it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		runner:      pool.NewRunner(cfg.Workers),
		serveWindow: obs.NewWindow(obsServeSeconds, 30*time.Second),
		start:       time.Now(),
		ctx:         ctx,
		cancel:      cancel,
		prewarmDone: make(chan struct{}),
		traces:      obs.NewTraceLog(64),
		accessLog:   cfg.AccessLog,
	}
	maxFlights := cfg.MaxFlights
	if maxFlights <= 0 {
		// Two renders per worker keeps the pool fed while one flight is in a
		// serial (compile/render) phase; the floor of 4 keeps tiny hosts from
		// serializing a mixed workload entirely.
		maxFlights = 2 * s.runner.Workers()
		if maxFlights < 4 {
			maxFlights = 4
		}
	}
	queueBudget := cfg.QueueBudget
	if queueBudget <= 0 {
		queueBudget = maxFlights
	}
	s.adm = newAdmission(maxFlights, queueBudget)
	s.flights.adm = s.adm
	go func() {
		defer close(s.prewarmDone)
		if prewarmGate != nil {
			prewarmGate()
		}
		t0 := time.Now()
		s.prewarm, s.prewarmErr = harness.PrewarmTraceStore()
		s.prewarmSeconds = time.Since(t0).Seconds()
	}()
	s.registerGauges()
	return s, nil
}

// registerGauges exposes the server's live state as scrape-time callback
// gauges. Re-registration replaces the callbacks, so the newest Server backs
// the series; Close unregisters this server's callbacks (a no-op for any a
// later server has already replaced), so a closed Server and its Runner are
// not pinned by — or invoked from — subsequent scrapes.
func (s *Server) registerGauges() {
	st := func(f func(pool.RunnerStats) float64) func() float64 {
		return func() float64 { return f(s.runner.Stats()) }
	}
	gauge := func(name, help string, fn func() float64) {
		s.unregister = append(s.unregister, obs.Default.GaugeFunc(name, help, fn))
	}
	gauge("binebenchd_pool_workers",
		"Resident pool width.", st(func(r pool.RunnerStats) float64 { return float64(r.Workers) }))
	gauge("binebenchd_pool_queue_depth",
		"Cells submitted to the resident pool not yet started.", st(func(r pool.RunnerStats) float64 { return float64(r.QueueDepth) }))
	gauge("binebenchd_pool_inflight",
		"Cells currently executing on the resident pool.", st(func(r pool.RunnerStats) float64 { return float64(r.InFlight) }))
	gauge("binebenchd_pool_jobs_done",
		"Cells completed by the resident pool since start.", st(func(r pool.RunnerStats) float64 { return float64(r.JobsDone) }))
	gauge("binebenchd_pool_wait_seconds",
		"Cumulative submit-to-start wait across pool cells.", st(func(r pool.RunnerStats) float64 { return r.WaitSeconds }))
	gauge("binebenchd_pool_busy_seconds",
		"Cumulative execution time across pool cells.", st(func(r pool.RunnerStats) float64 { return r.BusySeconds }))
	gauge("binebenchd_flights_active",
		"Flights in the singleflight table (rendering or queued).", func() float64 { return float64(s.flights.active()) })
	gauge("binebenchd_flights_inflight",
		"Renders currently holding an admission token.", func() float64 { return float64(s.adm.inFlight()) })
	gauge("binebenchd_flights_waiting",
		"New flights queued for an admission token.", func() float64 { return float64(s.adm.waiting.Load()) })
	gauge("binebenchd_ready",
		"1 once the trace-store prewarm has completed.", func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})
	gauge("binebenchd_uptime_seconds",
		"Seconds since the server was constructed.", func() float64 { return time.Since(s.start).Seconds() })
}

// Ready reports whether the startup prewarm pass has completed — the /readyz
// condition.
func (s *Server) Ready() bool {
	select {
	case <-s.prewarmDone:
		return true
	default:
		return false
	}
}

// Prewarm blocks until the startup validation pass over the trace store has
// completed and reports it.
func (s *Server) Prewarm() tracestore.PrewarmStats {
	<-s.prewarmDone
	return s.prewarm
}

// Close stops new cell submission, drains the in-flight renders (which run
// detached from their requests and may still be submitting cells), and only
// then shuts the resident pool down — closing the pool under a live flight
// would panic its next submission.
func (s *Server) Close() {
	s.cancel()
	<-s.prewarmDone
	s.flights.wait()
	s.runner.Close()
	for _, unreg := range s.unregister {
		unreg()
	}
}

// Handler returns the service's HTTP mux:
//
//	GET /artifact/{experiment}?systems=...&full=...  the artifact, streamed
//	GET /healthz                                     liveness (always 200)
//	GET /readyz                                      readiness: 503 until the
//	                                                 trace-store prewarm ends
//	GET /statsz                                      counters as JSON
//	GET /metrics                                     Prometheus text format
//	GET /tracez                                      recent + slowest request
//	                                                 timelines as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{experiment}", s.artifact)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("GET /statsz", s.statsz)
	mux.Handle("GET /metrics", obs.Default.Handler())
	mux.HandleFunc("GET /tracez", s.tracez)
	return mux
}

// renderGate, when non-nil, blocks a flight leader before its plan executes.
// Test-only: it holds a render open until a herd of identical requests has
// piled onto the flight, making the singleflight assertions deterministic.
var renderGate func()

// prewarmGate, when non-nil, blocks the background prewarm pass before it
// starts. Test-only: it holds readiness closed so /readyz's 503 phase is
// observable deterministically.
var prewarmGate func()

// requestID returns the caller-supplied X-Request-ID (bounded, so a hostile
// header cannot bloat logs) or generates a process-unique one.
func (s *Server) requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-ID")); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	return "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// accessEntry is one JSON access-log line.
type accessEntry struct {
	Time      time.Time         `json:"time"`
	RequestID string            `json:"request_id"`
	Path      string            `json:"path"`
	PlanKey   string            `json:"plan_key,omitempty"`
	Role      string            `json:"role,omitempty"` // leader | follower
	Status    int               `json:"status"`
	Bytes     int64             `json:"bytes"`
	DurMS     float64           `json:"dur_ms"`
	Error     string            `json:"error,omitempty"`
	Trace     *obs.TraceSummary `json:"trace,omitempty"`
}

func (s *Server) logAccess(e accessEntry) {
	if s.accessLog == nil {
		return
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.logMu.Lock()
	s.accessLog.Write(buf)
	s.logMu.Unlock()
}

// parseRequest validates an artifact request against the same rules as the
// binebench flags: any experiment name (or "all"), full as a boolean, and
// systems only meaningful — and only accepted — with "all".
func parseRequest(r *http.Request) (name string, full bool, systems []string, code int, err error) {
	name = r.PathValue("experiment")
	known := name == "all"
	for _, n := range harness.ExperimentNames() {
		known = known || n == name
	}
	if !known {
		return "", false, nil, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name)
	}
	q := r.URL.Query()
	if v := q.Get("full"); v != "" {
		full, err = strconv.ParseBool(v)
		if err != nil {
			return "", false, nil, http.StatusBadRequest, fmt.Errorf("full=%q is not a boolean", v)
		}
	}
	if v := q.Get("systems"); v != "" {
		if name != "all" {
			return "", false, nil, http.StatusBadRequest, fmt.Errorf("systems only applies to the all experiment")
		}
		// NormalizeSystems sorts and dedups, so the canonical form keys the
		// flight table: differently-ordered identical selections dedup too.
		systems, err = harness.NormalizeSystems(strings.Split(v, ","))
		if err != nil {
			return "", false, nil, http.StatusBadRequest, err
		}
	}
	return name, full, systems, 0, nil
}

func (s *Server) artifact(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	reqID := s.requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	name, full, systems, code, err := parseRequest(r)
	if err != nil {
		http.Error(w, err.Error(), code)
		obsRequests(code).Inc()
		s.logAccess(accessEntry{Time: t0.UTC(), RequestID: reqID, Path: r.URL.Path,
			Status: code, DurMS: float64(time.Since(t0).Microseconds()) / 1e3, Error: err.Error()})
		return
	}
	s.requests.Add(1)
	opts := harness.Options{Quick: !full, Systems: systems}
	key := fmt.Sprintf("%s|full=%v|systems=%s", name, full, strings.Join(systems, ","))
	// The flight trace belongs to the leader: its render goroutine runs the
	// serial compile → execute → render skeleton, so the span timeline sums
	// to the flight's wall time. Followers reuse the leader's trace in their
	// access-log lines; a follower's own trace is simply discarded.
	reqTrace := obs.NewTrace(reqID, key)
	b, joined, shed := s.flights.do(s.ctx, key, reqTrace, func(fctx context.Context, fw io.Writer) error {
		s.renders.Add(1)
		obsRenders.Inc()
		ctx := obs.WithTrace(fctx, reqTrace)
		defer func() {
			reqTrace.Finish()
			s.traces.Record(reqTrace)
		}()
		if renderGate != nil {
			renderGate()
		}
		if name == "all" {
			return harness.RunAllOn(ctx, fw, s.runner, opts)
		}
		_, endCompile := obs.StartSpan(ctx, obs.StageCompile)
		e, err := harness.CompileExperiment(name, opts)
		endCompile()
		if err != nil {
			return err
		}
		return e.Run(ctx, fw, s.runner, nil)
	})
	if shed {
		status := http.StatusTooManyRequests
		retry := s.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "overloaded: flight budget and wait queue are full, retry later", status)
		obsRequests(status).Inc()
		s.logAccess(accessEntry{Time: t0.UTC(), RequestID: reqID, Path: r.URL.Path,
			PlanKey: key, Role: "shed", Status: status,
			DurMS: float64(time.Since(t0).Microseconds()) / 1e3})
		return
	}
	// This request holds a reference on the flight until it stops streaming;
	// the last reference leaving an unfinished flight cancels its render.
	defer s.flights.release(key, b)
	role := "leader"
	if joined {
		s.joins.Add(1)
		obsJoins.Inc()
		role = "follower"
	}
	status := http.StatusOK
	var served int64
	var serveErr string
	defer func() {
		d := time.Since(t0)
		obs.ObserveStage(obs.StageServe, d)
		obsServeSeconds.Observe(d.Seconds())
		obsRequests(status).Inc()
		sum := b.trace.Summary()
		s.logAccess(accessEntry{Time: t0.UTC(), RequestID: reqID, Path: r.URL.Path,
			PlanKey: key, Role: role, Status: status, Bytes: served,
			DurMS: float64(d.Microseconds()) / 1e3, Error: serveErr, Trace: &sum})
	}()
	if err := b.waitReady(r.Context()); err != nil {
		if r.Context().Err() != nil {
			status = 499 // client gave up before the first byte
			return
		}
		s.failures.Add(1)
		obsFailures.Inc()
		status = http.StatusInternalServerError
		serveErr = err.Error()
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	n, err := b.streamTo(r.Context(), w)
	served = n
	s.bytesOut.Add(uint64(n))
	obsBytes.Add(uint64(n))
	if err != nil && r.Context().Err() == nil {
		// The render failed mid-stream: the 200 header is out, so abort the
		// connection instead of passing a truncated body off as complete.
		// The deferred access-log line still runs while the panic unwinds;
		// record the failure status first so requests_total and the log line
		// count this as a 500, not the 200 the wire happened to see.
		s.failures.Add(1)
		obsFailures.Inc()
		status = http.StatusInternalServerError
		serveErr = err.Error()
		panic(http.ErrAbortHandler)
	}
	if r.Context().Err() != nil && err != nil {
		status = 499
		serveErr = err.Error()
	}
}

// retryAfter estimates how long a shed client should back off, in whole
// seconds: recent p95 serve latency scaled by the caller's notional queue
// position ((waiting+1) flights ahead, drained maxFlights at a time),
// clamped to [1, 60]. With no recent latency signal (cold start) it answers
// 1 — an optimistic retry beats a made-up wait.
func (s *Server) retryAfter() int {
	p95 := s.serveWindow.Quantile(0.95)
	if p95 <= 0 {
		return 1
	}
	est := p95 * float64(s.adm.waiting.Load()+1) / float64(s.adm.maxFlights)
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		// Prewarm is typically sub-second; tell probes when to come back
		// instead of leaving the retry cadence to client guesswork.
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "prewarming trace store\n")
		return
	}
	fmt.Fprintf(w, "ready\n%s\nprewarm took %.3fs\n", s.prewarm, s.prewarmSeconds)
	if s.prewarmErr != nil {
		// The store is tolerant by design: a failed prewarm degrades to
		// request-time misses, so the server is ready regardless — but the
		// error is worth surfacing.
		fmt.Fprintf(w, "prewarm error: %v\n", s.prewarmErr)
	}
}

func (s *Server) tracez(w http.ResponseWriter, r *http.Request) {
	recent, slowest := s.traces.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Recent  []obs.TraceSummary `json:"recent"`
		Slowest []obs.TraceSummary `json:"slowest"`
	}{recent, slowest})
}

// Stats is the /statsz document.
type Stats struct {
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Workers is the resident pool width shared by all requests.
	Workers int `json:"workers"`
	// Ready reports whether the startup prewarm has completed (the /readyz
	// condition); PrewarmSeconds is how long it took once done.
	Ready          bool    `json:"ready"`
	PrewarmSeconds float64 `json:"prewarm_seconds,omitempty"`
	// Experiments lists the valid /artifact/{experiment} names.
	Experiments []string `json:"experiments"`
	// Requests counts accepted artifact requests; Renders the plan
	// executions actually performed; DedupJoins the requests served by
	// joining an identical in-flight render; Failures the requests that
	// surfaced a render error.
	Requests   uint64 `json:"requests"`
	Renders    uint64 `json:"renders"`
	DedupJoins uint64 `json:"dedup_joins"`
	Failures   uint64 `json:"failures"`
	// BytesServed totals artifact bytes written to clients.
	BytesServed uint64 `json:"bytes_served"`
	// Pool is the resident Runner's live job-flow view.
	Pool pool.RunnerStats `json:"pool"`
	// Admission is the flight-budget view: configuration, the decision
	// counters, and the live queue/render occupancy.
	Admission AdmissionStats `json:"admission"`
	// Prewarm reports the startup store validation (zero until Ready); Cache
	// the live trace cache counters (including the resident columnar
	// footprint).
	Prewarm tracestore.PrewarmStats `json:"prewarm"`
	Cache   harness.CacheStats      `json:"cache"`
}

// AdmissionStats is the /statsz view of the flight budget. Shed requests
// were answered 429 with a Retry-After; Queued counts flights that waited
// for a token (whether or not they eventually rendered); Waiting and
// InFlight are the live occupancy at snapshot time.
type AdmissionStats struct {
	MaxFlights  int    `json:"max_flights"`
	QueueBudget int    `json:"queue_budget"`
	Admitted    uint64 `json:"admitted"`
	Queued      uint64 `json:"queued"`
	Shed        uint64 `json:"shed"`
	Waiting     int64  `json:"waiting"`
	InFlight    int    `json:"in_flight"`
}

// Snapshot captures the live counters. The prewarm fields are read only
// after prewarmDone closes, so a snapshot taken mid-prewarm reports them as
// zero instead of racing the prewarm goroutine's writes.
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.runner.Workers(),
		Experiments:   harness.ExperimentNames(),
		Requests:      s.requests.Load(),
		Renders:       s.renders.Load(),
		DedupJoins:    s.joins.Load(),
		Failures:      s.failures.Load(),
		BytesServed:   s.bytesOut.Load(),
		Pool:          s.runner.Stats(),
		Admission: AdmissionStats{
			MaxFlights:  s.adm.maxFlights,
			QueueBudget: s.adm.queueBudget,
			Admitted:    s.adm.admitted.Load(),
			Queued:      s.adm.queued.Load(),
			Shed:        s.adm.shed.Load(),
			Waiting:     s.adm.waiting.Load(),
			InFlight:    s.adm.inFlight(),
		},
		Cache: harness.TraceCacheStats(),
	}
	select {
	case <-s.prewarmDone:
		st.Ready = true
		st.Prewarm = s.prewarm
		st.PrewarmSeconds = s.prewarmSeconds
	default:
	}
	return st
}

func (s *Server) statsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
