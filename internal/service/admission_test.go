package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"binetrees/internal/harness"
)

// newAdmissionTestServer is newTestServer with an explicit flight budget.
func newAdmissionTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	harness.ResetTraceCache()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		if err := harness.SetTraceStore(""); err != nil {
			t.Error(err)
		}
		harness.ResetTraceCache()
	})
	return srv, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsWith429RetryAfter drives the budget deterministically:
// with one render slot and one queue seat, a third distinct-plan request is
// shed with 429 + Retry-After, followers of the rendering flight still join
// for free, and once the load drains new requests are admitted again.
func TestAdmissionShedsWith429RetryAfter(t *testing.T) {
	gate := make(chan struct{})
	renderGate = func() { <-gate }
	defer func() { renderGate = nil }()
	srv, ts := newAdmissionTestServer(t, Config{MaxFlights: 1, QueueBudget: 1})

	var wg sync.WaitGroup
	launch := func(path string, wantCode int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts.URL+path)
			if code != wantCode {
				t.Errorf("%s: status %d, want %d: %s", path, code, wantCode, body)
			}
		}()
	}

	// Flight 1 takes the only token and blocks on the gate.
	launch("/artifact/fig1", http.StatusOK)
	waitFor(t, "flight 1 to hold the render slot", func() bool { return srv.adm.inFlight() == 1 })
	// Flight 2 (distinct plan) takes the only queue seat.
	launch("/artifact/eq2", http.StatusOK)
	waitFor(t, "flight 2 to queue", func() bool { return srv.adm.waiting.Load() == 1 })

	// Flight 3 (another distinct plan) is over budget: shed, synchronously.
	resp, err := http.Get(ts.URL + "/artifact/fig9a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 || retry > 60 {
		t.Fatalf("429 Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}

	// A follower of the rendering flight is not shed — joins are free.
	launch("/artifact/fig1", http.StatusOK)
	waitFor(t, "follower to join flight 1", func() bool { return srv.Snapshot().DedupJoins == 1 })
	if shed := srv.adm.shed.Load(); shed != 1 {
		t.Fatalf("shed count after follower join = %d, want 1", shed)
	}

	// Load drains: the blocked renders finish, and admission recovers.
	close(gate)
	wg.Wait()
	if code, body := get(t, ts.URL+"/artifact/fig9b"); code != http.StatusOK {
		t.Fatalf("post-drain request: status %d: %s", code, body)
	}

	st := srv.Snapshot().Admission
	if st.MaxFlights != 1 || st.QueueBudget != 1 {
		t.Fatalf("admission config in statsz: %+v", st)
	}
	if st.Admitted != 2 || st.Queued != 1 || st.Shed != 1 {
		t.Fatalf("admission counters: %+v, want admitted=2 queued=1 shed=1", st)
	}
	if st.Waiting != 0 || st.InFlight != 0 {
		t.Fatalf("admission occupancy after drain: %+v, want idle", st)
	}
}

// TestDisconnectStormFreesCells answers the ROADMAP's open question: when
// every client of many in-flight renders disconnects, the abandoned flights'
// contexts cancel, ForEachCtx stops dispatching their cells, the pool drains
// to zero pressure, and subsequent requests are admitted and served. Run
// under -race in CI.
func TestDisconnectStormFreesCells(t *testing.T) {
	gate := make(chan struct{})
	renderGate = func() { <-gate }
	defer func() { renderGate = nil }()
	srv, _ := newAdmissionTestServer(t, Config{MaxFlights: 2, QueueBudget: 2})
	mux := srv.Handler()

	// Four distinct-plan clients: two render slots, two queue seats — the
	// budget is exactly full.
	paths := []string{"/artifact/fig1", "/artifact/eq2", "/artifact/fig9a", "/artifact/fig9b"}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, p := range paths {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", p, nil).WithContext(ctx)
			mux.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	waitFor(t, "two renders in flight", func() bool { return srv.adm.inFlight() == 2 })
	waitFor(t, "two flights queued", func() bool { return srv.adm.waiting.Load() == 2 })

	// The storm: every client disconnects at once. Handlers return, drop
	// their references, and the abandoned flights cancel.
	cancel()
	wg.Wait()
	close(gate) // blocked leaders resume into already-cancelled contexts

	waitFor(t, "flight table to empty", func() bool { return srv.flights.active() == 0 })
	waitFor(t, "render slots to free", func() bool { return srv.adm.inFlight() == 0 })
	waitFor(t, "pool pressure to drain", func() bool { return srv.runner.Pressure() == 0 })

	// Capacity is actually back: a fresh request renders and streams fully.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/artifact/fig1", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("post-storm request: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
}
