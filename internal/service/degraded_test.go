package service

import (
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"testing"

	"binetrees/internal/harness"
	"binetrees/internal/tracestore"
)

// TestDegradedStoreServing pins the acceptance story end to end at the
// service layer: the trace-cache directory goes read-only mid-run, requests
// keep succeeding from synthesis, /statsz reports the store degraded (with
// skipped saves), and once the directory recovers the store reports healthy
// and writes through again.
func TestDegradedStoreServing(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	srv.Prewarm()
	harness.SetTraceStoreProbeInterval(0) // probe on every degraded save
	var broken atomic.Bool
	broken.Store(true)
	rofs := &os.PathError{Op: "open", Path: "trace-cache", Err: syscall.EROFS}
	tracestore.SetFaultHook(func(op tracestore.FaultOp) error {
		if broken.Load() && (op == tracestore.FaultCreateTemp || op == tracestore.FaultProbe) {
			return rofs
		}
		return nil
	})
	t.Cleanup(func() { tracestore.SetFaultHook(nil) })

	// The render succeeds — synthesis needs no disk — while its write-behind
	// save fails and degrades the store before the response completes.
	if code, body := get(t, ts.URL+"/artifact/fig1"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("request on read-only store: %d, %d bytes", code, len(body))
	}
	snap := srv.Snapshot()
	if !snap.Cache.StoreDegraded || snap.Cache.StoreDegradedReason == "" {
		t.Fatalf("statsz does not report the store degraded: %+v", snap.Cache)
	}
	if snap.Failures != 0 {
		t.Fatalf("store degradation surfaced as request failures: %d", snap.Failures)
	}

	// Degraded steady state: more artifacts serve fine, saves skip.
	if code, _ := get(t, ts.URL+"/artifact/eq2"); code != http.StatusOK {
		t.Fatalf("second request while degraded: %d", code)
	}
	if snap := srv.Snapshot(); snap.Cache.DiskSaveSkips == 0 {
		t.Fatalf("degraded serving recorded no skipped saves: %+v", snap.Cache)
	}

	// The directory recovers: the next save's probe restores write-through,
	// and /statsz drops the degraded flag.
	broken.Store(false)
	if code, _ := get(t, ts.URL+"/artifact/fig9a"); code != http.StatusOK {
		t.Fatalf("request after recovery: %d", code)
	}
	snap = srv.Snapshot()
	if snap.Cache.StoreDegraded {
		t.Fatalf("statsz still reports degraded after recovery: %+v", snap.Cache)
	}
	if snap.Cache.DiskSaves == 0 {
		t.Fatalf("post-recovery render did not write through: %+v", snap.Cache)
	}
	if snap.Failures != 0 || snap.Requests != 3 {
		t.Fatalf("degraded episode broke request accounting: %+v", snap)
	}
}
