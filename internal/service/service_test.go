package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"binetrees/internal/fabric"
	"binetrees/internal/harness"
	"binetrees/internal/tracestore"
)

// newTestServer builds a Server over a clean trace cache and an httptest
// frontend, undoing the process-global store configuration afterwards.
func newTestServer(t *testing.T, traceDir string) (*Server, *httptest.Server) {
	t.Helper()
	harness.ResetTraceCache()
	srv, err := New(Config{TraceDir: traceDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		if err := harness.SetTraceStore(""); err != nil {
			t.Error(err)
		}
		harness.ResetTraceCache()
	})
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestArtifactByteIdentity pins the serving contract: every quick-mode
// experiment — and the systems-selected "all" aggregate — is served
// byte-identical to what the binebench CLI writes for the same request.
// The CLI reference renders share the process trace cache with the server,
// so the suite records each schedule once however it is asked for.
func TestArtifactByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, "")
	for _, name := range harness.ExperimentNames() {
		var want strings.Builder
		if err := harness.RunExperiment(context.Background(), &want, name, harness.Options{Quick: true}); err != nil {
			t.Fatal(err)
		}
		code, body := get(t, ts.URL+"/artifact/"+name)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		if body != want.String() {
			t.Fatalf("%s: served artifact diverges from the CLI rendering:\n--- served ---\n%s\n--- cli ---\n%s", name, body, want.String())
		}
	}
	var want strings.Builder
	if err := harness.RunAll(context.Background(), &want, harness.Options{Quick: true, Systems: []string{"misc"}}); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/artifact/all?systems=misc")
	if code != http.StatusOK {
		t.Fatalf("all: status %d: %s", code, body)
	}
	if body != want.String() {
		t.Fatal("served all?systems=misc diverges from the CLI rendering")
	}
}

// TestSingleflightDedup is the thundering-herd pin at the HTTP layer: a herd
// of identical concurrent requests performs exactly one render and resolves
// each schedule exactly once (by synthesis — the fabric is never touched);
// every response carries the identical bytes. The render gate holds the
// flight open until the whole herd has attached, so the assertions are
// deterministic (and a broken singleflight fails the counters instead of
// deadlocking, because the gate times out).
func TestSingleflightDedup(t *testing.T) {
	// Reference pass: the artifact bytes and the per-schedule synthesis
	// count of a cold fig1 render.
	harness.ResetTraceCache()
	var want strings.Builder
	if err := harness.RunExperiment(context.Background(), &want, "fig1", harness.Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	synthRef := harness.TraceCacheStats().SynthHits
	if synthRef == 0 {
		t.Fatal("reference render synthesized nothing")
	}

	srv, ts := newTestServer(t, "")
	const herd = 8
	deadline := time.Now().Add(10 * time.Second)
	renderGate = func() {
		for srv.joins.Load() < herd-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	defer func() { renderGate = nil }()

	bodies := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts.URL+"/artifact/fig1")
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, body)
			}
			bodies[i] = body
		}()
	}
	wg.Wait()
	for i, b := range bodies {
		if b != want.String() {
			t.Fatalf("request %d diverges from the CLI rendering:\n%s", i, b)
		}
	}
	snap := srv.Snapshot()
	if snap.Requests != herd || snap.Renders != 1 || snap.DedupJoins != herd-1 {
		t.Fatalf("herd of %d: %d requests, %d renders, %d joins — want %d/1/%d",
			herd, snap.Requests, snap.Renders, snap.DedupJoins, herd, herd-1)
	}
	if snap.Cache.SynthHits != synthRef {
		t.Fatalf("herd synthesized %d schedules, want %d (one per schedule)", snap.Cache.SynthHits, synthRef)
	}
	if snap.Cache.Records != 0 {
		t.Fatalf("herd touched the goroutine fabric %d times, want 0", snap.Cache.Records)
	}
	if snap.Failures != 0 || snap.BytesServed != uint64(herd*len(want.String())) {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestRequestValidation covers the error surface: unknown experiments 404,
// malformed or misaddressed parameters 400, and the health/stats endpoints.
func TestRequestValidation(t *testing.T) {
	srv, ts := newTestServer(t, "")
	cases := []struct {
		path string
		code int
	}{
		{"/artifact/nope", http.StatusNotFound},
		{"/artifact/fig1?systems=lumi", http.StatusBadRequest},
		{"/artifact/all?systems=bogus", http.StatusBadRequest},
		{"/artifact/all?systems=,", http.StatusBadRequest},
		{"/artifact/fig1?full=banana", http.StatusBadRequest},
		{"/artifact/", http.StatusNotFound},
	}
	for _, c := range cases {
		if code, body := get(t, ts.URL+c.path); code != c.code {
			t.Fatalf("%s: status %d want %d (%s)", c.path, code, c.code, body)
		}
	}
	if srv.Snapshot().Requests != 0 {
		t.Fatal("rejected requests counted as accepted")
	}

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	var stats Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("statsz not JSON: %v\n%s", err, body)
	}
	if stats.Workers <= 0 || len(stats.Experiments) != len(harness.ExperimentNames()) {
		t.Fatalf("statsz %+v", stats)
	}
}

// TestServicePrewarm pins the startup pass: the shared store directory is
// decode-validated before serving — valid traces counted with their
// footprint, corrupt files evicted.
func TestServicePrewarm(t *testing.T) {
	dir := t.TempDir()
	st, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := fabric.NewTrace(4, []fabric.Record{{From: 0, To: 1, Step: 0, Elems: 1}})
	key := tracestore.Key{Kind: "flat", Collective: "bcast", Algo: "x", Shape: "4", SchedVersion: 1}
	if err := st.Save(key, tr, tracestore.OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.trace"), []byte("BTRCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, dir)
	ps := srv.Prewarm()
	if ps.Files != 2 || ps.Valid != 1 || ps.Corrupt != 1 || ps.MemBytes != tr.MemBytes() {
		t.Fatalf("prewarm %+v", ps)
	}
	if _, err := os.Stat(filepath.Join(dir, "deadbeef.trace")); !os.IsNotExist(err) {
		t.Fatal("prewarm left the corrupt file in place")
	}
	code, body := get(t, ts.URL+"/statsz")
	if code != http.StatusOK || !strings.Contains(body, "\"prewarm\"") {
		t.Fatalf("statsz after prewarm: %d\n%s", code, body)
	}
}

// TestVerifySynthService pins the Config wiring end to end: a server built
// with VerifySynth set renders with the fabric oracle cross-checking every
// synthesis, and /statsz reports the verified counts. DisableSynth likewise
// forces pure recording.
func TestVerifySynthService(t *testing.T) {
	harness.ResetTraceCache()
	srv, err := New(Config{VerifySynth: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		harness.SetVerifySynth(false)
		harness.SetSynthesis(true)
		if err := harness.SetTraceStore(""); err != nil {
			t.Error(err)
		}
		harness.ResetTraceCache()
	})
	if code, body := get(t, ts.URL+"/artifact/fig1"); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	snap := srv.Snapshot()
	c := snap.Cache
	if c.SynthHits == 0 || c.SynthVerified != c.SynthHits {
		t.Fatalf("verify mode left syntheses unverified: %+v", c)
	}
	if c.Records != c.SynthVerified {
		t.Fatalf("verify mode recorded %d oracles for %d verifications", c.Records, c.SynthVerified)
	}
	code, body := get(t, ts.URL+"/statsz")
	if code != http.StatusOK || !strings.Contains(body, "\"SynthVerified\"") {
		t.Fatalf("statsz lacks synth counters: %d\n%s", code, body)
	}

	harness.ResetTraceCache()
	srv2, err := New(Config{DisableSynth: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if code, body := get(t, ts2.URL+"/artifact/fig1"); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if c := srv2.Snapshot().Cache; c.SynthHits != 0 || c.Records == 0 {
		t.Fatalf("DisableSynth still synthesized: %+v", c)
	}
}
