// Admission control for non-follower flights. The resident Runner has a
// fixed width, so an unbounded burst of *distinct*-plan requests used to
// queue renders without limit — every one launched a goroutine and piled
// cells into the pool, and nothing told clients to back off. The admission
// layer bounds that: at most maxFlights renders hold a token at once, at
// most queueBudget flights wait for one, and everything beyond that is shed
// with 429 + Retry-After so clients retry when capacity is actually likely.
//
// Followers never touch admission: joining an in-flight render adds no work,
// so a thundering herd of one artifact costs one token no matter its size.

package service

import (
	"context"
	"sync/atomic"

	"binetrees/internal/obs"
)

// Admission decisions, counted per decision on /metrics.
var (
	obsAdmitted = obs.Default.Counter("binebenchd_admission_total",
		"Flight admission decisions, by outcome.", "decision", "admitted")
	obsQueued = obs.Default.Counter("binebenchd_admission_total",
		"Flight admission decisions, by outcome.", "decision", "queued")
	obsShed = obs.Default.Counter("binebenchd_admission_total",
		"Flight admission decisions, by outcome.", "decision", "shed")
)

type admitDecision int

const (
	admitNow   admitDecision = iota // token acquired, render immediately
	admitQueue                      // no token free; wait for one via await
	admitShed                       // queue budget exhausted; reject the request
)

// admission is the flight budget: a token channel bounding concurrent
// renders plus a counted (not materialized) wait queue bounding how many
// flights may block for a token. decide is called under the flightGroup
// mutex, which serializes the queue-budget check; waiting is still atomic
// because await decrements it outside that lock.
type admission struct {
	maxFlights  int
	queueBudget int
	tokens      chan struct{} // len == renders currently holding a token

	waiting                atomic.Int64
	admitted, queued, shed atomic.Uint64
}

func newAdmission(maxFlights, queueBudget int) *admission {
	return &admission{
		maxFlights:  maxFlights,
		queueBudget: queueBudget,
		tokens:      make(chan struct{}, maxFlights),
	}
}

// decide classifies a brand-new flight. Called under the flightGroup mutex.
func (a *admission) decide() admitDecision {
	select {
	case a.tokens <- struct{}{}:
		a.admitted.Add(1)
		obsAdmitted.Inc()
		return admitNow
	default:
	}
	if a.waiting.Load() >= int64(a.queueBudget) {
		a.shed.Add(1)
		obsShed.Inc()
		return admitShed
	}
	a.waiting.Add(1)
	a.queued.Add(1)
	obsQueued.Inc()
	return admitQueue
}

// await blocks a queued flight until a token frees up or ctx ends (every
// reader left, or the server is shutting down). On success the caller holds
// a token and must release it.
func (a *admission) await(ctx context.Context) error {
	defer a.waiting.Add(-1)
	select {
	case a.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a render's token, unblocking the longest-waiting queued
// flight if any.
func (a *admission) release() { <-a.tokens }

// inFlight reports how many renders currently hold a token.
func (a *admission) inFlight() int { return len(a.tokens) }
