package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"binetrees/internal/harness"
	"binetrees/internal/obs"
)

// TestStatszUnderLoad hammers /statsz and /metrics while artifact requests
// run concurrently — the data-race audit of the stats surface, meaningful
// under -race (CI runs this package with it). Correctness of the bodies is
// covered elsewhere; here every response just has to be well-formed while
// the counters, the pool gauges, and the prewarm fields churn.
func TestStatszUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, body := get(t, ts.URL+"/statsz"); code != http.StatusOK {
					t.Errorf("statsz: %d %s", code, body)
					return
				}
				if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
					t.Errorf("metrics: %d", code)
					return
				}
			}
		}()
	}
	for _, name := range []string{"fig1", "eq2", "appD", "fig1"} {
		if code, body := get(t, ts.URL+"/artifact/"+name); code != http.StatusOK {
			t.Fatalf("%s: %d %s", name, code, body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReadiness pins the liveness/readiness split: /healthz is 200 from the
// first instant, /readyz holds 503 while the trace-store prewarm runs and
// flips to 200 with the prewarm footprint and duration once it completes.
func TestReadiness(t *testing.T) {
	gate := make(chan struct{})
	prewarmGate = func() { <-gate }
	defer func() { prewarmGate = nil }()
	srv, ts := newTestServer(t, t.TempDir())

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz while prewarming: %d %q", code, body)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before prewarm: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("readyz 503 Retry-After = %q, want 1", ra)
	}
	if snap := srv.Snapshot(); snap.Ready {
		t.Fatal("statsz reported ready before the prewarm finished")
	}

	close(gate)
	srv.Prewarm() // blocks until the background pass completes
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after prewarm: %d %q", code, body)
	}
	if !strings.Contains(body, "trace store prewarm:") || !strings.Contains(body, "prewarm took ") {
		t.Fatalf("readyz body lacks the prewarm report: %q", body)
	}
	snap := srv.Snapshot()
	if !snap.Ready || snap.PrewarmSeconds <= 0 {
		t.Fatalf("statsz after prewarm: %+v", snap)
	}
}

// TestRequestID pins propagation: a caller-supplied X-Request-ID echoes back
// on the response (success and error paths alike), and requests without one
// get a generated ID.
func TestRequestID(t *testing.T) {
	_, ts := newTestServer(t, "")
	do := func(path, sendID string) (*http.Response, string) {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sendID != "" {
			req.Header.Set("X-Request-ID", sendID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, resp.Header.Get("X-Request-ID")
	}
	if _, id := do("/artifact/fig1", "herd-42"); id != "herd-42" {
		t.Fatalf("supplied request ID not echoed: %q", id)
	}
	resp, id := do("/artifact/nope", "err-7")
	if resp.StatusCode != http.StatusNotFound || id != "err-7" {
		t.Fatalf("error path: %d, id %q", resp.StatusCode, id)
	}
	if _, id := do("/artifact/fig1", ""); !strings.HasPrefix(id, "req-") {
		t.Fatalf("no generated request ID: %q", id)
	}
	if _, id := do("/artifact/fig1", strings.Repeat("x", 200)); len(id) != 64 {
		t.Fatalf("oversized request ID not bounded: %d bytes", len(id))
	}
}

// TestMetricsEndpoint serves an experiment and scrapes /metrics: the core
// series of every pipeline stage and resolver origin must be present, in
// parseable Prometheus text form (every non-comment line is `name{labels}
// value`), with the serve histogram actually populated.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, "")
	if code, body := get(t, ts.URL+"/artifact/fig1"); code != http.StatusOK {
		t.Fatalf("artifact: %d %s", code, body)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, s := range obs.Stages() {
		if !strings.Contains(body, fmt.Sprintf(`binebench_stage_seconds_count{stage="%s"}`, s)) {
			t.Errorf("stage series %q missing", s)
		}
	}
	for _, o := range obs.Origins() {
		if !strings.Contains(body, fmt.Sprintf(`binebench_resolve_seconds_count{origin="%s"}`, o)) {
			t.Errorf("resolve series %q missing", o)
		}
	}
	for _, series := range []string{
		"binebenchd_requests_total{code=\"200\"}",
		"binebenchd_serve_seconds_bucket{le=\"+Inf\"}",
		"binebenchd_response_bytes_total",
		"binebenchd_pool_queue_depth",
		"binebenchd_pool_workers",
		"binebenchd_ready",
		"binebench_synth_traces_total",
		"binebench_tracestore_loads_total{result=\"hit\"}",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("series %q missing from /metrics", series)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
	}
	if lines < 50 {
		t.Fatalf("suspiciously small exposition: %d samples", lines)
	}
}

// TestTracezTimeline is the stage-attribution pin: a served experiment's
// trace shows the serial compile → execute → render spans, and — because the
// leader runs them contiguously on the flight goroutine — their durations
// sum to the flight's wall time (within tolerance for scheduling noise).
func TestTracezTimeline(t *testing.T) {
	harness.ResetTraceCache()
	_, ts := newTestServer(t, "")
	req, _ := http.NewRequest("GET", ts.URL+"/artifact/fig11b", nil)
	req.Header.Set("X-Request-ID", "tracez-pin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: %d", resp.StatusCode)
	}
	code, body := get(t, ts.URL+"/tracez")
	if code != http.StatusOK {
		t.Fatalf("tracez: %d", code)
	}
	var doc struct {
		Recent  []obs.TraceSummary `json:"recent"`
		Slowest []obs.TraceSummary `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("tracez not JSON: %v\n%s", err, body)
	}
	var tr *obs.TraceSummary
	for i := range doc.Recent {
		if doc.Recent[i].ID == "tracez-pin" {
			tr = &doc.Recent[i]
		}
	}
	if tr == nil {
		t.Fatalf("request trace absent from /tracez recent view: %s", body)
	}
	if len(doc.Slowest) == 0 {
		t.Fatal("slowest view empty after a served request")
	}
	spanMS := map[string]float64{}
	var sum float64
	for _, sp := range tr.Spans {
		if sp.Depth == 0 {
			spanMS[sp.Name] += sp.MS
			sum += sp.MS
		}
	}
	for _, want := range []string{obs.StageCompile, obs.StageExecute, obs.StageRender} {
		if _, ok := spanMS[want]; !ok {
			t.Errorf("span %q missing from timeline: %+v", want, tr.Spans)
		}
	}
	if tr.WallMS <= 0 {
		t.Fatalf("wall %.3fms", tr.WallMS)
	}
	// The three spans run back to back on the leader goroutine; the only
	// slack is flight bookkeeping. Generous bounds keep loaded CI green.
	if ratio := sum / tr.WallMS; ratio < 0.5 || ratio > 1.05 {
		t.Errorf("top-level spans sum to %.3fms of %.3fms wall (ratio %.2f)", sum, tr.WallMS, ratio)
	}
	if len(tr.Stages) == 0 {
		t.Error("trace carries no per-cell stage aggregates")
	}
}

// TestAccessLog pins the structured log: one JSON line per request carrying
// the request ID, plan key, singleflight role, status, bytes, and the stage
// breakdown; parse errors are logged too, with their status and error.
func TestAccessLog(t *testing.T) {
	harness.ResetTraceCache()
	var buf bytes.Buffer
	logw := &syncWriter{w: &buf}
	srv, err := New(Config{AccessLog: logw})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestFrontend(t, srv)
	req, _ := http.NewRequest("GET", ts.URL+"/artifact/fig1", nil)
	req.Header.Set("X-Request-ID", "log-pin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code, _ := get(t, ts.URL+"/artifact/bogus"); code != http.StatusNotFound {
		t.Fatalf("bogus artifact: %d", code)
	}
	var entries []accessEntry
	logw.mu.Lock()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var e accessEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("access log line not JSON: %v\n%s", err, sc.Text())
		}
		entries = append(entries, e)
	}
	logw.mu.Unlock()
	if len(entries) != 2 {
		t.Fatalf("%d access log entries, want 2: %+v", len(entries), entries)
	}
	ok := entries[0]
	if ok.RequestID != "log-pin" || ok.Status != http.StatusOK || ok.Role != "leader" ||
		ok.Bytes == 0 || ok.PlanKey == "" || ok.Trace == nil || ok.DurMS <= 0 {
		t.Fatalf("success entry %+v", ok)
	}
	if _, has := findSpan(ok.Trace.Spans, obs.StageRender); !has {
		t.Fatalf("success entry's trace lacks the render span: %+v", ok.Trace)
	}
	bad := entries[1]
	if bad.Status != http.StatusNotFound || bad.Error == "" || bad.RequestID == "" {
		t.Fatalf("error entry %+v", bad)
	}
}

// TestCloseUnregistersGauges pins the lifecycle of the scrape-time callback
// gauges: Close drops them from the process-wide registry, so a closed
// Server (and its Runner) is neither pinned by nor invoked from later
// scrapes — and a stale Close cannot drop a newer server's callbacks.
func TestCloseUnregistersGauges(t *testing.T) {
	exposed := func() string {
		var b strings.Builder
		obs.Default.WritePrometheus(&b)
		return b.String()
	}
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exposed(), "binebenchd_pool_workers") {
		t.Fatal("pool gauges absent while the server is live")
	}
	srv.Close()
	if body := exposed(); strings.Contains(body, "binebenchd_pool_workers") ||
		strings.Contains(body, "binebenchd_ready") {
		t.Fatalf("closed server's gauges still exposed:\n%s", body)
	}

	old, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	next, err := New(Config{}) // replaces old's callbacks
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()
	old.Close() // stale: must not drop next's registrations
	if !strings.Contains(exposed(), "binebenchd_pool_workers") {
		t.Fatal("closing a superseded server dropped the live server's gauges")
	}
}

func findSpan(spans []obs.SpanSummary, name string) (obs.SpanSummary, bool) {
	for _, sp := range spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return obs.SpanSummary{}, false
}

// syncWriter serializes writes so the test can read the buffer while the
// server may still be logging.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// newTestFrontend wraps a caller-built Server in an httptest frontend with
// the standard teardown (used when the test needs a custom Config).
func newTestFrontend(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		if err := harness.SetTraceStore(""); err != nil {
			t.Error(err)
		}
		harness.ResetTraceCache()
	})
	return ts
}
