package harness

import (
	"context"
	"strings"
	"testing"

	"binetrees/internal/coll"
)

func TestSystemsTopologies(t *testing.T) {
	for _, sys := range []System{LUMI(), Leonardo(), MareNostrum()} {
		topo, err := sys.Topology()
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		if topo.Nodes() != sys.Machine.Nodes() {
			t.Errorf("%s: %d nodes, want %d", sys.Name, topo.Nodes(), sys.Machine.Nodes())
		}
		if max := maxInt(sys.NodeCounts); max > sys.Machine.Nodes() {
			t.Errorf("%s: sweeps %d nodes on a %d-node machine", sys.Name, max, sys.Machine.Nodes())
		}
	}
}

func TestVectorSizes(t *testing.T) {
	sizes := VectorSizes()
	if len(sizes) != 9 || sizes[0] != 32 || sizes[8] != 512<<20 {
		t.Fatalf("sizes %v", sizes)
	}
	if SizeLabel(32) != "32 B" || SizeLabel(2<<10) != "2 KiB" || SizeLabel(512<<20) != "512 MiB" {
		t.Error("labels")
	}
}

func TestPlacementsFragmentedAndComplete(t *testing.T) {
	sys := LUMI()
	pls, err := Placements(sys, []int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	fragmented := false
	for p, nodes := range pls {
		if len(nodes) != p {
			t.Fatalf("placement for %d has %d nodes", p, len(nodes))
		}
		seen := map[int]bool{}
		for i, n := range nodes {
			if n < 0 || n >= sys.Machine.Nodes() || seen[n] {
				t.Fatalf("placement for %d invalid at %d", p, i)
			}
			seen[n] = true
			if i > 0 && nodes[i] != nodes[i-1]+1 {
				fragmented = true
			}
		}
	}
	if !fragmented {
		t.Error("all placements contiguous; workload did not fragment the machine")
	}
}

func TestSweepCollectiveShape(t *testing.T) {
	sys := LUMI()
	counts := []int{16, 32}
	sizes := []int64{32, 1 << 20}
	res, err := sweepCollective(context.Background(), sys, coll.CAllreduce, counts, sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	bine := res.names(isBine)
	base := res.names(isBaseline)
	if len(bine) < 2 || len(base) < 3 {
		t.Fatalf("algo split: %d bine, %d baseline", len(bine), len(base))
	}
	for _, p := range counts {
		for _, size := range sizes {
			k := cellKey{P: p, Size: size}
			if _, _, ok := res.best(bine, k); !ok {
				t.Fatalf("no bine result for %+v", k)
			}
			name, c, ok := res.best(base, k)
			if !ok || c.Time <= 0 {
				t.Fatalf("no baseline result for %+v", k)
			}
			if l := familyLetter(res, name); l == "?" {
				t.Fatalf("unknown family for %s", name)
			}
		}
	}
}

func TestSweepLatencyVsBandwidthRegimes(t *testing.T) {
	// Sanity of the cost model's shape: for tiny vectors the
	// latency-optimized recursive doubling beats ring; for huge vectors on
	// few nodes ring wins (the paper's Fig. 10a shows exactly this
	// crossover).
	sys := LUMI()
	res, err := sweepCollective(context.Background(), sys, coll.CAllreduce, []int{16}, []int64{32, 512 << 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	small := cellKey{P: 16, Size: 32}
	huge := cellKey{P: 16, Size: 512 << 20}
	if res.Cells["ring"][small].Time < res.Cells["recursive-doubling"][small].Time {
		t.Error("ring should lose at 32 B")
	}
	if res.Cells["ring"][huge].Time > res.Cells["rabenseifner"][huge].Time {
		t.Error("ring should win at 512 MiB on 16 nodes")
	}
}

func TestExperimentDriversRunQuick(t *testing.T) {
	// Every driver must run to completion and produce non-trivial output.
	opts := Options{Quick: true}
	drivers := []struct {
		name string
		run  func(w *strings.Builder) error
		want string
	}{
		{"fig1", func(w *strings.Builder) error { return Fig1(context.Background(), w) }, "6n global"},
		{"eq2", func(w *strings.Builder) error { return Eq2(context.Background(), w) }, "0.6"},
		{"table5", func(w *strings.Builder) error { return TableBinomial(context.Background(), w, MareNostrum(), opts) }, "allreduce"},
		{"heatmap", func(w *strings.Builder) error { return HeatmapAllreduce(context.Background(), w, MareNostrum(), opts) }, "Bine best in"},
		{"boxplots", func(w *strings.Builder) error { return Boxplots(context.Background(), w, MareNostrum(), opts) }, "alltoall"},
		{"fig14", func(w *strings.Builder) error { return Fig14(context.Background(), w, opts) }, "strategy"},
		{"fig11b", func(w *strings.Builder) error { return Fig11b(context.Background(), w, opts) }, "allreduce"},
		{"hier", func(w *strings.Builder) error { return Hier(context.Background(), w, opts) }, "hier-bine"},
		{"appD", func(w *strings.Builder) error { return AppD(context.Background(), w) }, "torus-optimized"},
		{"ppn", func(w *strings.Builder) error { return PPN(context.Background(), w, opts) }, "ppn=4"},
		{"fig5", func(w *strings.Builder) error { return Fig5(context.Background(), w, opts) }, "LUMI"},
	}
	for _, d := range drivers {
		var sb strings.Builder
		if err := d.run(&sb); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		out := sb.String()
		if !strings.Contains(out, d.want) {
			t.Errorf("%s output missing %q:\n%s", d.name, d.want, out)
		}
	}
}

func TestFig1MatchesPaperNumbers(t *testing.T) {
	var sb strings.Builder
	if err := Fig1(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "6n global") || !strings.Contains(out, "3n global") {
		t.Fatalf("Fig. 1 numbers missing:\n%s", out)
	}
}

func TestTorusBeatsFlatOnHops(t *testing.T) {
	var sb strings.Builder
	if err := AppD(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	var flat, torus int
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "flat 1-D") {
			if _, err := fmtSscanfInt(line, &flat); err != nil {
				t.Fatal(err)
			}
		}
		if strings.Contains(line, "torus-optimized") {
			if _, err := fmtSscanfInt(line, &torus); err != nil {
				t.Fatal(err)
			}
		}
	}
	if torus <= 0 || flat <= 0 || torus >= flat {
		t.Fatalf("torus hops %d not below flat hops %d", torus, flat)
	}
}

// fmtSscanfInt extracts the first integer from a line.
func fmtSscanfInt(line string, out *int) (int, error) {
	for _, field := range strings.Fields(line) {
		var v int
		if _, err := sscanInt(field, &v); err == nil {
			*out = v
			return 1, nil
		}
	}
	return 0, errNoInt
}

var errNoInt = errString("no integer in line")

type errString string

func (e errString) Error() string { return string(e) }

func sscanInt(s string, out *int) (int, error) {
	v := 0
	if len(s) == 0 {
		return 0, errNoInt
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNoInt
		}
		v = v*10 + int(r-'0')
	}
	*out = v
	return 1, nil
}

// TestSweepCollectiveCancel pins that a caller's cancellation reaches the
// sweep's cells: a pre-cancelled context drains nothing and the cancellation
// error surfaces from sweepCollective — the invariant the ctxflow analyzer
// guards (sweepCollective once minted its own context.Background(), which
// silently detached every cell from the caller).
func TestSweepCollectiveCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := MareNostrum()
	_, err := sweepCollective(ctx, sys, coll.CAllreduce, []int{16}, []int64{32}, 0)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	// A live context still sweeps: the same call, uncancelled, succeeds.
	res, err := sweepCollective(context.Background(), sys, coll.CAllreduce, []int{16}, []int64{32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("uncancelled sweep produced no cells")
	}
}

// TestRunAllCancel pins the same cut-off one level up, on the flat
// cross-system job graph: a cancelled RunAll returns the cancellation error
// and renders nothing.
func TestRunAllCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := RunAll(ctx, &sb, Options{Quick: true, Systems: []string{"misc"}})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("cancelled RunAll rendered %d bytes", sb.Len())
	}
}
