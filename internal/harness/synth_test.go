package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"binetrees/internal/fabric"
	"binetrees/internal/tracestore"
)

func synthKey(name string) tracestore.Key {
	return tracestore.Key{Kind: "test-synth", Algo: name, Shape: "4", SchedVersion: schedVersion}
}

func synthTestTrace(elems int) *fabric.Trace {
	return fabric.NewTrace(4, []fabric.Record{{From: 0, To: 1, Step: 0, Sub: 0, Elems: elems}})
}

// TestResolverChainCounters walks one key through every stage of the
// resolver chain — synthesis, disk, recording fallback, synthesis disabled —
// and pins the counters and provenance stamps each stage must (and must not)
// produce. The counting is honest by the PR 5 rule: a stage that never
// served the trace never counts.
func TestResolverChainCounters(t *testing.T) {
	resetCaches(t)
	defer SetSynthesis(true)
	if err := SetTraceStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	tr := synthTestTrace(1)
	synthOK := func() (*fabric.Trace, error) { return tr, nil }
	mustNotRun := func(what string) func() (*fabric.Trace, error) {
		return func() (*fabric.Trace, error) {
			t.Fatalf("%s ran: resolver chain out of order", what)
			return nil, nil
		}
	}

	// Cold key with a working synthesizer: resolved without touching the
	// fabric, written through stamped synthesized.
	if _, err := cachedTraceKey(context.Background(), synthKey("a"), synthOK, mustNotRun("record")); err != nil {
		t.Fatal(err)
	}
	s := TraceCacheStats()
	if s.SynthHits != 1 || s.Records != 0 || s.DiskSaves != 1 {
		t.Fatalf("synthesis resolution miscounted: %+v", s)
	}
	if o := storeOrigin(synthKey("a")); o != tracestore.OriginSynthesized {
		t.Fatalf("synthesized trace stamped %q", o)
	}

	// After a memory reset the disk tier answers first: neither synthesis
	// nor recording runs.
	ResetTraceCache()
	diskHits := TraceCacheStats().DiskHits
	if _, err := cachedTraceKey(context.Background(), synthKey("a"), mustNotRun("synthesize"), mustNotRun("record")); err != nil {
		t.Fatal(err)
	}
	s = TraceCacheStats()
	if s.DiskHits != diskHits+1 || s.SynthHits != 0 || s.Records != 0 {
		t.Fatalf("disk resolution miscounted: %+v", s)
	}

	// A failing synthesizer is a counted fallback, not an error: the fabric
	// records, and the store stamp says so.
	if _, err := cachedTraceKey(context.Background(), synthKey("b"),
		func() (*fabric.Trace, error) { return nil, errors.New("cannot walk") },
		synthOK); err != nil {
		t.Fatal(err)
	}
	s = TraceCacheStats()
	if s.SynthFallbacks != 1 || s.Records != 1 || s.SynthHits != 0 {
		t.Fatalf("fallback miscounted: %+v", s)
	}
	if o := storeOrigin(synthKey("b")); o != tracestore.OriginRecorded {
		t.Fatalf("fallback recording stamped %q", o)
	}

	// Synthesis disabled: the synthesizer must not even be consulted.
	SetSynthesis(false)
	if _, err := cachedTraceKey(context.Background(), synthKey("c"), mustNotRun("synthesize"), synthOK); err != nil {
		t.Fatal(err)
	}
	s = TraceCacheStats()
	if s.Records != 2 || s.SynthHits != 0 || s.SynthFallbacks != 1 {
		t.Fatalf("disabled synthesis miscounted: %+v", s)
	}
	if o := storeOrigin(synthKey("c")); o != tracestore.OriginRecorded {
		t.Fatalf("synth-disabled recording stamped %q", o)
	}
}

// TestVerifySynthMode pins verification mode: a synthesized trace that
// matches its fabric recording byte for byte resolves (counted verified), a
// diverging one fails the request naming the first differing record, is
// never cached or stored, and leaves the key retryable.
func TestVerifySynthMode(t *testing.T) {
	resetCaches(t)
	defer SetVerifySynth(false)
	if err := SetTraceStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	SetVerifySynth(true)

	same := func() (*fabric.Trace, error) { return synthTestTrace(1), nil }
	other := func() (*fabric.Trace, error) { return synthTestTrace(2), nil }

	if _, err := cachedTraceKey(context.Background(), synthKey("match"), same, same); err != nil {
		t.Fatal(err)
	}
	s := TraceCacheStats()
	if s.SynthVerified != 1 || s.SynthHits != 1 || s.Records != 1 {
		t.Fatalf("verified resolution miscounted: %+v", s)
	}
	if o := storeOrigin(synthKey("match")); o != tracestore.OriginSynthesized {
		t.Fatalf("verified trace stamped %q", o)
	}

	_, err := cachedTraceKey(context.Background(), synthKey("diverge"), same, other)
	if err == nil || !strings.Contains(err.Error(), "record 0 diverges") {
		t.Fatalf("divergence not reported: %v", err)
	}
	s = TraceCacheStats()
	if s.SynthVerified != 1 || s.SynthHits != 1 {
		t.Fatalf("diverging synthesis counted as served: %+v", s)
	}
	if _, ok := store.Load().Load(synthKey("diverge")); ok {
		t.Fatal("diverging trace reached the store")
	}
	// The failed key was evicted, not poisoned: a fixed synthesizer passes.
	if _, err := cachedTraceKey(context.Background(), synthKey("diverge"), other, other); err != nil {
		t.Fatalf("retry after divergence: %v", err)
	}
	if s := TraceCacheStats(); s.SynthVerified != 2 {
		t.Fatalf("retry not verified: %+v", s)
	}
}
