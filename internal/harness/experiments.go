package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"binetrees/internal/alloc"
	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/netsim"
	"binetrees/internal/obs"
	"binetrees/internal/stats"
	"binetrees/internal/topology"
)

// Every experiment below compiles to a plan (see graph.go): recording and
// evaluation cells become tasks writing into index-addressed slots, and the
// artifact renders serially from those slots. The public driver functions
// drain their own plan on a private pool; RunAll shards all plans' tasks
// across one process-wide pool instead.

// Fig1 reproduces the motivating example of Fig. 1: global-link bytes of a
// broadcast over eight nodes on a 2:1 oversubscribed fat tree with two
// nodes per leaf, for the distance-doubling (Open MPI), distance-halving
// (MPICH) and Bine trees.
func Fig1(ctx context.Context, w io.Writer) error {
	p, err := planFig1()
	return runPlan(ctx, w, p, err, Options{})
}

func planFig1() (*plan, error) {
	const p, n = 8, 1 // eight nodes, unit vector; results are per n bytes
	groupOf := []int{0, 0, 1, 1, 2, 2, 3, 3}
	kinds := []core.Kind{core.BinomialDD, core.BinomialDH, core.BineDH}
	trees := make([]*core.Tree, len(kinds))
	for i, k := range kinds {
		tree, err := core.NewTree(k, p, 0)
		if err != nil {
			return nil, err
		}
		trees[i] = tree
	}
	traces := make([]*fabric.Trace, len(kinds))
	tasks := make([]task, len(kinds))
	for i := range kinds {
		i := i
		tasks[i] = task{system: systemMisc, run: func(ctx context.Context) error {
			tr, err := cachedNamedTrace(ctx, "tree-bcast", kinds[i].String(), fmt.Sprintf("p=%d/n=%d", p, n), p, func(c fabric.Comm) error {
				return coll.Bcast(c, trees[i], make([]int32, n))
			})
			if err != nil {
				return err
			}
			traces[i] = tr
			return nil
		}}
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Fig. 1 — broadcast over 8 nodes, 2 nodes per leaf switch (bytes on global links, per n bytes of vector):")
		for i, k := range kinds {
			algoName := map[core.Kind]string{
				core.BinomialDD: "distance-doubling binomial (Open MPI)",
				core.BinomialDH: "distance-halving binomial (MPICH)",
				core.BineDH:     "distance-halving Bine",
			}[k]
			global, total := netsim.GlobalTraffic(traces[i], groupOf)
			fmt.Fprintf(w, "  %-42s %dn global of %dn total\n", algoName, global, total)
		}
		fmt.Fprintln(w, "  paper: 6n (distance doubling) vs 3n (distance halving)")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// Eq2 tabulates the per-step modular distances of Bine vs binomial
// schedules and their ratio, illustrating the 2/3 bound of Sec. 2.4.1.
func Eq2(ctx context.Context, w io.Writer) error {
	p, err := planEq2()
	return runPlan(ctx, w, p, err, Options{})
}

func planEq2() (*plan, error) {
	// Pure schedule arithmetic: no cells, everything happens at render.
	render := func(w io.Writer) error {
		p := 1024
		bine := core.MustButterfly(core.BflyBineDH, p)
		binom := core.MustButterfly(core.BflyBinomialDH, p)
		fmt.Fprintf(w, "Eq. 2 — per-step modular distance, p=%d (bound: ratio → 2/3 ≈ 0.667):\n", p)
		fmt.Fprintf(w, "  %-6s %10s %10s %8s\n", "step", "binomial", "bine", "ratio")
		for i := 0; i < bine.S; i++ {
			db, dn := bine.ModDistAt(i), binom.ModDistAt(i)
			fmt.Fprintf(w, "  %-6d %10d %10d %8.3f\n", i, dn, db, float64(db)/float64(dn))
		}
		return nil
	}
	return &plan{render: render}, nil
}

// Fig5 reproduces the allocation study of Sec. 2.4.2: synthetic fragmented
// job allocations on Leonardo-like and LUMI-like machines, reporting the
// distribution of global-traffic reduction of a Bine allreduce over the
// binomial allreduce with the same distance ordering, bucketed by node
// count.
func Fig5(ctx context.Context, w io.Writer, opts Options) error {
	p, err := planFig5(opts)
	return runPlan(ctx, w, p, err, opts)
}

func planFig5(opts Options) (*plan, error) {
	type sysCase struct {
		name    string
		key     string
		machine alloc.Machine
		jobs    int
		maxP    int
		seed    int64
	}
	cases := []sysCase{
		{"Leonardo", "leonardo", alloc.Machine{Groups: 23, NodesPerGroup: 180}, 1116, 256, 3},
		{"LUMI", "lumi", alloc.Machine{Groups: 24, NodesPerGroup: 124}, 1914, 2048, 4},
	}
	if opts.Quick {
		for i := range cases {
			cases[i].jobs = 200
			cases[i].maxP = 256
		}
	}
	kinds := [2]core.ButterflyKind{core.BflyBineDD, core.BflyBinomialDD}
	allreduceTrace := func(ctx context.Context, kind core.ButterflyKind, p int) (*fabric.Trace, error) {
		b, err := core.NewButterfly(kind, p)
		if err != nil {
			return nil, err
		}
		return cachedNamedTrace(ctx, "bfly-allreduce", kind.String(), fmt.Sprintf("p=%d/n=%d", p, p), p, func(c fabric.Comm) error {
			return coll.AllreduceRsAg(c, b, make([]int32, p), coll.OpSum)
		})
	}
	// The workload replay is deterministic, so the job lists — and from
	// them every needed (kind, rank count) recording — are enumerable at
	// plan time. Each case records only the rank counts no earlier case
	// needed; the recorded traces land in per-case index-addressed slots.
	type recSlot struct {
		p     int
		cases [2]*fabric.Trace // recorded {bine, binomial} pair
	}
	caseJobs := make([][]alloc.Job, len(cases))
	caseMissing := make([][]*recSlot, len(cases))
	seen := map[int]bool{}
	var tasks []task
	for ci, sc := range cases {
		wl := FragmentingWorkload(sc.machine, sc.maxP, sc.seed)
		wl.Run(800) // reach steady-state fragmentation before sampling
		caseJobs[ci] = wl.Run(sc.jobs)
		for _, job := range caseJobs[ci] {
			p := len(job.Nodes)
			if p < 16 || p&(p-1) != 0 {
				continue // the study buckets power-of-two jobs ≥ 16 nodes
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			slot := &recSlot{p: p}
			caseMissing[ci] = append(caseMissing[ci], slot)
			for ki := range kinds {
				ki := ki
				slot := slot
				tasks = append(tasks, task{system: sc.key, run: func(ctx context.Context) error {
					tr, err := allreduceTrace(ctx, kinds[ki], slot.p)
					if err != nil {
						return err
					}
					slot.cases[ki] = tr
					return nil
				}})
			}
		}
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Fig. 5 — global-traffic reduction of Bine vs binomial allreduce across synthetic Slurm-like allocations")
		fmt.Fprintln(w, "(boxplots per job size; theoretical bound 33%, Eq. 2):")
		traces := map[int][2]*fabric.Trace{} // p → {bine, binomial}
		for ci, sc := range cases {
			for _, slot := range caseMissing[ci] {
				traces[slot.p] = slot.cases
			}
			buckets := map[int][]float64{}
			for _, job := range caseJobs[ci] {
				p := len(job.Nodes)
				if p < 16 || p&(p-1) != 0 {
					continue
				}
				tr := traces[p]
				bine, _ := netsim.GlobalTraffic(tr[0], job.Groups)
				binom, _ := netsim.GlobalTraffic(tr[1], job.Groups)
				if binom == 0 {
					continue // single-group job: no global traffic at all
				}
				buckets[p] = append(buckets[p], 100*(1-float64(bine)/float64(binom)))
			}
			fmt.Fprintf(w, "\n  %s (%d jobs placed):\n", sc.name, len(caseJobs[ci]))
			fmt.Fprintf(w, "  %-7s %-52s %s\n", "nodes", "reduction %  [-20 ... 40]", "summary")
			var ps []int
			for p := range buckets {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			for _, p := range ps {
				box := stats.NewBox(buckets[p])
				fmt.Fprintf(w, "  %-7d %-52s %s\n", p, box.Render(-20, 40, 52), box)
			}
		}
		fmt.Fprintln(w, "\n  paper: median reductions grow with job size, bounded by 33%; small jobs can regress")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// TableBinomial reproduces the per-system Bine-vs-binomial comparison
// (Tables 3, 4 and 5): for every collective, the fraction of
// configurations won/lost against the best binomial baseline, the
// average/max gain and drop, and the average/max global-traffic reduction.
func TableBinomial(ctx context.Context, w io.Writer, sys System, opts Options) error {
	p, err := planTableBinomial(sys, opts)
	return runPlan(ctx, w, p, err, opts)
}

func planTableBinomial(sys System, opts Options) (*plan, error) {
	counts := opts.nodeCounts(sys)
	sizes := opts.sizes()
	var tasks []task
	finishes := make([]func() *sweepResult, len(coll.Collectives))
	for ci, collective := range coll.Collectives {
		ts, finish, err := planSweep(sys, collective, counts, sizes)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, ts...)
		finishes[ci] = finish
	}
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "Bine vs binomial trees on %s (nodes %v, %d vector sizes)\n", sys.Name, counts, len(sizes))
		fmt.Fprintf(w, "  %-15s %6s %15s %6s %15s %18s\n",
			"collective", "%win", "avg/max gain", "%loss", "avg/max drop", "avg/max traffic red")
		for ci, collective := range coll.Collectives {
			res := finishes[ci]()
			bineNames := res.names(isBine)
			binomNames := res.names(isBinomial)
			var bineTimes, binomTimes, reds []float64
			for _, p := range counts {
				for _, size := range sizes {
					k := cellKey{P: p, Size: size}
					_, bc, ok1 := res.best(bineNames, k)
					_, nc, ok2 := res.best(binomNames, k)
					if !ok1 || !ok2 {
						continue
					}
					bineTimes = append(bineTimes, bc.Time)
					binomTimes = append(binomTimes, nc.Time)
					if nc.Global > 0 {
						reds = append(reds, 100*(1-bc.Global/nc.Global))
					}
				}
			}
			wl := stats.NewWinLoss(bineTimes, binomTimes)
			var avgRed, maxRed float64
			if len(reds) > 0 {
				sum := 0.0
				for _, r := range reds {
					sum += r
					if r > maxRed {
						maxRed = r
					}
				}
				avgRed = sum / float64(len(reds))
			}
			fmt.Fprintf(w, "  %-15s %5.0f%% %6.0f%%/%5.0f%% %5.0f%% %6.0f%%/%5.0f%% %8.0f%%/%7.0f%%\n",
				collective, wl.WinPct, wl.AvgGain, wl.MaxGain,
				wl.LossPct, wl.AvgDrop, wl.MaxDrop, avgRed, maxRed)
		}
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// familyLetter maps baseline algorithms to the single letters of the
// paper's heatmaps: N = binomial, R = ring, D = other state of the art.
func familyLetter(res *sweepResult, name string) string {
	for _, a := range res.Algos {
		if a.Name == name {
			switch {
			case a.Binomial:
				return "N"
			case a.Name == "ring":
				return "R"
			default:
				return "D"
			}
		}
	}
	return "?"
}

// HeatmapAllreduce reproduces Figs. 9a/10a: for every (node count, vector
// size) cell of the allreduce sweep, either the Bine speedup over the best
// baseline (when Bine wins) or the letter of the winning baseline.
func HeatmapAllreduce(ctx context.Context, w io.Writer, sys System, opts Options) error {
	p, err := planHeatmapAllreduce(sys, opts)
	return runPlan(ctx, w, p, err, opts)
}

func planHeatmapAllreduce(sys System, opts Options) (*plan, error) {
	counts := opts.nodeCounts(sys)
	sizes := opts.sizes()
	tasks, finish, err := planSweep(sys, coll.CAllreduce, counts, sizes)
	if err != nil {
		return nil, err
	}
	render := func(w io.Writer) error {
		res := finish()
		fmt.Fprintf(w, "Allreduce heatmap on %s (cell = Bine speedup vs best baseline, or winning baseline letter;\n", sys.Name)
		fmt.Fprintln(w, " N = binomial, R = ring, D = other):")
		fmt.Fprintf(w, "  %-9s", "")
		for _, p := range counts {
			fmt.Fprintf(w, " %6d", p)
		}
		fmt.Fprintln(w)
		bineNames, baseNames := res.names(isBine), res.names(isBaseline)
		bineWins := 0
		cells := 0
		for _, size := range sizes {
			fmt.Fprintf(w, "  %-9s", SizeLabel(size))
			for _, p := range counts {
				k := cellKey{P: p, Size: size}
				_, bc, ok1 := res.best(bineNames, k)
				bn, nc, ok2 := res.best(baseNames, k)
				switch {
				case !ok1 || !ok2:
					fmt.Fprintf(w, " %6s", "-")
				case bc.Time <= nc.Time:
					bineWins++
					cells++
					fmt.Fprintf(w, " %6.2f", nc.Time/bc.Time)
				default:
					cells++
					fmt.Fprintf(w, " %6s", familyLetter(res, bn))
				}
			}
			fmt.Fprintln(w)
		}
		if cells > 0 {
			fmt.Fprintf(w, "  Bine best in %d/%d cells (%.0f%%)\n", bineWins, cells, 100*float64(bineWins)/float64(cells))
		}
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// Boxplots reproduces Figs. 9b/10b/11a: for every collective, the
// distribution of Bine's improvement over the best baseline in the
// configurations where Bine wins, plus the win percentage.
func Boxplots(ctx context.Context, w io.Writer, sys System, opts Options) error {
	p, err := planBoxplots(sys, opts)
	return runPlan(ctx, w, p, err, opts)
}

func planBoxplots(sys System, opts Options) (*plan, error) {
	counts := opts.nodeCounts(sys)
	sizes := opts.sizes()
	var tasks []task
	finishes := make([]func() *sweepResult, len(coll.Collectives))
	for ci, collective := range coll.Collectives {
		ts, finish, err := planSweep(sys, collective, counts, sizes)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, ts...)
		finishes[ci] = finish
	}
	render := func(w io.Writer) error {
		fmt.Fprintf(w, "Per-collective improvement over the best baseline on %s (cells where Bine wins):\n", sys.Name)
		fmt.Fprintf(w, "  %-15s %-6s %-46s %s\n", "collective", "win%", "improvement %  [0 ... 100]", "summary")
		for ci, collective := range coll.Collectives {
			res := finishes[ci]()
			bineNames, baseNames := res.names(isBine), res.names(isBaseline)
			var improvements []float64
			cells := 0
			for _, p := range counts {
				for _, size := range sizes {
					k := cellKey{P: p, Size: size}
					_, bc, ok1 := res.best(bineNames, k)
					_, nc, ok2 := res.best(baseNames, k)
					if !ok1 || !ok2 {
						continue
					}
					cells++
					if bc.Time < nc.Time {
						improvements = append(improvements, 100*(nc.Time/bc.Time-1))
					}
				}
			}
			box := stats.NewBox(improvements)
			win := 0.0
			if cells > 0 {
				win = 100 * float64(len(improvements)) / float64(cells)
			}
			fmt.Fprintf(w, "  %-15s %4.0f%%  %-46s %s\n", collective, win, box.Render(0, 100, 46), box)
		}
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// Fig14 reproduces Appendix B: which non-contiguous-data strategy wins each
// (node count, vector size) cell of the allgather sweep on the LUMI-like
// system, and its gain over the binomial butterfly.
func Fig14(ctx context.Context, w io.Writer, opts Options) error {
	p, err := planFig14(opts)
	return runPlan(ctx, w, p, err, opts)
}

func planFig14(opts Options) (*plan, error) {
	sys := LUMI()
	counts := opts.nodeCounts(sys)
	sizes := opts.sizes()
	tasks, finish, err := planSweep(sys, coll.CAllgather, counts, sizes)
	if err != nil {
		return nil, err
	}
	render := func(w io.Writer) error {
		res := finish()
		strategies := map[string]string{
			"bine-block":     "B",
			"bine-permute":   "P",
			"bine-send":      "S",
			"bine-two-trans": "T",
		}
		var stratNames []string
		for name := range strategies {
			stratNames = append(stratNames, name)
		}
		sort.Strings(stratNames)
		fmt.Fprintln(w, "Fig. 14 — best non-contiguous-data strategy per allgather cell on LUMI")
		fmt.Fprintln(w, "(B = block-by-block, P = permute, S = send, T = two transmissions; value = gain vs recursive doubling):")
		fmt.Fprintf(w, "  %-9s", "")
		for _, p := range counts {
			fmt.Fprintf(w, " %8d", p)
		}
		fmt.Fprintln(w)
		for _, size := range sizes {
			fmt.Fprintf(w, "  %-9s", SizeLabel(size))
			for _, p := range counts {
				k := cellKey{P: p, Size: size}
				name, bc, ok1 := res.best(stratNames, k)
				nc, ok2 := res.Cells["recursive-doubling"][k]
				if !ok1 || !ok2 {
					fmt.Fprintf(w, " %8s", "-")
					continue
				}
				fmt.Fprintf(w, " %s %5.2fx", strategies[name], nc.Time/bc.Time)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "  paper: permute wins small vectors, send takes over at scale, block-by-block and")
		fmt.Fprintln(w, "  two-transmissions split the large-vector regime")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// Fig11b reproduces the Fugaku evaluation (Sec. 5.4): Bine torus
// collectives against bucket, ring and butterfly baselines over the paper's
// job shapes, as per-collective improvement boxplots.
func Fig11b(ctx context.Context, w io.Writer, opts Options) error {
	p, err := planFig11b(opts)
	return runPlan(ctx, w, p, err, opts)
}

func planFig11b(opts Options) (*plan, error) {
	shapes := FugakuShapes()
	if opts.Quick {
		shapes = [][]int{{2, 2, 2}, {4, 4, 4}, {8, 2}}
	}
	sizes := opts.sizes()
	type group struct {
		collective coll.Collective
		bine       []torusAlgo
		base       []torusAlgo
		flatBine   []string // registry algorithms run on the torus as flat baselines/candidates
		flatBase   []string
	}
	ta := torusAlgos()
	pick := func(c coll.Collective, bine bool) []torusAlgo {
		var out []torusAlgo
		for _, a := range ta {
			if a.Coll == c && a.Bine == bine {
				out = append(out, a)
			}
		}
		return out
	}
	groups := []group{
		{collective: coll.CAllreduce, bine: pick(coll.CAllreduce, true), base: pick(coll.CAllreduce, false),
			flatBase: []string{"ring", "rabenseifner", "recursive-doubling"}},
		{collective: coll.CBcast, bine: pick(coll.CBcast, true), flatBase: []string{"binomial-dd", "binomial-dh", "linear"}},
		{collective: coll.CReduce, bine: pick(coll.CReduce, true), flatBase: []string{"binomial-dd", "binomial-dh", "linear"}},
		{collective: coll.CReduceScatter, flatBine: []string{"bine-permute", "bine-send"},
			flatBase: []string{"recursive-halving", "ring"}},
		{collective: coll.CAllgather, flatBine: []string{"bine-permute", "bine-send"},
			flatBase: []string{"recursive-doubling", "ring", "bruck"}},
	}
	registry := coll.Registry()
	// Every shape is shared by every collective group; build the geometry
	// and network model once, up front.
	tors := make([]core.Torus, len(shapes))
	topos := make([]*topology.Torus, len(shapes))
	for i, dims := range shapes {
		tors[i] = core.MustTorus(dims...)
		topo, err := FugakuTopology(dims)
		if err != nil {
			return nil, err
		}
		topos[i] = topo
	}
	// One eval cell per (collective group, shape, algorithm), appended in
	// the serial evaluation order: a group's Bine candidates (torus then
	// flat) followed by its baselines (torus then flat). Each cell records
	// — or fetches from the trace cache — its schedule and scores every
	// size; results land in the cell's own slot of an index-addressed
	// slice.
	type evalJob struct {
		group, shape int
		torus        *torusAlgo // nil for registry (flat) algorithms
		flat         string
	}
	var jobs []evalJob
	for gi := range groups {
		g := &groups[gi]
		for si := range shapes {
			for ai := range g.bine {
				jobs = append(jobs, evalJob{group: gi, shape: si, torus: &g.bine[ai]})
			}
			for _, name := range g.flatBine {
				jobs = append(jobs, evalJob{group: gi, shape: si, flat: name})
			}
			for ai := range g.base {
				jobs = append(jobs, evalJob{group: gi, shape: si, torus: &g.base[ai]})
			}
			for _, name := range g.flatBase {
				jobs = append(jobs, evalJob{group: gi, shape: si, flat: name})
			}
		}
	}
	outs := make([]map[int64]float64, len(jobs))
	tasks := make([]task, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = task{system: systemFugaku, run: func(ctx context.Context) error {
			j := jobs[i]
			tor, topo := tors[j.shape], topos[j.shape]
			reduces := groups[j.group].collective.Reduces()
			if j.torus != nil {
				tr, n, err := cachedTorusTrace(ctx, *j.torus, tor, 0)
				if err != nil {
					return err
				}
				endEval := obs.TimeStage(ctx, obs.StageEvaluate)
				rs, err := evaluateOnTorusSizes(tr, n, topo, sizes, reduces, j.torus.Overlap)
				endEval()
				if err != nil {
					return err
				}
				out := make(map[int64]float64, len(sizes))
				for si, size := range sizes {
					out[size] = rs[si].Time
				}
				outs[i] = out
				return nil
			}
			algo, ok := coll.Find(registry, groups[j.group].collective, j.flat)
			if !ok {
				return fmt.Errorf("%v/%s not registered", groups[j.group].collective, j.flat)
			}
			if algo.Pow2Only {
				if _, pow2 := core.Log2(tor.P()); !pow2 {
					return nil // skipped: a nil slot folds as no result
				}
			}
			tr, err := cachedTrace(ctx, algo, tor.P(), 0)
			if err != nil {
				return err
			}
			defer obs.TimeStage(ctx, obs.StageEvaluate)()
			placement := make([]int, tor.P())
			for r := range placement {
				placement[r] = r
			}
			elemBytes := make([]float64, len(sizes))
			copyBytes := make([]float64, len(sizes))
			for si, size := range sizes {
				elemBytes[si] = float64(size) / float64(tor.P())
				copyBytes[si] = algo.CopyFactor * float64(size)
			}
			rs, err := netsim.EvaluateSizes(tr, topo, FugakuParams(), netsim.Eval{
				Placement:   placement,
				Reduces:     reduces,
				Overlap:     algo.Overlap,
				CopyBytesAt: copyBytes,
			}, elemBytes)
			if err != nil {
				return err
			}
			out := make(map[int64]float64, len(sizes))
			for si, size := range sizes {
				out[size] = rs[si].Time
			}
			outs[i] = out
			return nil
		}}
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Fugaku (6D-torus model) — Bine improvement over the best baseline per collective:")
		// Fold and render serially in the original (group, shape) order;
		// min is order-independent, so the boxplots match the serial
		// engine exactly.
		fold := func(dst, src map[int64]float64) {
			for size, t := range src {
				if cur, ok := dst[size]; !ok || t < cur {
					dst[size] = t
				}
			}
		}
		jobIdx := 0
		for _, g := range groups {
			var improvements []float64
			cells, wins := 0, 0
			for range shapes {
				bineTimes := map[int64]float64{}
				baseTimes := map[int64]float64{}
				nBine := len(g.bine) + len(g.flatBine)
				nAll := nBine + len(g.base) + len(g.flatBase)
				for k := 0; k < nAll; k++ {
					if k < nBine {
						fold(bineTimes, outs[jobIdx])
					} else {
						fold(baseTimes, outs[jobIdx])
					}
					jobIdx++
				}
				for _, size := range sizes {
					bt, ok1 := bineTimes[size]
					nt, ok2 := baseTimes[size]
					if !ok1 || !ok2 {
						continue
					}
					cells++
					if bt < nt {
						wins++
						improvements = append(improvements, 100*(nt/bt-1))
					}
				}
			}
			box := stats.NewBox(improvements)
			win := 0.0
			if cells > 0 {
				win = 100 * float64(wins) / float64(cells)
			}
			fmt.Fprintf(w, "  %-15s %4.0f%%  %-46s %s\n", g.collective, win, box.Render(0, 400, 46), box)
		}
		fmt.Fprintln(w, "  paper: up to 5x for reduce-scatter/allreduce; broadcast and reduce face vendor-tuned torus algorithms")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// Hier reproduces the multi-GPU discussion of Sec. 6.2: a hierarchical Bine
// allreduce (intra-node reduce-scatter, inter-node Bine allreduce,
// intra-node allgather) against flat algorithms on a machine with four
// fully connected GPUs per node.
func Hier(ctx context.Context, w io.Writer, opts Options) error {
	p, err := planHier(opts)
	return runPlan(ctx, w, p, err, opts)
}

func planHier(opts Options) (*plan, error) {
	const gpusPerNode = 4
	counts := []int{16, 64, 256, 512}
	if opts.Quick {
		counts = []int{16, 64}
	}
	sizes := opts.sizes()
	params := defaultParams()
	type hierAlgo struct {
		name string
		run  func(c fabric.Comm, buf []int32) error
	}
	type hierSetup struct {
		topo  topology.Topology
		algos []hierAlgo
	}
	// Build each GPU count's topology and schedules at plan time (cheap);
	// every (count, algorithm) pair executes and scores as its own cell.
	setups := make([]hierSetup, len(counts))
	for ci, p := range counts {
		topo, err := topology.NewUpDown(topology.UpDownConfig{
			Name: "gpu-cluster", Groups: p / gpusPerNode, NodesPerGroup: gpusPerNode,
			NICBW: topology.GbpsToBytes(1600), Oversub: 8, // NVLink in, tapered IB out
		})
		if err != nil {
			return nil, err
		}
		bfly, err := core.NewButterfly(core.BflyBineDD, p)
		if err != nil {
			return nil, err
		}
		binom, err := core.NewButterfly(core.BflyBinomialDH, p)
		if err != nil {
			return nil, err
		}
		setups[ci] = hierSetup{topo: topo, algos: []hierAlgo{
			{"hier-bine", func(c fabric.Comm, buf []int32) error {
				return coll.HierarchicalAllreduce(c, gpusPerNode, core.BflyBineDD, buf, coll.OpSum)
			}},
			{"flat-bine-bw", func(c fabric.Comm, buf []int32) error {
				return coll.AllreduceRsAg(c, bfly, buf, coll.OpSum)
			}},
			{"ring", func(c fabric.Comm, buf []int32) error {
				return coll.RingAllreduce(c, buf, coll.OpSum)
			}},
			{"rabenseifner", func(c fabric.Comm, buf []int32) error {
				return coll.AllreduceRsAg(c, binom, buf, coll.OpSum)
			}},
		}}
	}
	algosPerCount := len(setups[0].algos)
	times := make([]map[int64]float64, len(counts)*algosPerCount)
	tasks := make([]task, len(times))
	for i := range times {
		i := i
		tasks[i] = task{system: systemMisc, run: func(ctx context.Context) error {
			ci, ai := i/algosPerCount, i%algosPerCount
			p := counts[ci]
			a := setups[ci].algos[ai]
			n := p * gpusPerNode
			tr, err := cachedNamedTrace(ctx, "hier-allreduce", a.name, fmt.Sprintf("p=%d/n=%d", p, n), p, func(c fabric.Comm) error {
				return a.run(c, make([]int32, n))
			})
			if err != nil {
				return err
			}
			defer obs.TimeStage(ctx, obs.StageEvaluate)()
			placement := make([]int, p)
			for r := range placement {
				placement[r] = r
			}
			elemBytes := make([]float64, len(sizes))
			for si, size := range sizes {
				elemBytes[si] = float64(size) / float64(n)
			}
			rs, err := netsim.EvaluateSizes(tr, setups[ci].topo, params, netsim.Eval{
				Placement: placement,
				Reduces:   true,
				Overlap:   0.3,
			}, elemBytes)
			if err != nil {
				return err
			}
			out := make(map[int64]float64, len(sizes))
			for si, size := range sizes {
				out[size] = rs[si].Time
			}
			times[i] = out
			return nil
		}}
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Sec. 6.2 — hierarchical Bine allreduce on 4-GPU nodes (times in µs; best per cell marked *):")
		for ci, p := range counts {
			fmt.Fprintf(w, "  %d GPUs:\n", p)
			algTimes := times[ci*algosPerCount : (ci+1)*algosPerCount]
			fmt.Fprintf(w, "    %-14s", "")
			for _, size := range sizes {
				fmt.Fprintf(w, " %10s", SizeLabel(size))
			}
			fmt.Fprintln(w)
			for ai, a := range setups[ci].algos {
				fmt.Fprintf(w, "    %-14s", a.name)
				for _, size := range sizes {
					t := algTimes[ai][size]
					best := true
					for _, other := range algTimes {
						if other[size] < t {
							best = false
							break
						}
					}
					mark := " "
					if best {
						mark = "*"
					}
					fmt.Fprintf(w, " %9.1f%s", t*1e6, mark)
				}
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintln(w, "  paper: hierarchical Bine beats flat MPI algorithms for >4 MiB and approaches NCCL")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}

// AppD illustrates Appendix D on a 4×4 torus: hop counts of the flat Bine
// tree vs the torus-optimized construction, and the DFS-postorder block
// permutation.
func AppD(ctx context.Context, w io.Writer) error {
	p, err := planAppD()
	return runPlan(ctx, w, p, err, Options{})
}

func planAppD() (*plan, error) {
	tor := core.MustTorus(4, 4)
	topo, err := FugakuTopology([]int{4, 4})
	if err != nil {
		return nil, err
	}
	flatTree := core.MustTree(core.BineDH, tor.P(), 0)
	var flatTr, torusTr *fabric.Trace
	tasks := []task{
		{system: systemFugaku, run: func(ctx context.Context) error {
			tr, err := cachedNamedTrace(ctx, "tree-bcast", core.BineDH.String(), fmt.Sprintf("p=%d/n=1", tor.P()), tor.P(), func(c fabric.Comm) error {
				return coll.Bcast(c, flatTree, make([]int32, 1))
			})
			flatTr = tr
			return err
		}},
		{system: systemFugaku, run: func(ctx context.Context) error {
			tr, err := cachedNamedTrace(ctx, "torus-bcast", core.BineDH.String(), fmt.Sprintf("%v/n=1", tor.Dims), tor.P(), func(c fabric.Comm) error {
				return coll.TorusBcast(c, tor, core.BineDH, 0, make([]int32, 1))
			})
			torusTr = tr
			return err
		}},
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Appendix D — 4×4 torus: link hops of tree broadcasts (lower = better locality):")
		hops := func(tr *fabric.Trace) int {
			routes, total := topo.Routes(), 0
			for i := 0; i < tr.NumRecords(); i++ {
				total += len(routes.Route(tr.From(i), tr.To(i))) - 2
			}
			return total
		}
		fmt.Fprintf(w, "  flat 1-D Bine tree:        %d hops\n", hops(flatTr))
		fmt.Fprintf(w, "  torus-optimized Bine tree: %d hops\n", hops(torusTr))
		perm, _, err := tor.DFSPostorder()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  DFS-postorder block permutation (Appendix D.2): %v\n", perm)
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}
