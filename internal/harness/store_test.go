package harness

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// renderSuite runs the full quick artifact suite and returns its rendering.
func renderSuite(t *testing.T, workers int) string {
	t.Helper()
	var sb strings.Builder
	if err := RunAll(context.Background(), &sb, Options{Quick: true, Workers: workers}); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sb.String()
}

func resetCaches(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if err := SetTraceStore(""); err != nil {
			t.Error(err)
		}
		ResetTraceCache()
	})
	if err := SetTraceStore(""); err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
}

// TestStoreEquivalenceMatrix pins the tentpole guarantee of the persistent
// store: the complete quick artifact suite renders byte-identically across
// {no store, cold store, warm store} × {Workers=1, Workers=NumCPU}. A cold
// run synthesizes every schedule — zero goroutine-fabric recordings — and a
// warm-store run loads everything from disk without even synthesizing
// (asserted via the cache counters).
func TestStoreEquivalenceMatrix(t *testing.T) {
	resetCaches(t)
	dir := t.TempDir()
	reference := renderSuite(t, 1)
	if s := TraceCacheStats(); s.SynthHits == 0 {
		t.Fatalf("baseline run synthesized nothing: %+v", s)
	} else if s.Records != 0 {
		t.Fatalf("baseline run fell back to the fabric %d times: %+v", s.Records, s)
	}

	type variant struct {
		name    string
		store   bool
		workers int
	}
	variants := []variant{
		{"no-store/parallel", false, runtime.NumCPU()},
		{"cold-store/serial", true, 1},
		{"warm-store/serial", true, 1},
		{"warm-store/parallel", true, runtime.NumCPU()},
	}
	for i, v := range variants {
		ResetTraceCache()
		storeDir := ""
		if v.store {
			storeDir = dir
		}
		if err := SetTraceStore(storeDir); err != nil {
			t.Fatal(err)
		}
		if out := renderSuite(t, v.workers); out != reference {
			t.Fatalf("%s: rendering diverges from the no-store serial reference", v.name)
		}
		s := TraceCacheStats()
		warm := i >= 2 // the cold-store pass populated dir
		switch {
		case s.Records != 0:
			t.Fatalf("%s: %d goroutine-fabric recordings (want all-synthesized): %+v", v.name, s.Records, s)
		case !v.store && s.DiskHits+s.DiskSaves != 0:
			t.Fatalf("%s: disk activity without a store: %+v", v.name, s)
		case v.store && !warm && (s.SynthHits == 0 || s.DiskSaves == 0):
			t.Fatalf("%s: cold store did not synthesize and save: %+v", v.name, s)
		case warm && s.SynthHits != 0:
			t.Fatalf("%s: warm store still synthesized %d schedules: %+v", v.name, s.SynthHits, s)
		}
		if warm && s.DiskHits == 0 {
			t.Fatalf("%s: warm store served no hits: %+v", v.name, s)
		}
	}
}

// TestStoreCorruptionRecovered pins the degradation path: damaging every
// stored file turns the warm store cold — corrupt files are evicted,
// schedules re-synthesize and re-save — without changing a single artifact
// byte.
func TestStoreCorruptionRecovered(t *testing.T) {
	resetCaches(t)
	dir := t.TempDir()
	reference := renderSuite(t, runtime.NumCPU())
	if err := SetTraceStore(dir); err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
	if out := renderSuite(t, runtime.NumCPU()); out != reference {
		t.Fatal("cold store rendering diverges")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("store files %v err %v", files, err)
	}
	for i, f := range files {
		// Alternate damage modes: truncation and garbling.
		if i%2 == 0 {
			if err := os.Truncate(f, 5); err != nil {
				t.Fatal(err)
			}
		} else if err := os.WriteFile(f, []byte("BTRCgarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ResetTraceCache()
	if out := renderSuite(t, runtime.NumCPU()); out != reference {
		t.Fatal("rendering diverges after store corruption")
	}
	s := TraceCacheStats()
	if s.CorruptEvictions < uint64(len(files)) {
		t.Fatalf("only %d of %d corrupt files evicted: %+v", s.CorruptEvictions, len(files), s)
	}
	if s.SynthHits == 0 {
		t.Fatalf("corrupt store served traces without re-synthesizing: %+v", s)
	}
	// The re-saved store is warm again.
	ResetTraceCache()
	if out := renderSuite(t, runtime.NumCPU()); out != reference {
		t.Fatal("rendering diverges after recovery")
	}
	if s := TraceCacheStats(); s.SynthHits+s.Records != 0 {
		t.Fatalf("recovered store still resolving cold: %+v", s)
	}
}
