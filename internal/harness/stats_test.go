package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"binetrees/internal/fabric"
	"binetrees/internal/tracestore"
)

// hammerKey fires lanes concurrent cachedTraceKey calls at one key, holding
// the recording in flight until every lane has started so the waiter path is
// actually exercised, and returns how many callers saw an error.
func hammerKey(t *testing.T, key tracestore.Key, lanes int, record func() (*fabric.Trace, error)) int {
	t.Helper()
	var entered, errCount atomic.Int32
	rec := func() (*fabric.Trace, error) {
		for int(entered.Load()) < lanes {
			runtime.Gosched() // keep the entry mid-recording until all lanes piled on
		}
		return record()
	}
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			if _, err := cachedTraceKey(context.Background(), key, nil, rec); err != nil {
				errCount.Add(1)
			}
		}()
	}
	wg.Wait()
	return int(errCount.Load())
}

// TestMemoryHitAccountingConcurrent is the regression test for the warm-hit
// over-reporting bug: cachedTraceKey used to count a memory hit for every
// waiter that found an existing entry, even when that entry was still
// mid-recording and ultimately errored and was evicted. Hits must only be
// counted for entries that resolved successfully.
func TestMemoryHitAccountingConcurrent(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	const lanes = 16
	key := func(name string) tracestore.Key {
		return tracestore.Key{Kind: "test-stats", Algo: name, Shape: "8", SchedVersion: schedVersion}
	}

	// Every lane piles onto one entry whose recording fails: nobody was
	// served from the warm tier, so no memory hit may be counted.
	failed := hammerKey(t, key("fails"), lanes, func() (*fabric.Trace, error) {
		return nil, errors.New("recording timed out")
	})
	if failed != lanes {
		t.Fatalf("%d of %d lanes saw the recording error", failed, lanes)
	}
	s := TraceCacheStats()
	if s.MemoryHits != 0 {
		t.Fatalf("failed entry counted %d memory hits, want 0 (stats %+v)", s.MemoryHits, s)
	}
	if s.Records == 0 {
		t.Fatalf("no recording attempt counted: %+v", s)
	}

	// The same pile-up on a succeeding recording: exactly one lane records,
	// every other lane is a genuine warm hit.
	tr := fabric.NewTrace(8, []fabric.Record{{From: 0, To: 1, Step: 0, Elems: 1}})
	recBase := s.Records
	if failed := hammerKey(t, key("succeeds"), lanes, func() (*fabric.Trace, error) { return tr, nil }); failed != 0 {
		t.Fatalf("%d lanes errored on a successful recording", failed)
	}
	s = TraceCacheStats()
	if s.MemoryHits != lanes-1 {
		t.Fatalf("successful entry counted %d memory hits, want %d (stats %+v)", s.MemoryHits, lanes-1, s)
	}
	if s.Records != recBase+1 {
		t.Fatalf("successful entry recorded %d times, want 1 (stats %+v)", s.Records-recBase, s)
	}

	// Re-requesting the resolved key serially still counts hits.
	if _, err := cachedTraceKey(context.Background(), key("succeeds"), nil, func() (*fabric.Trace, error) {
		return nil, errors.New("must not re-record")
	}); err != nil {
		t.Fatal(err)
	}
	if s := TraceCacheStats(); s.MemoryHits != lanes {
		t.Fatalf("serial re-request counted %d memory hits, want %d", s.MemoryHits, lanes)
	}
}
