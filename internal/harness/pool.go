package harness

import (
	"fmt"
	"sync"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// The harness re-evaluates the same algorithm schedule across vector sizes,
// placements and even systems: a trace depends only on (collective,
// algorithm, rank count, root), and netsim's linear rescaling
// (TestTraceScalingExact) makes one unit-granularity recording exact for
// every vector size. The process-wide caches below record each schedule
// exactly once, no matter how many sweep cells — possibly on concurrent
// workers — ask for it.

type traceKey struct {
	coll coll.Collective
	name string
	p    int
	root int
}

type traceEntry struct {
	once sync.Once
	tr   *fabric.Trace
	err  error
}

type torusTraceKey struct {
	coll coll.Collective
	name string
	dims string
	root int
}

type torusTraceEntry struct {
	once sync.Once
	tr   *fabric.Trace
	n    int
	err  error
}

var traceCache = struct {
	mu    sync.Mutex
	flat  map[traceKey]*traceEntry
	torus map[torusTraceKey]*torusTraceEntry
}{
	flat:  map[traceKey]*traceEntry{},
	torus: map[torusTraceKey]*torusTraceEntry{},
}

// ResetTraceCache drops every cached trace. Benchmarks call it between
// iterations so each run records its schedules from scratch.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.flat = map[traceKey]*traceEntry{}
	traceCache.torus = map[torusTraceKey]*torusTraceEntry{}
	traceCache.mu.Unlock()
}

// cachedTrace returns the algorithm's unit-granularity trace, recording it
// on first use. Concurrent callers asking for the same key block on a single
// recording; distinct keys record independently.
func cachedTrace(algo coll.Algorithm, p, root int) (*fabric.Trace, error) {
	key := traceKey{coll: algo.Coll, name: algo.Name, p: p, root: root}
	traceCache.mu.Lock()
	e, ok := traceCache.flat[key]
	if !ok {
		e = &traceEntry{}
		traceCache.flat[key] = e
	}
	traceCache.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = recordTrace(algo, p, root) })
	return e.tr, e.err
}

// cachedTorusTrace is cachedTrace for torus-geometry algorithms, which the
// registry does not cover; the torus shape joins the key.
func cachedTorusTrace(ta torusAlgo, tor core.Torus, root int) (*fabric.Trace, int, error) {
	key := torusTraceKey{coll: ta.Coll, name: ta.Name, dims: fmt.Sprint(tor.Dims), root: root}
	traceCache.mu.Lock()
	e, ok := traceCache.torus[key]
	if !ok {
		e = &torusTraceEntry{}
		traceCache.torus[key] = e
	}
	traceCache.mu.Unlock()
	e.once.Do(func() { e.tr, e.n, e.err = recordTorusTrace(ta, tor, root) })
	return e.tr, e.n, e.err
}
