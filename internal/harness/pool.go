package harness

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/obs"
	"binetrees/internal/synth"
	"binetrees/internal/tracestore"
)

// The harness re-evaluates the same algorithm schedule across vector sizes,
// placements and even systems: a trace depends only on its schedule identity
// — (collective, algorithm, rank count, root), plus geometry for torus
// schedules — and netsim's linear rescaling (TestTraceScalingExact) makes
// one unit-granularity recording exact for every vector size. The cache
// below has two tiers. The in-process tier records each schedule exactly
// once per process, no matter how many sweep cells — possibly on concurrent
// workers — ask for it. The optional disk tier (SetTraceStore) persists
// recordings across processes under content addresses, so repeated -full
// runs and CI sweeps load every schedule instead of re-executing it; a
// loaded trace is byte-for-byte the recorded one, so artifacts are identical
// at any cache state.

// schedVersion tags the generation of every schedule construction that
// feeds the trace caches. It joins each disk content address, so bumping it
// — required whenever any algorithm's schedule changes — cleanly orphans
// every previously stored trace instead of wrongly reusing it.
const schedVersion = 1

type traceEntry struct {
	once sync.Once
	tr   *fabric.Trace
	err  error
	// origin names the resolver tier that produced tr (obs.OriginStore /
	// OriginSynth / OriginRecord), written inside once.Do and read only after
	// it returns; waiters that found the entry report obs.OriginMemory.
	origin string
}

var traceCache = struct {
	mu sync.Mutex
	m  map[tracestore.Key]*traceEntry
}{m: map[tracestore.Key]*traceEntry{}}

// store is the optional disk tier; nil disables it.
var store atomic.Pointer[tracestore.Store]

// synthDisabled and verifySynth gate the synthesis stage of the resolver
// chain. The zero values give the defaults: synthesis on, verification off.
var (
	synthDisabled atomic.Bool
	verifySynth   atomic.Bool
)

// SetSynthesis toggles direct schedule synthesis (on by default). Disabled,
// every cold schedule executes on the recording goroutine fabric — the
// pre-synthesis behavior, kept as the oracle path for equivalence checks.
func SetSynthesis(enabled bool) { synthDisabled.Store(!enabled) }

// SetVerifySynth toggles verification mode: each synthesized trace is also
// recorded on the goroutine fabric and the two encodings compared byte for
// byte, failing the request on any difference. Recording still runs per
// schedule, so this costs what a cold pre-synthesis run did; it exists for
// CI's equivalence gate, not for production sweeps.
func SetVerifySynth(enabled bool) { verifySynth.Store(enabled) }

var cacheCounters struct {
	memHits        atomic.Uint64
	synthHits      atomic.Uint64
	synthFallbacks atomic.Uint64
	synthVerified  atomic.Uint64
	records        atomic.Uint64
	cachedTraces   atomic.Uint64
	cachedBytes    atomic.Uint64
}

// SetTraceStore layers a disk-backed trace store (rooted at dir, created if
// missing) under the in-process cache; an empty dir removes the layer.
// Traces recorded from now on are written through, and cache misses consult
// the directory before recording.
func SetTraceStore(dir string) error {
	if dir == "" {
		store.Store(nil)
		return nil
	}
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	store.Store(s)
	return nil
}

// SetTraceStoreProbeInterval tunes how often a degraded disk tier re-probes
// its directory for writability (tracestore.Store.SetProbeInterval). A
// no-op without a configured store.
func SetTraceStoreProbeInterval(d time.Duration) {
	if s := store.Load(); s != nil {
		s.SetProbeInterval(d)
	}
}

// PrewarmTraceStore decode-validates every file of the configured disk tier
// (tracestore.Store.Prewarm): valid traces are paged in, corrupt ones are
// evicted, and the returned stats report the store's footprint — what a
// long-running artifact server does at startup before accepting requests.
// Without a configured store it is a no-op reporting zeroes.
func PrewarmTraceStore() (tracestore.PrewarmStats, error) {
	s := store.Load()
	if s == nil {
		return tracestore.PrewarmStats{}, nil
	}
	return s.Prewarm()
}

// CacheStats snapshots the trace-cache counters: per-tier hits, the
// recordings performed, and the disk tier's write and eviction activity.
type CacheStats struct {
	// MemoryHits counts lookups served by the in-process tier without
	// recording or touching disk.
	MemoryHits uint64
	// DiskHits and DiskMisses count store lookups by in-process misses (a
	// corrupt file is a miss).
	DiskHits, DiskMisses uint64
	// SynthHits counts schedules resolved by direct synthesis from schedule
	// math — no goroutine fabric involved. SynthFallbacks counts synthesis
	// attempts that errored and fell through to recording. SynthVerified
	// counts synthesized traces checked byte-identical against a fabric
	// recording (verify mode only).
	SynthHits, SynthFallbacks, SynthVerified uint64
	// Records counts schedules actually executed under a recording fabric
	// — the expensive path; with synthesis on, a cold run keeps it at zero
	// (verify mode deliberately drives it back up: one per verification).
	Records uint64
	// DiskSaves counts traces written through to the store.
	DiskSaves uint64
	// CorruptEvictions counts store files that failed to decode and were
	// removed (their slots re-record and re-save transparently).
	CorruptEvictions uint64
	// CachedTraces and CachedBytes size the in-process tier: resident
	// traces and their columnar footprint (fabric.Trace.MemBytes) — the
	// number to watch when sizing hosts for full-scale suites.
	CachedTraces, CachedBytes uint64
	// DiskSaveSkips counts write-behind saves dropped while the disk tier
	// was degraded; StoreDegraded and StoreDegradedReason report that state
	// (read-only dir, full disk — serving continues from memory/synth).
	DiskSaveSkips       uint64 `json:",omitempty"`
	StoreDegraded       bool   `json:",omitempty"`
	StoreDegradedReason string `json:",omitempty"`
}

func (s CacheStats) String() string {
	out := fmt.Sprintf("trace cache: %d memory hits, %d disk hits, %d disk misses, %d synthesized (%d verified, %d fallbacks), %d recordings, %d disk saves, %d corrupt evictions; %d resident traces, %.1f MiB columnar",
		s.MemoryHits, s.DiskHits, s.DiskMisses, s.SynthHits, s.SynthVerified, s.SynthFallbacks,
		s.Records, s.DiskSaves, s.CorruptEvictions,
		s.CachedTraces, float64(s.CachedBytes)/(1<<20))
	if s.StoreDegraded {
		out += fmt.Sprintf("; store DEGRADED (%s, %d saves skipped)", s.StoreDegradedReason, s.DiskSaveSkips)
	}
	return out
}

// TraceCacheStats returns the counters accumulated since the last
// ResetTraceCache (disk counters: since the store was set).
func TraceCacheStats() CacheStats {
	var ds tracestore.Stats
	if s := store.Load(); s != nil {
		ds = s.Stats()
	}
	return CacheStats{
		MemoryHits:       cacheCounters.memHits.Load(),
		DiskHits:         ds.Hits,
		DiskMisses:       ds.Misses,
		SynthHits:        cacheCounters.synthHits.Load(),
		SynthFallbacks:   cacheCounters.synthFallbacks.Load(),
		SynthVerified:    cacheCounters.synthVerified.Load(),
		Records:          cacheCounters.records.Load(),
		DiskSaves:        ds.Saves,
		CorruptEvictions: ds.CorruptEvictions,
		CachedTraces:     cacheCounters.cachedTraces.Load(),
		CachedBytes:      cacheCounters.cachedBytes.Load(),

		DiskSaveSkips:       ds.SaveSkips,
		StoreDegraded:       ds.Degraded,
		StoreDegradedReason: ds.DegradedReason,
	}
}

// ResetTraceCache drops every in-process cached trace and zeroes the memory
// counters. Benchmarks call it between iterations so each run records (or
// disk-loads) its schedules from scratch; the disk tier, if set, keeps its
// files and counters.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.m = map[tracestore.Key]*traceEntry{}
	traceCache.mu.Unlock()
	cacheCounters.memHits.Store(0)
	cacheCounters.synthHits.Store(0)
	cacheCounters.synthFallbacks.Store(0)
	cacheCounters.synthVerified.Store(0)
	cacheCounters.records.Store(0)
	cacheCounters.cachedTraces.Store(0)
	cacheCounters.cachedBytes.Store(0)
}

// cachedTraceKey is the cache core: it resolves the trace for the schedule
// identity key through the resolver chain — the in-process tier, then the
// disk store, then direct synthesis from schedule math (synthesize, when
// non-nil and enabled), and only then a recording run on the goroutine
// fabric — exactly once per key per process, however many concurrent workers
// ask. A synthesis error is a fallback, not a failure: the schedule records
// instead. Resolved traces are written through to the store stamped with
// their origin; failed resolutions are never written anywhere and their
// in-process slot is evicted so a later request retries.
//
// ctx carries the request trace, if any: each resolver stage the leader runs
// (store-load, synth, fabric-record) is timed into the global stage
// histograms and the trace's aggregates; waiters served from the in-process
// tier — including time blocked on a concurrent leader — report under
// cache-lookup. The whole resolution lands in the per-origin resolve metrics.
func cachedTraceKey(ctx context.Context, key tracestore.Key, synthesize, record func() (*fabric.Trace, error)) (*fabric.Trace, error) {
	resolveStart := time.Now()
	traceCache.mu.Lock()
	e, ok := traceCache.m[key]
	if !ok {
		e = &traceEntry{}
		traceCache.m[key] = e
	}
	traceCache.mu.Unlock()
	e.once.Do(func() {
		s := store.Load()
		loadStart := time.Now()
		tr, hit := s.Load(key)
		if s.Enabled() {
			obs.ObserveStageCtx(ctx, obs.StageStoreLoad, time.Since(loadStart))
		}
		if hit {
			e.tr = tr
			e.origin = obs.OriginStore
		} else {
			origin := tracestore.OriginRecorded
			if synthesize != nil && !synthDisabled.Load() {
				synthStart := time.Now()
				tr, err := synthesize()
				obs.ObserveStageCtx(ctx, obs.StageSynth, time.Since(synthStart))
				switch {
				case err != nil:
					// A schedule the synthesizer cannot walk falls through
					// to the fabric — counted, so a sweep that should be
					// recording-free is diagnosable from its stats line.
					cacheCounters.synthFallbacks.Add(1)
				case verifySynth.Load():
					// Verification mode: record the same schedule on the
					// goroutine fabric (the oracle) and require the two
					// encodings to match byte for byte.
					cacheCounters.records.Add(1)
					recordStart := time.Now()
					rt, rerr := record()
					obs.ObserveStageCtx(ctx, obs.StageRecord, time.Since(recordStart))
					if rerr != nil {
						e.err = rerr
					} else if e.err = diffTraces(key, tr, rt); e.err == nil {
						cacheCounters.synthVerified.Add(1)
						cacheCounters.synthHits.Add(1)
						e.tr = tr
						e.origin = obs.OriginSynth
						origin = tracestore.OriginSynthesized
					}
				default:
					cacheCounters.synthHits.Add(1)
					e.tr = tr
					e.origin = obs.OriginSynth
					origin = tracestore.OriginSynthesized
				}
			}
			if e.tr == nil && e.err == nil {
				cacheCounters.records.Add(1)
				recordStart := time.Now()
				e.tr, e.err = record()
				obs.ObserveStageCtx(ctx, obs.StageRecord, time.Since(recordStart))
				e.origin = obs.OriginRecord
			}
			if e.err == nil {
				// Write-behind is best-effort: a read-only or full cache
				// directory degrades to re-resolving next process, never
				// to a failed sweep.
				_ = s.Save(key, e.tr, origin)
			}
		}
		if e.err == nil && e.tr != nil {
			cacheCounters.cachedTraces.Add(1)
			cacheCounters.cachedBytes.Add(uint64(e.tr.MemBytes()))
		}
	})
	if e.err != nil {
		// A timed-out or otherwise failed recording must not poison the
		// key (mirroring how corrupt store files self-evict): drop the
		// entry — unless a retry already replaced it — so the next request
		// records afresh. Concurrent waiters on this entry still see the
		// original error.
		traceCache.mu.Lock()
		if traceCache.m[key] == e {
			delete(traceCache.m, key)
		}
		traceCache.mu.Unlock()
	} else if ok {
		// A memory hit is only counted once the found entry has resolved
		// successfully: waiters that pile onto a mid-recording entry which
		// then errors and evicts were never served from the warm tier, and
		// counting them made -v over-report warm hits under concurrency.
		cacheCounters.memHits.Add(1)
		obs.ObserveStageCtx(ctx, obs.StageCacheLookup, time.Since(resolveStart))
	}
	if e.err == nil {
		origin := e.origin
		if ok {
			origin = obs.OriginMemory
		}
		obs.ObserveResolve(ctx, origin, time.Since(resolveStart))
	}
	return e.tr, e.err
}

// diffTraces enforces verify-synth's contract at the byte-identity level:
// the synthesized trace must encode to exactly the recorded oracle's bytes.
// On divergence it names the first differing record so a schedule drift is
// debuggable from the failure message alone.
func diffTraces(key tracestore.Key, st, rt *fabric.Trace) error {
	sb, err := encodeTraceBytes(st)
	if err != nil {
		return err
	}
	rb, err := encodeTraceBytes(rt)
	if err != nil {
		return err
	}
	if bytes.Equal(sb, rb) {
		return nil
	}
	n := st.NumRecords()
	if rt.NumRecords() < n {
		n = rt.NumRecords()
	}
	for i := 0; i < n; i++ {
		if st.At(i) != rt.At(i) {
			return fmt.Errorf("harness: verify-synth %s %s/%s shape=%s root=%d: record %d diverges: synthesized %+v, recorded %+v",
				key.Kind, key.Collective, key.Algo, key.Shape, key.Root, i, st.At(i), rt.At(i))
		}
	}
	return fmt.Errorf("harness: verify-synth %s %s/%s shape=%s root=%d: encodings differ (%d synthesized records vs %d recorded)",
		key.Kind, key.Collective, key.Algo, key.Shape, key.Root, st.NumRecords(), rt.NumRecords())
}

func encodeTraceBytes(tr *fabric.Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := fabric.EncodeTrace(&buf, tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// cachedTrace returns a registry algorithm's unit-granularity trace.
func cachedTrace(ctx context.Context, algo coll.Algorithm, p, root int) (*fabric.Trace, error) {
	key := tracestore.Key{
		Kind:         "flat",
		Collective:   algo.Coll.String(),
		Algo:         algo.Name,
		Shape:        strconv.Itoa(p),
		Root:         root,
		SchedVersion: schedVersion,
	}
	return cachedTraceKey(ctx, key,
		func() (*fabric.Trace, error) { return synthTrace(algo, p, root) },
		func() (*fabric.Trace, error) { return recordTrace(algo, p, root) })
}

// cachedTorusTrace is cachedTrace for torus-geometry algorithms, which the
// registry does not cover; the torus shape and the recorded element count
// join the identity.
func cachedTorusTrace(ctx context.Context, ta torusAlgo, tor core.Torus, root int) (*fabric.Trace, int, error) {
	n := torusRecordedElems(ta, tor)
	key := tracestore.Key{
		Kind:         "torus",
		Collective:   ta.Coll.String(),
		Algo:         ta.Name,
		Shape:        fmt.Sprintf("%v/n=%d", tor.Dims, n),
		Root:         root,
		SchedVersion: schedVersion,
	}
	tr, err := cachedTraceKey(ctx, key,
		func() (*fabric.Trace, error) { return synthTorusTrace(ta, tor, root) },
		func() (*fabric.Trace, error) { return recordTorusTrace(ta, tor, root) })
	return tr, n, err
}

// cachedNamedTrace caches ad-hoc schedules that no registry covers (the
// Fig. 1 tree broadcasts, Fig. 5 butterfly allreduces, hierarchical and
// Appendix D schedules): kind/name/shape must uniquely identify the schedule
// body fn over p ranks, including its recorded element count. Every such
// body is data-independent, so the resolver synthesizes it with a serial
// pattern walk and touches the fabric only as fallback or under verify mode.
func cachedNamedTrace(ctx context.Context, kind, name, shape string, p int, fn func(c fabric.Comm) error) (*fabric.Trace, error) {
	key := tracestore.Key{
		Kind:         kind,
		Algo:         name,
		Shape:        shape,
		SchedVersion: schedVersion,
	}
	return cachedTraceKey(ctx, key,
		func() (*fabric.Trace, error) { return synth.Run(p, fn) },
		func() (*fabric.Trace, error) { return recordBody(kind, name, p, fn) })
}
