package harness

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/tracestore"
)

// The harness re-evaluates the same algorithm schedule across vector sizes,
// placements and even systems: a trace depends only on its schedule identity
// — (collective, algorithm, rank count, root), plus geometry for torus
// schedules — and netsim's linear rescaling (TestTraceScalingExact) makes
// one unit-granularity recording exact for every vector size. The cache
// below has two tiers. The in-process tier records each schedule exactly
// once per process, no matter how many sweep cells — possibly on concurrent
// workers — ask for it. The optional disk tier (SetTraceStore) persists
// recordings across processes under content addresses, so repeated -full
// runs and CI sweeps load every schedule instead of re-executing it; a
// loaded trace is byte-for-byte the recorded one, so artifacts are identical
// at any cache state.

// schedVersion tags the generation of every schedule construction that
// feeds the trace caches. It joins each disk content address, so bumping it
// — required whenever any algorithm's schedule changes — cleanly orphans
// every previously stored trace instead of wrongly reusing it.
const schedVersion = 1

type traceEntry struct {
	once sync.Once
	tr   *fabric.Trace
	err  error
}

var traceCache = struct {
	mu sync.Mutex
	m  map[tracestore.Key]*traceEntry
}{m: map[tracestore.Key]*traceEntry{}}

// store is the optional disk tier; nil disables it.
var store atomic.Pointer[tracestore.Store]

var cacheCounters struct {
	memHits      atomic.Uint64
	records      atomic.Uint64
	cachedTraces atomic.Uint64
	cachedBytes  atomic.Uint64
}

// SetTraceStore layers a disk-backed trace store (rooted at dir, created if
// missing) under the in-process cache; an empty dir removes the layer.
// Traces recorded from now on are written through, and cache misses consult
// the directory before recording.
func SetTraceStore(dir string) error {
	if dir == "" {
		store.Store(nil)
		return nil
	}
	s, err := tracestore.Open(dir)
	if err != nil {
		return err
	}
	store.Store(s)
	return nil
}

// PrewarmTraceStore decode-validates every file of the configured disk tier
// (tracestore.Store.Prewarm): valid traces are paged in, corrupt ones are
// evicted, and the returned stats report the store's footprint — what a
// long-running artifact server does at startup before accepting requests.
// Without a configured store it is a no-op reporting zeroes.
func PrewarmTraceStore() (tracestore.PrewarmStats, error) {
	s := store.Load()
	if s == nil {
		return tracestore.PrewarmStats{}, nil
	}
	return s.Prewarm()
}

// CacheStats snapshots the trace-cache counters: per-tier hits, the
// recordings performed, and the disk tier's write and eviction activity.
type CacheStats struct {
	// MemoryHits counts lookups served by the in-process tier without
	// recording or touching disk.
	MemoryHits uint64
	// DiskHits and DiskMisses count store lookups by in-process misses (a
	// corrupt file is a miss).
	DiskHits, DiskMisses uint64
	// Records counts schedules actually executed under a recording fabric
	// — the expensive path; a fully warm run keeps it at zero.
	Records uint64
	// DiskSaves counts traces written through to the store.
	DiskSaves uint64
	// CorruptEvictions counts store files that failed to decode and were
	// removed (their slots re-record and re-save transparently).
	CorruptEvictions uint64
	// CachedTraces and CachedBytes size the in-process tier: resident
	// traces and their columnar footprint (fabric.Trace.MemBytes) — the
	// number to watch when sizing hosts for full-scale suites.
	CachedTraces, CachedBytes uint64
}

func (s CacheStats) String() string {
	return fmt.Sprintf("trace cache: %d memory hits, %d disk hits, %d disk misses, %d recordings, %d disk saves, %d corrupt evictions; %d resident traces, %.1f MiB columnar",
		s.MemoryHits, s.DiskHits, s.DiskMisses, s.Records, s.DiskSaves, s.CorruptEvictions,
		s.CachedTraces, float64(s.CachedBytes)/(1<<20))
}

// TraceCacheStats returns the counters accumulated since the last
// ResetTraceCache (disk counters: since the store was set).
func TraceCacheStats() CacheStats {
	var ds tracestore.Stats
	if s := store.Load(); s != nil {
		ds = s.Stats()
	}
	return CacheStats{
		MemoryHits:       cacheCounters.memHits.Load(),
		DiskHits:         ds.Hits,
		DiskMisses:       ds.Misses,
		Records:          cacheCounters.records.Load(),
		DiskSaves:        ds.Saves,
		CorruptEvictions: ds.CorruptEvictions,
		CachedTraces:     cacheCounters.cachedTraces.Load(),
		CachedBytes:      cacheCounters.cachedBytes.Load(),
	}
}

// ResetTraceCache drops every in-process cached trace and zeroes the memory
// counters. Benchmarks call it between iterations so each run records (or
// disk-loads) its schedules from scratch; the disk tier, if set, keeps its
// files and counters.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.m = map[tracestore.Key]*traceEntry{}
	traceCache.mu.Unlock()
	cacheCounters.memHits.Store(0)
	cacheCounters.records.Store(0)
	cacheCounters.cachedTraces.Store(0)
	cacheCounters.cachedBytes.Store(0)
}

// cachedTraceKey is the cache core: it returns the trace for the schedule
// identity key, consulting the in-process tier, then the disk store, and
// only then executing record — exactly once per key per process, however
// many concurrent workers ask. Freshly recorded traces are written through
// to the store; failed recordings are never written anywhere and their
// in-process slot is evicted so a later request re-records.
func cachedTraceKey(key tracestore.Key, record func() (*fabric.Trace, error)) (*fabric.Trace, error) {
	traceCache.mu.Lock()
	e, ok := traceCache.m[key]
	if !ok {
		e = &traceEntry{}
		traceCache.m[key] = e
	}
	traceCache.mu.Unlock()
	e.once.Do(func() {
		s := store.Load()
		if tr, hit := s.Load(key); hit {
			e.tr = tr
		} else {
			cacheCounters.records.Add(1)
			e.tr, e.err = record()
			if e.err == nil {
				// Write-behind is best-effort: a read-only or full cache
				// directory degrades to re-recording next process, never
				// to a failed sweep.
				_ = s.Save(key, e.tr)
			}
		}
		if e.err == nil && e.tr != nil {
			cacheCounters.cachedTraces.Add(1)
			cacheCounters.cachedBytes.Add(uint64(e.tr.MemBytes()))
		}
	})
	if e.err != nil {
		// A timed-out or otherwise failed recording must not poison the
		// key (mirroring how corrupt store files self-evict): drop the
		// entry — unless a retry already replaced it — so the next request
		// records afresh. Concurrent waiters on this entry still see the
		// original error.
		traceCache.mu.Lock()
		if traceCache.m[key] == e {
			delete(traceCache.m, key)
		}
		traceCache.mu.Unlock()
	} else if ok {
		// A memory hit is only counted once the found entry has resolved
		// successfully: waiters that pile onto a mid-recording entry which
		// then errors and evicts were never served from the warm tier, and
		// counting them made -v over-report warm hits under concurrency.
		cacheCounters.memHits.Add(1)
	}
	return e.tr, e.err
}

// cachedTrace returns a registry algorithm's unit-granularity trace.
func cachedTrace(algo coll.Algorithm, p, root int) (*fabric.Trace, error) {
	key := tracestore.Key{
		Kind:         "flat",
		Collective:   algo.Coll.String(),
		Algo:         algo.Name,
		Shape:        strconv.Itoa(p),
		Root:         root,
		SchedVersion: schedVersion,
	}
	return cachedTraceKey(key, func() (*fabric.Trace, error) { return recordTrace(algo, p, root) })
}

// cachedTorusTrace is cachedTrace for torus-geometry algorithms, which the
// registry does not cover; the torus shape and the recorded element count
// join the identity.
func cachedTorusTrace(ta torusAlgo, tor core.Torus, root int) (*fabric.Trace, int, error) {
	n := torusRecordedElems(ta, tor)
	key := tracestore.Key{
		Kind:         "torus",
		Collective:   ta.Coll.String(),
		Algo:         ta.Name,
		Shape:        fmt.Sprintf("%v/n=%d", tor.Dims, n),
		Root:         root,
		SchedVersion: schedVersion,
	}
	tr, err := cachedTraceKey(key, func() (*fabric.Trace, error) { return recordTorusTrace(ta, tor, root) })
	return tr, n, err
}

// cachedNamedTrace caches ad-hoc recordings that no registry covers (the
// Fig. 1 tree broadcasts, Fig. 5 butterfly allreduces, hierarchical and
// Appendix D schedules): kind/name/shape must uniquely identify the
// schedule and the recorded element count.
func cachedNamedTrace(kind, name, shape string, record func() (*fabric.Trace, error)) (*fabric.Trace, error) {
	key := tracestore.Key{
		Kind:         kind,
		Algo:         name,
		Shape:        shape,
		SchedVersion: schedVersion,
	}
	return cachedTraceKey(key, record)
}
