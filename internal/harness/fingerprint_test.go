package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// TestScheduleFingerprints guards the persistent store's only soft spot:
// the disk tier invalidates on schedVersion (and fabric.CodecVersion), but
// nothing ties those constants to the schedules themselves — a PR that
// changes an algorithm's schedule without bumping schedVersion would make
// existing -trace-cache directories silently serve stale traces. This test
// pins a fingerprint (hash of the encoded trace) for one representative
// schedule of every cache family; if it fails, a recorded schedule or the
// codec changed, and you MUST bump schedVersion in pool.go (or
// fabric.CodecVersion for a format change) before updating the constants
// below. Entries for algorithms that no longer exist are skipped — removal
// orphans their store files harmlessly.
func TestScheduleFingerprints(t *testing.T) {
	fingerprint := func(tr *fabric.Trace) string {
		var buf bytes.Buffer
		if err := fabric.EncodeTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		return hex.EncodeToString(sum[:8])
	}
	tor := core.MustTorus(4, 4)
	// record mirrors the cachedNamedTrace recordings of the experiments
	// (Fig. 1 / Fig. 5 / Hier / AppD) via the same shared schedule code.
	record := func(p int, run func(c fabric.Comm) error) (*fabric.Trace, bool) {
		rec := fabric.NewRecorder(fabric.NewMem(p))
		defer rec.Close()
		if err := fabric.Run(rec, run); err != nil {
			t.Fatal(err)
		}
		return rec.Trace(), true
	}
	check := func(name, got, want string) {
		t.Helper()
		if want == "" {
			t.Errorf("%s: no pinned fingerprint (new schedule?) — add %q to the pins below", name, got)
			return
		}
		if got != want {
			t.Errorf("%s: schedule fingerprint %s, pinned %s\n"+
				"A recorded schedule (or the trace codec) changed: bump schedVersion in pool.go\n"+
				"(or fabric.CodecVersion for codec changes) so persistent trace stores invalidate,\n"+
				"then update this pin.", name, got, want)
		}
	}
	// Every registry algorithm at p=16 and every torus algorithm on the 4x4
	// torus is pinned, so no schedule feeding the flat or torus cache can
	// change silently. Pins for removed algorithms are dropped freely —
	// removal merely orphans their store files.
	for _, algo := range coll.Registry() {
		tr, err := recordTrace(algo, 16, 0)
		if err != nil {
			t.Fatalf("%v/%s: %v", algo.Coll, algo.Name, err)
		}
		check("flat/"+algo.Coll.String()+"/"+algo.Name+"/p=16", fingerprint(tr), flatPins[algo.Coll.String()+"/"+algo.Name])
	}
	for _, ta := range torusAlgos() {
		tr, err := recordTorusTrace(ta, tor, 0)
		if err != nil {
			t.Fatalf("torus %s: %v", ta.Name, err)
		}
		check("torus/"+ta.Name+"/4x4", fingerprint(tr), torusPins[ta.Name])
	}
	// The cachedNamedTrace families (Fig. 1 / Fig. 5 / Hier / AppD record
	// outside the registries) are pinned via the same shared schedule code.
	named := []struct {
		name   string
		record func() (*fabric.Trace, bool)
		want   string
	}{
		{"tree-bcast/bine-dh/p=8/n=1", func() (*fabric.Trace, bool) {
			tree := core.MustTree(core.BineDH, 8, 0)
			return record(8, func(c fabric.Comm) error { return coll.Bcast(c, tree, make([]int32, 1)) })
		}, "f63296feb1c154f1"},
		{"bfly-allreduce/bfly-bine-dd/p=16/n=16", func() (*fabric.Trace, bool) {
			b := core.MustButterfly(core.BflyBineDD, 16)
			return record(16, func(c fabric.Comm) error { return coll.AllreduceRsAg(c, b, make([]int32, 16), coll.OpSum) })
		}, "60e86c514d90969a"},
		{"hier-allreduce/hier-bine/p=16/n=64", func() (*fabric.Trace, bool) {
			return record(16, func(c fabric.Comm) error {
				return coll.HierarchicalAllreduce(c, 4, core.BflyBineDD, make([]int32, 64), coll.OpSum)
			})
		}, "9eac0231a12be493"},
		{"torus-bcast/bine-dh/4x4/n=1", func() (*fabric.Trace, bool) {
			return record(16, func(c fabric.Comm) error {
				return coll.TorusBcast(c, tor, core.BineDH, 0, make([]int32, 1))
			})
		}, "7ae9998ad19b23ba"},
	}
	for _, c := range named {
		tr, _ := c.record()
		check(c.name, fingerprint(tr), c.want)
	}
}

// flatPins fingerprints every registry algorithm's p=16 schedule;
// torusPins every torus algorithm's 4x4 schedule.
var flatPins = map[string]string{
	"bcast/bine-tree":                  "4aa1086088422354",
	"bcast/binomial-dd":                "d3c1f53268771ddc",
	"bcast/binomial-dh":                "6c79bc8e7cb2048d",
	"bcast/bine-scatter-allgather":     "c7f41b693b06656c",
	"bcast/binomial-scatter-allgather": "756ecb9fc459b96c",
	"bcast/linear":                     "4fd1d4d39831e3e5",
	"bcast/pipeline":                   "e518179add538c4a",
	"bcast/chain":                      "b55d7a13d093ca67",
	"reduce/bine-tree":                 "b4ab7bdb6397a7b1",
	"reduce/binomial-dd":               "59de836e50d186da",
	"reduce/binomial-dh":               "3de0ddb2902f4260",
	"reduce/bine-rs-gather":            "226ed7391955e6ec",
	"reduce/binomial-rs-gather":        "25233d528625206e",
	"reduce/linear":                    "405ffbe585344666",
	"gather/bine-tree":                 "24a187bf4c93c94e",
	"gather/binomial-dd":               "753b3121b175aeae",
	"gather/binomial-dh":               "094e9b16f8061007",
	"gather/linear":                    "c2193784d143ef24",
	"scatter/bine-tree":                "f8179c843ad38862",
	"scatter/binomial-dd":              "dfc43f26580322b3",
	"scatter/binomial-dh":              "98549a204838fdc7",
	"scatter/linear":                   "07d6e7d4eeedd3f1",
	"reduce-scatter/bine-permute":      "1eaf8da4e1a6398a",
	"reduce-scatter/bine-send":         "1c1e379c73af93b8",
	"reduce-scatter/bine-block":        "2083fadf29081755",
	"reduce-scatter/bine-two-trans":    "9a6ebbaabafb729b",
	"reduce-scatter/recursive-halving": "5464c7d4d2806554",
	"reduce-scatter/swing":             "2083fadf29081755",
	"reduce-scatter/ring":              "2165e8400dbe04fe",
	"reduce-scatter/bine-fold":         "1c1e379c73af93b8",
	"allgather/bine-permute":           "e57c97081eafa532",
	"allgather/bine-send":              "a5c032e34078fa19",
	"allgather/bine-block":             "27cbfe9577a2e442",
	"allgather/bine-two-trans":         "bc573877d942e3c5",
	"allgather/recursive-doubling":     "b7869db52a676ec9",
	"allgather/swing":                  "27cbfe9577a2e442",
	"allgather/ring":                   "2165e8400dbe04fe",
	"allgather/bruck":                  "c0134eae3284bde7",
	"allgather/sparbit":                "c7225f2dfff5c87c",
	"allgather/bine-fold":              "a5c032e34078fa19",
	"allreduce/bine-lat":               "2fe8c322bafa02c5",
	"allreduce/bine-bw":                "60e86c514d90969a",
	"allreduce/recursive-doubling":     "53c3ce1f51fe13ec",
	"allreduce/rabenseifner":           "38d879613382a830",
	"allreduce/ring":                   "a77331da2ee16ac8",
	"allreduce/swing":                  "dec720f8e490be71",
	"allreduce/reduce-bcast":           "9d706b39bec1830e",
	"allreduce/bine-fold":              "60e86c514d90969a",
	"alltoall/bine":                    "2fe8c322bafa02c5",
	"alltoall/bruck":                   "f25d2c653d53f7fa",
	"alltoall/pairwise":                "7c6dff2afdcade31",
}

var torusPins = map[string]string{
	"bine-torus":     "2c571d84f6350901",
	"bine-multiport": "4911e491277c2ec7",
	"bucket":         "33673da3c727d744",
	"bine-bcast":     "ff38133770fb782e",
	"bine-reduce":    "495b5eaceb1f728b",
}
