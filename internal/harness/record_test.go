package harness

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"binetrees/internal/fabric"
	"binetrees/internal/tracestore"
)

// countTraceFiles counts the ".trace" files in dir, ignoring provenance
// sidecars and temp files.
func countTraceFiles(t *testing.T, dir string) int {
	t.Helper()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".trace") {
			n++
		}
	}
	return n
}

// TestFailedRecordingNeverCachedOrStored injects a timeout mid-recording
// and pins the eviction guarantee: a timed-out (hence partial) trace is
// written neither to the tracestore nor to the in-process cache — the
// failed key re-records on the next request and only the successful
// recording is persisted. Synthesis is bypassed (nil synthesize) because
// this test is about the fabric leg of the resolver chain.
func TestFailedRecordingNeverCachedOrStored(t *testing.T) {
	resetCaches(t)
	dir := t.TempDir()
	if err := SetTraceStore(dir); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	record := func() (*fabric.Trace, error) {
		attempts++
		f := fabric.NewMem(2)
		defer f.Close()
		if attempts == 1 {
			// Starve the first attempt: the receiver blocks before the
			// sender wakes, and the floor deadline expires mid-schedule.
			f.SetTimeout(time.Millisecond)
		}
		rec := fabric.NewRecorder(f)
		err := fabric.Run(rec, func(c fabric.Comm) error {
			if c.Rank() == 0 {
				time.Sleep(20 * time.Millisecond)
				return c.Send(1, 0, 0, []int32{1})
			}
			return c.Recv(0, 0, 0, make([]int32, 1))
		})
		if err != nil {
			return nil, err
		}
		return rec.Trace(), nil
	}
	key := tracestore.Key{Kind: "test-evict", Algo: "x", Shape: "p=2", SchedVersion: schedVersion}
	if _, err := cachedTraceKey(context.Background(), key, nil, record); !errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("first attempt: got %v, want timeout", err)
	}
	if n := countTraceFiles(t, dir); n != 0 {
		t.Fatalf("failed recording reached the store: %d files", n)
	}
	tr, err := cachedTraceKey(context.Background(), key, nil, record)
	if err != nil {
		t.Fatalf("retry after eviction: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("failed key served from cache: %d attempts, want 2", attempts)
	}
	if tr.NumRecords() != 1 {
		t.Fatalf("retry recorded %d messages, want 1", tr.NumRecords())
	}
	if n := countTraceFiles(t, dir); n != 1 {
		t.Fatalf("successful retry not persisted: %d files", n)
	}
	// The successful recording is cached normally: a third request must
	// not record again — and its stored trace is stamped as recorded.
	if _, err := cachedTraceKey(context.Background(), key, nil, record); err != nil || attempts != 2 {
		t.Fatalf("cached success re-recorded: attempts=%d err=%v", attempts, err)
	}
	if o := storeOrigin(key); o != tracestore.OriginRecorded {
		t.Fatalf("fabric-recorded trace stamped %q", o)
	}
}

// storeOrigin reads the configured store's provenance stamp for key.
func storeOrigin(key tracestore.Key) tracestore.Origin {
	return store.Load().Origin(key)
}
