package harness

import (
	"context"
	"fmt"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/netsim"
	"binetrees/internal/obs"
	"binetrees/internal/pool"
	"binetrees/internal/synth"
	"binetrees/internal/topology"
)

// Options tune experiment scope.
type Options struct {
	// Quick trims node counts and vector sizes so the full suite runs in
	// seconds (used by tests and the default CLI mode).
	Quick bool
	// Workers bounds the sweep engine's worker pool; <= 0 selects
	// pool.DefaultWorkers (one per CPU). Every artifact is byte-identical
	// regardless of the setting.
	Workers int
	// Systems restricts RunAll to the artifact groups of the named system
	// keys (see SystemKeys); empty runs the whole suite. Standalone
	// experiment drivers ignore it.
	Systems []string
	// Progress, when non-nil, observes every completed job-graph cell (see
	// ProgressFunc). Callbacks arrive from pool workers.
	Progress ProgressFunc
}

func (o Options) nodeCounts(sys System) []int {
	if !o.Quick {
		return sys.NodeCounts
	}
	var out []int
	for _, p := range sys.NodeCounts {
		if p <= 128 {
			out = append(out, p)
		}
	}
	return out
}

func (o Options) sizes() []int64 {
	all := VectorSizes()
	if !o.Quick {
		return all
	}
	return []int64{all[0], all[2], all[4], all[6], all[8]}
}

// blockTraceCap bounds trace recording for algorithms whose message count
// grows quadratically with the rank count (block-by-block, Swing, sparbit);
// beyond it the harness skips them, as the paper trims its own largest runs
// (Sec. 5.2.1).
const blockTraceCap = 512

func quadratic(name string) bool {
	switch name {
	case "bine-block", "swing", "sparbit":
		return true
	}
	return false
}

// cell is one evaluated (algorithm, node count, vector size) data point.
type cell struct {
	Time   float64
	Global float64
}

// cellKey addresses a sweep cell.
type cellKey struct {
	P    int
	Size int64
}

// sweepResult holds every algorithm's cells for one collective.
type sweepResult struct {
	Algos []coll.Algorithm
	Cells map[string]map[cellKey]cell
}

// recordTrace executes the algorithm once at unit block size (n = p
// elements) on a recording in-process fabric and returns its trace.
func recordTrace(algo coll.Algorithm, p, root int) (*fabric.Trace, error) {
	run, err := algo.Make(p, root)
	if err != nil {
		return nil, err
	}
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	n := p
	err = fabric.Run(rec, func(c fabric.Comm) error {
		inLen, outLen := algo.Coll.InOutLens(p, n)
		in := make([]int32, inLen)
		var out []int32
		if outLen > 0 {
			out = make([]int32, outLen)
		}
		return run(c, root, in, out, coll.OpSum)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %v/%s p=%d: %w", algo.Coll, algo.Name, p, err)
	}
	return rec.Trace(), nil
}

// synthTrace emits the algorithm's unit-granularity trace directly from
// schedule math (internal/synth) — the cold-path replacement for
// recordTrace, which stays on as the verification oracle. The two are
// byte-identical under the trace codec for every registered algorithm
// (internal/synth's equivalence suite and CI's -verify-synth gate).
func synthTrace(algo coll.Algorithm, p, root int) (*fabric.Trace, error) {
	s, err := algo.Pattern(p, root, p)
	if err != nil {
		return nil, err
	}
	tr, err := synth.Schedule(s)
	if err != nil {
		return nil, fmt.Errorf("harness: %v/%s p=%d: %w", algo.Coll, algo.Name, p, err)
	}
	return tr, nil
}

// planSweep compiles one collective's sweep — every applicable algorithm
// over the node counts and sizes on the system's fragmented placements —
// into flat-graph tasks. Each (node count, algorithm) cell writes into its
// own slot of an index-addressed slice; finish merges the slots in
// deterministic order into the sweepResult, so the result — and every
// artifact rendered from it — is byte-identical to a serial evaluation.
// Call finish only after every task has run (render time); it caches the
// merge, so multiple renders are free.
func planSweep(sys System, collective coll.Collective, counts []int, sizes []int64) ([]task, func() *sweepResult, error) {
	placements, err := Placements(sys, counts)
	if err != nil {
		return nil, nil, err
	}
	var algos []coll.Algorithm
	for _, a := range coll.ByCollective(coll.Registry(), collective) {
		if !sys.ExcludesAlgorithm(a.Name) {
			algos = append(algos, a)
		}
	}
	// The topology share depends only on the placement; build each count's
	// model once, up front, and let the tasks share it read-only.
	topos := make(map[int]topology.Topology, len(counts))
	for _, p := range counts {
		topo, err := sys.TopologyFor(placements[p])
		if err != nil {
			return nil, nil, err
		}
		topos[p] = topo
	}
	type job struct {
		p    int
		algo coll.Algorithm
	}
	var jobs []job
	for _, p := range counts {
		for _, algo := range algos {
			if quadratic(algo.Name) && p > blockTraceCap {
				continue
			}
			jobs = append(jobs, job{p: p, algo: algo})
		}
	}
	outs := make([][]cell, len(jobs))
	tasks := make([]task, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = task{system: sys.Key, run: func(ctx context.Context) error {
			j := jobs[i]
			tr, err := cachedTrace(ctx, j.algo, j.p, 0)
			if err != nil {
				return err
			}
			defer obs.TimeStage(ctx, obs.StageEvaluate)()
			// One structural replay scores every vector size of the cell:
			// EvaluateSizes derives each size's Result arithmetically from
			// the shared per-step profile, exactly matching per-size
			// Evaluate calls.
			elemBytes := make([]float64, len(sizes))
			copyBytes := make([]float64, len(sizes))
			for si, size := range sizes {
				elemBytes[si] = float64(size) / float64(j.p)
				copyBytes[si] = j.algo.CopyFactor * float64(size)
			}
			rs, err := netsim.EvaluateSizes(tr, topos[j.p], sys.Params, netsim.Eval{
				Placement:   placements[j.p],
				Reduces:     collective.Reduces(),
				Overlap:     j.algo.Overlap,
				CopyBytesAt: copyBytes,
			}, elemBytes)
			if err != nil {
				return err
			}
			cells := make([]cell, len(sizes))
			for si := range sizes {
				cells[si] = cell{Time: rs[si].Time, Global: rs[si].GlobalBytes}
			}
			outs[i] = cells
			return nil
		}}
	}
	var res *sweepResult
	finish := func() *sweepResult {
		if res != nil {
			return res
		}
		res = &sweepResult{Algos: algos, Cells: map[string]map[cellKey]cell{}}
		for _, algo := range algos {
			res.Cells[algo.Name] = map[cellKey]cell{}
		}
		for i, j := range jobs {
			for si, size := range sizes {
				res.Cells[j.algo.Name][cellKey{P: j.p, Size: size}] = outs[i][si]
			}
		}
		return res
	}
	return tasks, finish, nil
}

// sweepCollective is the standalone form of planSweep: it drains the tasks
// on its own pool of the given width and returns the merged result. ctx
// bounds cell dispatch — a cancelled caller stops submitting cells and the
// cancellation error surfaces here (pinned by TestSweepCollectiveCancel).
func sweepCollective(ctx context.Context, sys System, collective coll.Collective, counts []int, sizes []int64, workers int) (*sweepResult, error) {
	tasks, finish, err := planSweep(sys, collective, counts, sizes)
	if err != nil {
		return nil, err
	}
	if err := pool.ForEachCtx(ctx, workers, len(tasks), func(i int) error { return tasks[i].run(ctx) }); err != nil {
		return nil, err
	}
	return finish(), nil
}

// best returns the fastest algorithm among the given names for a cell.
func (s *sweepResult) best(names []string, k cellKey) (string, cell, bool) {
	bestName := ""
	var bestCell cell
	for _, name := range names {
		c, ok := s.Cells[name][k]
		if !ok {
			continue
		}
		if bestName == "" || c.Time < bestCell.Time {
			bestName, bestCell = name, c
		}
	}
	return bestName, bestCell, bestName != ""
}

// names filters algorithm names by predicate.
func (s *sweepResult) names(pred func(coll.Algorithm) bool) []string {
	var out []string
	for _, a := range s.Algos {
		if pred(a) {
			out = append(out, a.Name)
		}
	}
	return out
}

func isBine(a coll.Algorithm) bool     { return a.Bine }
func isBinomial(a coll.Algorithm) bool { return a.Binomial }
func isBaseline(a coll.Algorithm) bool { return !a.Bine }

// torusAlgo is a Fugaku-specific algorithm entry (the registry covers flat
// networks; torus algorithms need the geometry).
type torusAlgo struct {
	Name    string
	Coll    coll.Collective
	Bine    bool
	Overlap float64
	Run     func(c fabric.Comm, tor core.Torus, root int, in, out []int32, op coll.Op) error
	// VecMult is the required divisibility of the recorded element count
	// beyond p (multiport slices).
	VecMult int
}

func torusAlgos() []torusAlgo {
	return []torusAlgo{
		{Name: "bine-torus", Coll: coll.CAllreduce, Bine: true,
			Run: func(c fabric.Comm, tor core.Torus, _ int, in, _ []int32, op coll.Op) error {
				return coll.TorusAllreduce(c, tor, in, op)
			}},
		{Name: "bine-multiport", Coll: coll.CAllreduce, Bine: true,
			Run: func(c fabric.Comm, tor core.Torus, _ int, in, _ []int32, op coll.Op) error {
				return coll.TorusMultiportAllreduce(c, tor, in, op)
			}},
		{Name: "bucket", Coll: coll.CAllreduce,
			Run: func(c fabric.Comm, tor core.Torus, _ int, in, _ []int32, op coll.Op) error {
				return coll.BucketAllreduce(c, tor, in, op)
			}},
		{Name: "bine-bcast", Coll: coll.CBcast, Bine: true,
			Run: func(c fabric.Comm, tor core.Torus, root int, in, _ []int32, op coll.Op) error {
				return coll.TorusBcast(c, tor, core.BineDH, root, in)
			}},
		{Name: "bine-reduce", Coll: coll.CReduce, Bine: true,
			Run: func(c fabric.Comm, tor core.Torus, root int, in, out []int32, op coll.Op) error {
				return coll.TorusReduce(c, tor, core.BineDH, root, in, out, op)
			}},
	}
}

// torusRecordedElems is the block granularity a torus algorithm records at;
// it is deterministic in the algorithm and geometry, so the trace caches
// fold it into the schedule identity without executing anything.
func torusRecordedElems(ta torusAlgo, tor core.Torus) int {
	mult := ta.VecMult
	if mult == 0 {
		mult = 2 * tor.NDims() // safe for every per-dimension split
	}
	return tor.P() * mult
}

// recordTorusTrace executes a torus algorithm at small block granularity.
func recordTorusTrace(ta torusAlgo, tor core.Torus, root int) (*fabric.Trace, error) {
	p := tor.P()
	n := torusRecordedElems(ta, tor)
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	err := fabric.Run(rec, func(c fabric.Comm) error {
		inLen, outLen := ta.Coll.InOutLens(p, n)
		in := make([]int32, inLen)
		var out []int32
		if outLen > 0 {
			out = make([]int32, outLen)
		}
		return ta.Run(c, tor, root, in, out, coll.OpSum)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: torus %v/%s %v: %w", ta.Coll, ta.Name, tor.Dims, err)
	}
	return rec.Trace(), nil
}

// synthTorusTrace is synthTrace for torus-geometry algorithms: the same
// schedule body recordTorusTrace runs on the fabric, walked serially over
// pattern endpoints instead.
func synthTorusTrace(ta torusAlgo, tor core.Torus, root int) (*fabric.Trace, error) {
	p := tor.P()
	n := torusRecordedElems(ta, tor)
	tr, err := synth.Run(p, func(c fabric.Comm) error {
		inLen, outLen := ta.Coll.InOutLens(p, n)
		in := make([]int32, inLen)
		var out []int32
		if outLen > 0 {
			out = make([]int32, outLen)
		}
		return ta.Run(c, tor, root, in, out, coll.OpSum)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: torus %v/%s %v: %w", ta.Coll, ta.Name, tor.Dims, err)
	}
	return tr, nil
}

// recordBody executes an ad-hoc schedule body on the recording goroutine
// fabric — the oracle/fallback leg of cachedNamedTrace.
func recordBody(kind, name string, p int, fn func(c fabric.Comm) error) (*fabric.Trace, error) {
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	if err := fabric.Run(rec, fn); err != nil {
		return nil, fmt.Errorf("harness: %s/%s p=%d: %w", kind, name, p, err)
	}
	return rec.Trace(), nil
}

// evaluateOnTorusSizes scores a recorded trace on the torus network at every
// vector size in one replay.
func evaluateOnTorusSizes(tr *fabric.Trace, recordedElems int, topo *topology.Torus, sizes []int64, reduces bool, overlap float64) ([]netsim.Result, error) {
	placement := make([]int, tr.P)
	for i := range placement {
		placement[i] = i
	}
	elemBytes := make([]float64, len(sizes))
	for si, size := range sizes {
		elemBytes[si] = float64(size) / float64(recordedElems)
	}
	return netsim.EvaluateSizes(tr, topo, FugakuParams(), netsim.Eval{
		Placement: placement,
		Reduces:   reduces,
		Overlap:   overlap,
	}, elemBytes)
}
