package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// serialSuite renders the quick suite the pre-sharding way: every
// experiment invoked one at a time, each draining its own pool — the
// per-system path the flat cross-system graph must reproduce byte for
// byte.
func serialSuite(t *testing.T, workers int) string {
	t.Helper()
	opts := Options{Quick: true, Workers: workers}
	var sb strings.Builder
	chain := []func(w io.Writer) error{
		func(w io.Writer) error { return Fig1(context.Background(), w) },
		func(w io.Writer) error { return Eq2(context.Background(), w) },
		func(w io.Writer) error { return Fig5(context.Background(), w, opts) },
		func(w io.Writer) error { return TableBinomial(context.Background(), w, LUMI(), opts) },
		func(w io.Writer) error { return HeatmapAllreduce(context.Background(), w, LUMI(), opts) },
		func(w io.Writer) error { return Boxplots(context.Background(), w, LUMI(), opts) },
		func(w io.Writer) error { return TableBinomial(context.Background(), w, Leonardo(), opts) },
		func(w io.Writer) error { return HeatmapAllreduce(context.Background(), w, Leonardo(), opts) },
		func(w io.Writer) error { return Boxplots(context.Background(), w, Leonardo(), opts) },
		func(w io.Writer) error { return TableBinomial(context.Background(), w, MareNostrum(), opts) },
		func(w io.Writer) error { return Boxplots(context.Background(), w, MareNostrum(), opts) },
		func(w io.Writer) error { return Fig11b(context.Background(), w, opts) },
		func(w io.Writer) error { return Fig14(context.Background(), w, opts) },
		func(w io.Writer) error { return Hier(context.Background(), w, opts) },
		func(w io.Writer) error { return PPN(context.Background(), w, opts) },
		func(w io.Writer) error { return AppD(context.Background(), w) },
	}
	for i, run := range chain {
		if i > 0 {
			fmt.Fprintln(&sb, strings.Repeat("=", 100))
		}
		if err := run(&sb); err != nil {
			t.Fatalf("serial step %d: %v", i, err)
		}
	}
	return sb.String()
}

// TestShardedRunAllByteIdentical pins the tentpole guarantee: RunAll's
// flat cross-system job graph — every system's cells drained at once on
// one shared pool — renders byte-identically to the serial per-system
// path, at worker counts {1, NumCPU}.
func TestShardedRunAllByteIdentical(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	reference := serialSuite(t, 1)
	for _, workers := range []int{1, runtime.NumCPU()} {
		ResetTraceCache()
		var sb strings.Builder
		if err := RunAll(context.Background(), &sb, Options{Quick: true, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sb.String() != reference {
			t.Fatalf("sharded RunAll (workers=%d) diverges from the serial per-system path", workers)
		}
	}
}

// TestRunAllSystemsSelector pins the -systems behavior: a selection keeps
// exactly its artifact groups, in paper order.
func TestRunAllSystemsSelector(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	var sb strings.Builder
	err := RunAll(context.Background(), &sb, Options{Quick: true, Workers: runtime.NumCPU(), Systems: []string{"marenostrum"}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "MareNostrum") {
		t.Fatalf("selection missing its system:\n%s", out)
	}
	for _, absent := range []string{"LUMI", "Leonardo", "Fugaku", "Fig. 1"} {
		if strings.Contains(out, absent) {
			t.Fatalf("selection %q leaked %q:\n%s", "marenostrum", absent, out)
		}
	}
	if err := RunAll(context.Background(), io.Discard, Options{Quick: true, Systems: []string{"nonesuch"}}); err == nil {
		t.Fatal("unknown system key accepted")
	}
}

// TestRunAllProgressCounters pins the per-system progress accounting: every
// job-graph cell reports exactly once, done counts ascend per system, and
// the final done equals the advertised total.
func TestRunAllProgressCounters(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	var mu sync.Mutex
	events := 0
	last := map[string]int{}
	totals := map[string]int{}
	progress := func(system string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		events++
		if done != last[system]+1 {
			t.Errorf("%s: done jumped %d -> %d", system, last[system], done)
		}
		last[system] = done
		totals[system] = total
	}
	err := RunAll(context.Background(), io.Discard, Options{Quick: true, Workers: runtime.NumCPU(), Progress: progress})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no progress events")
	}
	sum := 0
	for system, total := range totals {
		if last[system] != total {
			t.Errorf("%s: finished at %d of %d", system, last[system], total)
		}
		sum += total
	}
	if sum != events {
		t.Fatalf("%d events for %d cells", events, sum)
	}
	for _, system := range []string{"lumi", "leonardo", "marenostrum", "fugaku", "misc"} {
		if totals[system] == 0 {
			t.Errorf("no cells labeled %q", system)
		}
	}
}
