package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/pool"
)

// TestTraceCacheConcurrent hammers the flat and torus caches from many
// workers (run under -race in CI): every key must record exactly one trace
// and every caller must observe the same pointer.
func TestTraceCacheConcurrent(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	algos := coll.ByCollective(coll.Registry(), coll.CAllreduce)
	if len(algos) < 3 {
		t.Fatalf("only %d allreduce algorithms", len(algos))
	}
	algos = algos[:3]
	tor := core.MustTorus(2, 2, 2)
	ta := torusAlgos()[0]
	const lanes = 24
	flat := make([][]*trPtr, lanes)
	err := pool.ForEach(8, lanes, func(i int) error {
		algo := algos[i%len(algos)]
		tr, err := cachedTrace(context.Background(), algo, 16, 0)
		if err != nil {
			return err
		}
		ttr, n, err := cachedTorusTrace(context.Background(), ta, tor, 0)
		if err != nil {
			return err
		}
		if n <= 0 || ttr.NumRecords() == 0 || tr.NumRecords() == 0 {
			return fmt.Errorf("lane %d: empty trace", i)
		}
		flat[i] = []*trPtr{{algo.Name, tr}, {ta.Name, ttr}}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]any{}
	for _, lane := range flat {
		for _, p := range lane {
			if prev, ok := byName[p.name]; ok && prev != any(p.tr) {
				t.Fatalf("%s: cache returned distinct traces", p.name)
			}
			byName[p.name] = p.tr
		}
	}
}

type trPtr struct {
	name string
	tr   any
}

// TestParallelSweepByteIdentical pins the tentpole guarantee: a sweep
// dispatched on one worker and on eight workers renders byte-identical
// artifacts. The chain covers every parallelized driver family:
// HeatmapAllreduce (sweepCollective), PPN, Fig11b (torus + flat cells),
// Hier and Fig5 — exercising the worker pools and both trace caches.
func TestParallelSweepByteIdentical(t *testing.T) {
	sys := MareNostrum()
	chain := func(sb *strings.Builder, opts Options) error {
		if err := HeatmapAllreduce(context.Background(), sb, sys, opts); err != nil {
			return err
		}
		if err := PPN(context.Background(), sb, opts); err != nil {
			return err
		}
		if err := Fig11b(context.Background(), sb, opts); err != nil {
			return err
		}
		if err := Hier(context.Background(), sb, opts); err != nil {
			return err
		}
		return Fig5(context.Background(), sb, opts)
	}
	render := func(workers int) string {
		ResetTraceCache()
		var sb strings.Builder
		if err := chain(&sb, Options{Quick: true, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	// A warm cache must not change the rendering either.
	var sb strings.Builder
	if err := chain(&sb, Options{Quick: true, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != serial {
		t.Fatal("warm trace cache changed the artifact")
	}
	ResetTraceCache()
}

// TestTableBinomialByteIdentical covers the table artifacts (and, through
// them, every collective's sweep) at both pool widths.
func TestTableBinomialByteIdentical(t *testing.T) {
	sys := MareNostrum()
	render := func(workers int) string {
		ResetTraceCache()
		var sb strings.Builder
		if err := TableBinomial(context.Background(), &sb, sys, Options{Quick: true, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sb.String()
	}
	if a, b := render(1), render(6); a != b {
		t.Fatalf("table diverges:\n--- workers=1 ---\n%s\n--- workers=6 ---\n%s", a, b)
	}
	ResetTraceCache()
}
