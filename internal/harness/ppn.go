package harness

import (
	"fmt"
	"io"

	"binetrees/internal/coll"
	"binetrees/internal/netsim"
)

// PPN reproduces the Sec. 6.1 study: the same collectives with one vs four
// processes per node on a LUMI-like 64-node job. With more processes per
// node each node injects more traffic, so the global-link relief Bine
// provides matters more — the paper saw the 1 MiB reduce-scatter gain grow
// from 59% to 84%.
func PPN(w io.Writer, opts Options) error {
	sys := LUMI()
	const nodes = 64
	sizes := opts.sizes()
	placements, err := Placements(sys, []int{nodes})
	if err != nil {
		return err
	}
	nodePlacement := placements[nodes]
	fmt.Fprintln(w, "Sec. 6.1 — impact of processes per node (LUMI-like, 64 nodes):")
	fmt.Fprintln(w, "Bine gain over the best binomial baseline for reduce-scatter and allreduce:")
	fmt.Fprintf(w, "  %-20s", "")
	for _, size := range sizes {
		fmt.Fprintf(w, " %10s", SizeLabel(size))
	}
	fmt.Fprintln(w)
	for _, collective := range []coll.Collective{coll.CReduceScatter, coll.CAllreduce} {
		for _, ppn := range []int{1, 4} {
			p := nodes * ppn
			placement := make([]int, p)
			for r := range placement {
				placement[r] = nodePlacement[r/ppn]
			}
			topo, err := sys.TopologyFor(nodePlacement)
			if err != nil {
				return err
			}
			// Evaluate the Bine candidate against the binomial baseline at
			// this rank count on the shared node placement.
			var bineName, baseName string
			switch collective {
			case coll.CReduceScatter:
				bineName, baseName = "bine-send", "recursive-halving"
			default:
				bineName, baseName = "bine-bw", "rabenseifner"
			}
			registry := coll.Registry()
			gain := make([]float64, 0, len(sizes))
			for _, size := range sizes {
				times := map[string]float64{}
				for _, name := range []string{bineName, baseName} {
					algo, ok := coll.Find(registry, collective, name)
					if !ok {
						return fmt.Errorf("harness: %v/%s not registered", collective, name)
					}
					tr, err := recordTrace(algo, p, 0)
					if err != nil {
						return err
					}
					r, err := netsim.Evaluate(tr, topo, sys.Params, netsim.Eval{
						Placement: placement,
						ElemBytes: float64(size) / float64(p),
						Reduces:   collective.Reduces(),
						Overlap:   algo.Overlap,
						CopyBytes: algo.CopyFactor * float64(size),
					})
					if err != nil {
						return err
					}
					times[name] = r.Time
				}
				gain = append(gain, 100*(times[baseName]/times[bineName]-1))
			}
			fmt.Fprintf(w, "  %-15sppn=%d", collective, ppn)
			for _, g := range gain {
				fmt.Fprintf(w, " %9.0f%%", g)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "  paper: gains grow with processes per node (59% → 84% for the 1 MiB reduce-scatter)")
	return nil
}
