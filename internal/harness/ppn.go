package harness

import (
	"context"
	"fmt"
	"io"

	"binetrees/internal/coll"
	"binetrees/internal/netsim"
	"binetrees/internal/obs"
)

// PPN reproduces the Sec. 6.1 study: the same collectives with one vs four
// processes per node on a LUMI-like 64-node job. With more processes per
// node each node injects more traffic, so the global-link relief Bine
// provides matters more — the paper saw the 1 MiB reduce-scatter gain grow
// from 59% to 84%.
func PPN(ctx context.Context, w io.Writer, opts Options) error {
	p, err := planPPN(opts)
	return runPlan(ctx, w, p, err, opts)
}

func planPPN(opts Options) (*plan, error) {
	sys := LUMI()
	const nodes = 64
	sizes := opts.sizes()
	placements, err := Placements(sys, []int{nodes})
	if err != nil {
		return nil, err
	}
	nodePlacement := placements[nodes]
	// Every configuration shares the same 64-node placement, hence the same
	// tapered topology shares.
	topo, err := sys.TopologyFor(nodePlacement)
	if err != nil {
		return nil, err
	}
	// One cell per (collective, ppn, algorithm): record (or fetch from the
	// trace cache) the schedule at the cell's rank count and score every
	// size. The Bine candidate and the binomial baseline of each row are
	// independent cells.
	type ppnJob struct {
		collective coll.Collective
		ppn        int
		name       string
	}
	registry := coll.Registry()
	collectives := []coll.Collective{coll.CReduceScatter, coll.CAllreduce}
	var jobs []ppnJob
	for _, collective := range collectives {
		for _, ppn := range []int{1, 4} {
			var bineName, baseName string
			switch collective {
			case coll.CReduceScatter:
				bineName, baseName = "bine-send", "recursive-halving"
			default:
				bineName, baseName = "bine-bw", "rabenseifner"
			}
			for _, name := range []string{bineName, baseName} {
				jobs = append(jobs, ppnJob{collective: collective, ppn: ppn, name: name})
			}
		}
	}
	outs := make([][]float64, len(jobs))
	tasks := make([]task, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = task{system: sys.Key, run: func(ctx context.Context) error {
			j := jobs[i]
			p := nodes * j.ppn
			placement := make([]int, p)
			for r := range placement {
				placement[r] = nodePlacement[r/j.ppn]
			}
			algo, ok := coll.Find(registry, j.collective, j.name)
			if !ok {
				return fmt.Errorf("%v/%s not registered", j.collective, j.name)
			}
			tr, err := cachedTrace(ctx, algo, p, 0)
			if err != nil {
				return err
			}
			defer obs.TimeStage(ctx, obs.StageEvaluate)()
			elemBytes := make([]float64, len(sizes))
			copyBytes := make([]float64, len(sizes))
			for si, size := range sizes {
				elemBytes[si] = float64(size) / float64(p)
				copyBytes[si] = algo.CopyFactor * float64(size)
			}
			rs, err := netsim.EvaluateSizes(tr, topo, sys.Params, netsim.Eval{
				Placement:   placement,
				Reduces:     j.collective.Reduces(),
				Overlap:     algo.Overlap,
				CopyBytesAt: copyBytes,
			}, elemBytes)
			if err != nil {
				return err
			}
			times := make([]float64, len(sizes))
			for si := range sizes {
				times[si] = rs[si].Time
			}
			outs[i] = times
			return nil
		}}
	}
	render := func(w io.Writer) error {
		fmt.Fprintln(w, "Sec. 6.1 — impact of processes per node (LUMI-like, 64 nodes):")
		fmt.Fprintln(w, "Bine gain over the best binomial baseline for reduce-scatter and allreduce:")
		fmt.Fprintf(w, "  %-20s", "")
		for _, size := range sizes {
			fmt.Fprintf(w, " %10s", SizeLabel(size))
		}
		fmt.Fprintln(w)
		for row := 0; row < len(jobs)/2; row++ {
			bine, base := outs[2*row], outs[2*row+1]
			j := jobs[2*row]
			fmt.Fprintf(w, "  %-15sppn=%d", j.collective, j.ppn)
			for si := range sizes {
				fmt.Fprintf(w, " %9.0f%%", 100*(base[si]/bine[si]-1))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "  paper: gains grow with processes per node (59% → 84% for the 1 MiB reduce-scatter)")
		return nil
	}
	return &plan{tasks: tasks, render: render}, nil
}
