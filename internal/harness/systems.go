// Package harness regenerates every table and figure of the paper's
// evaluation (Sec. 5, Sec. 6 and the appendices) on the simulated systems:
// it sweeps node counts and vector sizes, executes every registered
// algorithm once per configuration under a recording fabric, replays the
// traces through the cost model, and renders the paper's tables, heatmaps
// and boxplots as text.
package harness

import (
	"fmt"

	"binetrees/internal/alloc"
	"binetrees/internal/netsim"
	"binetrees/internal/topology"
)

// System is one of the paper's evaluation machines, reduced to the
// properties the model needs.
type System struct {
	Name string
	// Key is the short selector the job graph and the -systems flag use
	// ("lumi", "leonardo", "marenostrum"); see SystemKeys.
	Key     string
	Machine alloc.Machine
	// Oversub selects the topology family: 0 = Dragonfly (per-pair global
	// links), > 0 = UpDown with that oversubscription (Dragonfly+ pods,
	// fat-tree subtrees).
	Oversub float64
	// NICGbps and GlobalGbps size the links.
	NICGbps, GlobalGbps float64
	Params              netsim.Params
	// NodeCounts swept by the experiments (powers of two, like the
	// paper's reported results).
	NodeCounts []int
	// Seed drives the synthetic allocation workload.
	Seed int64
	// MPI names the system's MPI flavour; it decides which binomial tree
	// the baselines use — Open MPI broadcasts over distance-doubling
	// trees, MPICH over distance-halving ones (Sec. 5.2.1 explains the
	// resulting gap).
	MPI string
}

// ExcludesAlgorithm reports whether the system's MPI library lacks the
// named algorithm (the paper compares against the algorithms each library
// actually offers).
func (s System) ExcludesAlgorithm(name string) bool {
	switch s.MPI {
	case "mpich": // Cray MPICH: distance-halving binomial trees
		return name == "binomial-dd"
	case "openmpi": // Open MPI: distance-doubling binomial trees
		return name == "binomial-dh"
	}
	return false
}

// Topology instantiates the system's network model with full-machine
// bundle capacities.
func (s System) Topology() (topology.Topology, error) {
	return s.TopologyFor(nil)
}

// TopologyFor instantiates the network model as experienced by a job placed
// on the given nodes: on tapered (UpDown) systems the job's share of each
// group's uplink/downlink bundle is proportional to how many of the group's
// nodes it occupies — the rest of the bundle serves other tenants, which is
// what makes global links the scarce resource the paper optimizes for.
func (s System) TopologyFor(placement []int) (topology.Topology, error) {
	if s.Oversub > 0 {
		var share []int
		if placement != nil {
			share = make([]int, s.Machine.Groups)
			for _, node := range placement {
				share[s.Machine.GroupOf(node)]++
			}
		}
		return topology.NewUpDown(topology.UpDownConfig{
			Name:           s.Name,
			Groups:         s.Machine.Groups,
			NodesPerGroup:  s.Machine.NodesPerGroup,
			NICBW:          topology.GbpsToBytes(s.NICGbps),
			Oversub:        s.Oversub,
			GroupNodeShare: share,
		})
	}
	return topology.NewDragonfly(topology.DragonflyConfig{
		Name:          s.Name,
		Groups:        s.Machine.Groups,
		NodesPerGroup: s.Machine.NodesPerGroup,
		NICBW:         topology.GbpsToBytes(s.NICGbps),
		GlobalBW:      topology.GbpsToBytes(s.GlobalGbps),
	})
}

func defaultParams() netsim.Params {
	return netsim.Params{
		AlphaLocal:    1.5e-6,
		AlphaGlobal:   3.0e-6,
		PerHopLatency: 3e-7,
		MsgOverhead:   6e-7,
		Gamma:         5e-11, // ~20 GB/s streaming reduce
		MemBW:         25e9,
	}
}

// LUMI is the Dragonfly system of Sec. 5.1: 24 groups of 124 nodes,
// Slingshot 11 (one 200 Gb/s NIC used per process, one process per node).
func LUMI() System {
	return System{
		Name:       "LUMI (Dragonfly)",
		Key:        "lumi",
		Machine:    alloc.Machine{Groups: 24, NodesPerGroup: 124},
		NICGbps:    200,
		GlobalGbps: 2 * 200, // per group-pair bundle on a 24-group Dragonfly
		Params:     defaultParams(),
		NodeCounts: []int{16, 32, 64, 128, 256, 512, 1024},
		Seed:       11,
		MPI:        "mpich",
	}
}

// Leonardo is the Dragonfly+ system of Sec. 5.2: 23 pods of 180 nodes,
// InfiniBand HDR.
func Leonardo() System {
	return System{
		Name:       "Leonardo (Dragonfly+)",
		Key:        "leonardo",
		Machine:    alloc.Machine{Groups: 23, NodesPerGroup: 180},
		Oversub:    1.8, // pods taper toward the second-level spines
		NICGbps:    200,
		Params:     defaultParams(),
		NodeCounts: []int{16, 32, 64, 128, 256, 512, 1024, 2048},
		Seed:       23,
		MPI:        "openmpi",
	}
}

// MareNostrum is the 2:1 oversubscribed fat tree of Sec. 5.3: 160-node
// full-bandwidth subtrees, InfiniBand NDR200.
func MareNostrum() System {
	return System{
		Name:       "MareNostrum 5 (2:1 fat tree)",
		Key:        "marenostrum",
		Machine:    alloc.Machine{Groups: 8, NodesPerGroup: 160},
		Oversub:    2,
		NICGbps:    200,
		Params:     defaultParams(),
		NodeCounts: []int{4, 8, 16, 32, 64},
		Seed:       55,
		MPI:        "openmpi",
	}
}

// FugakuShapes are the torus job geometries of Sec. 5.4.
func FugakuShapes() [][]int {
	return [][]int{{2, 2, 2}, {4, 4, 4}, {8, 8, 8}, {64, 64}, {32, 256}}
}

// FugakuParams models Tofu-D: 54.4 Gb/s per link/TNI, short per-hop
// latencies.
func FugakuParams() netsim.Params {
	p := defaultParams()
	p.AlphaLocal = 1.0e-6
	p.AlphaGlobal = 1.2e-6
	p.PerHopLatency = 2e-7
	return p
}

// FugakuTopology builds the torus network for one job shape.
func FugakuTopology(dims []int) (*topology.Torus, error) {
	return topology.NewTorus(topology.TorusConfig{
		Name:  fmt.Sprintf("Fugaku %v", dims),
		Dims:  dims,
		NICBW: topology.GbpsToBytes(54.4),
		// Each link direction is a separate resource (6 TNIs per node).
		LinkBW: topology.GbpsToBytes(54.4),
	})
}

// VectorSizes returns the paper's nine benchmark sizes (bytes), 32 B to
// 512 MiB in 8× steps.
func VectorSizes() []int64 {
	sizes := make([]int64, 0, 9)
	for s := int64(32); s <= 512<<20; s *= 8 {
		sizes = append(sizes, s)
	}
	return sizes
}

// SizeLabel formats a vector size the way the paper's figures do.
func SizeLabel(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%d MiB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%d KiB", bytes>>10)
	default:
		return fmt.Sprintf("%d B", bytes)
	}
}

// Placements builds fragmented rank→node maps for every requested job size
// by replaying a churning workload on the system's allocator and then
// placing each job on the fragmented machine — the Slurm-realism at the
// heart of the paper's locality argument (Sec. 2.4.2).
func Placements(sys System, counts []int) (map[int][]int, error) {
	w := FragmentingWorkload(sys.Machine, maxInt(counts), sys.Seed)
	w.Run(1200) // reach steady-state fragmentation
	out := make(map[int][]int, len(counts))
	for _, p := range counts {
		w.EnsureFree(p)
		nodes, err := w.A.Allocate(p)
		if err != nil {
			return nil, fmt.Errorf("harness: placing %d nodes on %s: %w", p, sys.Name, err)
		}
		out[p] = nodes
		w.A.Release(nodes)
		w.Run(53) // churn between placements so each job sees different holes
	}
	return out, nil
}

// FragmentingWorkload is the churn model shared by the sweeps and the
// Fig. 5 study: a production-like mix of many tiny jobs and a power-of-two
// tail, with lifetimes long enough to keep the machine ~2/3 occupied so
// free nodes are scattered.
func FragmentingWorkload(m alloc.Machine, maxP int, seed int64) *alloc.Workload {
	return &alloc.Workload{
		A:        alloc.NewAllocator(m, seed),
		Sizes:    alloc.ProductionSizes(maxP),
		Lifetime: alloc.UniformLifetime(30, 120),
	}
}

func maxInt(v []int) int {
	out := 0
	for _, x := range v {
		if x > out {
			out = x
		}
	}
	return out
}
