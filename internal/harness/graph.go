package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"binetrees/internal/obs"
	"binetrees/internal/pool"
)

// The harness used to drain each experiment's cells on that experiment's
// own worker pool, one experiment at a time. The job graph below flattens
// the whole suite instead: every experiment compiles to a plan — tasks
// that may run in any order plus a serial render — and RunAll concatenates
// all selected plans' tasks into one flat (system × collective × node
// count × algorithm) cell list drained by a single process-wide
// pool.Runner, so the LUMI / Leonardo / MareNostrum / Fugaku artifact
// groups record and evaluate concurrently while sharing the process-wide
// trace cache.

// task is one schedulable cell of the flat cross-system job graph: an
// independent recording or evaluation unit, labeled with the system key it
// belongs to for progress accounting. run receives the drain's context so
// cell-level stage timings (resolve, evaluate) attribute to the request
// trace it may carry.
type task struct {
	system string
	run    func(ctx context.Context) error
}

// plan is one experiment compiled for the job graph: tasks that may run in
// any order on any pool, and a render that serially writes the artifact
// once every task has completed. A render only reads state its own plan's
// tasks wrote into index-addressed slots, so the artifact is byte-identical
// however the tasks interleave — drained per experiment or across the whole
// cross-system graph (pinned by TestShardedRunAllByteIdentical).
type plan struct {
	tasks  []task
	render func(w io.Writer) error
}

// ProgressFunc observes job-graph progress: system is the completed cell's
// system key, done/total that system's cell counts. Called concurrently
// from pool workers (serialized per tracker).
type ProgressFunc func(system string, done, total int)

// progressTracker aggregates per-system completion counts and fans them
// into a ProgressFunc. A nil tracker is a no-op.
type progressTracker struct {
	fn    ProgressFunc
	mu    sync.Mutex
	done  map[string]int
	total map[string]int
}

func newProgressTracker(fn ProgressFunc, tasks []task) *progressTracker {
	if fn == nil {
		return nil
	}
	t := &progressTracker{fn: fn, done: map[string]int{}, total: map[string]int{}}
	for _, tk := range tasks {
		t.total[tk.system]++
	}
	return t
}

func (t *progressTracker) taskDone(system string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done[system]++
	t.fn(system, t.done[system], t.total[system])
	t.mu.Unlock()
}

// runPlan drains one experiment's tasks on its own pool and renders — the
// serial per-experiment path behind the standalone drivers (Fig5, Fig11b,
// …). RunAll bypasses it and drains every plan's tasks together on one
// shared Runner instead. ctx bounds cell dispatch and carries the trace the
// stage timings attribute to.
func runPlan(ctx context.Context, w io.Writer, p *plan, err error, opts Options) error {
	if err != nil {
		return err
	}
	tracker := newProgressTracker(opts.Progress, p.tasks)
	endExec := obs.TimeStage(ctx, obs.StageExecute)
	if err := pool.ForEachCtx(ctx, opts.Workers, len(p.tasks), func(i int) error {
		if err := p.tasks[i].run(ctx); err != nil {
			return err
		}
		tracker.taskDone(p.tasks[i].system)
		return nil
	}); err != nil {
		return err
	}
	endExec()
	defer obs.TimeStage(ctx, obs.StageRender)()
	return p.render(w)
}

// systemMisc labels cells of experiments that model ad-hoc machines (the
// Fig. 1 fat tree, the Sec. 6.2 GPU cluster, Eq. 2's pure schedule math);
// systemFugaku labels the torus experiments, which have no System struct.
const (
	systemMisc   = "misc"
	systemFugaku = "fugaku"
)

// SystemKeys returns the valid Options.Systems / -systems selector keys.
func SystemKeys() []string {
	return []string{LUMI().Key, Leonardo().Key, MareNostrum().Key, systemFugaku, systemMisc}
}

// step is one entry of the experiment sequence: its artifact name, the
// system keys it contributes to (the -systems selector keeps a step if any
// of its keys is selected), and its plan compiler.
type step struct {
	name    string
	systems []string
	plan    func(opts Options) (*plan, error)
}

func steps() []step {
	lumi, leo, mare := LUMI(), Leonardo(), MareNostrum()
	return []step{
		{"fig1", []string{systemMisc}, func(Options) (*plan, error) { return planFig1() }},
		{"eq2", []string{systemMisc}, func(Options) (*plan, error) { return planEq2() }},
		{"fig5", []string{leo.Key, lumi.Key}, planFig5},
		{"table3", []string{lumi.Key}, func(o Options) (*plan, error) { return planTableBinomial(lumi, o) }},
		{"fig9a", []string{lumi.Key}, func(o Options) (*plan, error) { return planHeatmapAllreduce(lumi, o) }},
		{"fig9b", []string{lumi.Key}, func(o Options) (*plan, error) { return planBoxplots(lumi, o) }},
		{"table4", []string{leo.Key}, func(o Options) (*plan, error) { return planTableBinomial(leo, o) }},
		{"fig10a", []string{leo.Key}, func(o Options) (*plan, error) { return planHeatmapAllreduce(leo, o) }},
		{"fig10b", []string{leo.Key}, func(o Options) (*plan, error) { return planBoxplots(leo, o) }},
		{"table5", []string{mare.Key}, func(o Options) (*plan, error) { return planTableBinomial(mare, o) }},
		{"fig11a", []string{mare.Key}, func(o Options) (*plan, error) { return planBoxplots(mare, o) }},
		{"fig11b", []string{systemFugaku}, planFig11b},
		{"fig14", []string{lumi.Key}, planFig14},
		{"hier", []string{systemMisc}, planHier},
		{"ppn", []string{lumi.Key}, planPPN},
		{"appD", []string{systemFugaku}, func(Options) (*plan, error) { return planAppD() }},
	}
}

// NormalizeSystems canonicalizes a systems selection (the CLI -systems flag,
// the service's systems= parameter): keys are trimmed and lowercased, blanks
// dropped, duplicates removed, and the result sorted — the selection is a
// set, so order never changes the rendering and the canonical form can key
// request deduplication. Unknown keys and all-blank selections error; an
// empty input returns nil, meaning "select everything".
func NormalizeSystems(keys []string) ([]string, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	valid := map[string]bool{}
	for _, k := range SystemKeys() {
		valid[k] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, k := range keys {
		k = strings.ToLower(strings.TrimSpace(k))
		if k == "" {
			continue
		}
		if !valid[k] {
			return nil, fmt.Errorf("unknown system %q (have %s)", k, strings.Join(SystemKeys(), ", "))
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty system selection (have %s)", strings.Join(SystemKeys(), ", "))
	}
	sort.Strings(out)
	return out, nil
}

// selectSteps filters the sequence by system keys (empty selects all).
func selectSteps(keys []string) ([]step, error) {
	norm, err := NormalizeSystems(keys)
	if err != nil {
		return nil, err
	}
	all := steps()
	if norm == nil {
		return all, nil
	}
	want := map[string]bool{}
	for _, k := range norm {
		want[k] = true
	}
	var out []step
	for _, s := range all {
		for _, key := range s.systems {
			if want[key] {
				out = append(out, s)
				break
			}
		}
	}
	return out, nil
}

// RunAll executes every experiment (or the Options.Systems selection) in
// paper order. All selected experiments compile up front and their cells
// form one flat job graph drained by a single process-wide pool.Runner —
// cross-system sharding — before the artifacts render serially, separated
// exactly as the per-experiment path separates them. ctx bounds cell
// submission and carries the trace the stage timings attribute to.
func RunAll(ctx context.Context, w io.Writer, opts Options) error {
	runner := pool.NewRunner(opts.Workers)
	defer runner.Close()
	return RunAllOn(ctx, w, runner, opts)
}

// RunAllOn is RunAll on a caller-owned Runner with context-bounded cell
// submission — the artifact service's path, where one resident process-wide
// pool outlives every request. The rendering is the exact byte sequence
// RunAll emits for the same Options.
func RunAllOn(ctx context.Context, w io.Writer, runner *pool.Runner, opts Options) error {
	_, endCompile := obs.StartSpan(ctx, obs.StageCompile)
	selected, err := selectSteps(opts.Systems)
	if err != nil {
		endCompile()
		return fmt.Errorf("harness: %w", err)
	}
	plans := make([]*plan, len(selected))
	for i, s := range selected {
		p, err := s.plan(opts)
		if err != nil {
			endCompile()
			return fmt.Errorf("harness: %s: %w", s.name, err)
		}
		plans[i] = p
	}
	endCompile()
	var flat []task
	var flatStep []string
	for i, p := range plans {
		flat = append(flat, p.tasks...)
		for range p.tasks {
			flatStep = append(flatStep, selected[i].name)
		}
	}
	tracker := newProgressTracker(opts.Progress, flat)
	ectx, endExec := obs.StartSpan(ctx, obs.StageExecute)
	if err := runner.ForEachCtx(ectx, len(flat), func(i int) error {
		if err := flat[i].run(ectx); err != nil {
			return fmt.Errorf("harness: %s: %w", flatStep[i], err)
		}
		tracker.taskDone(flat[i].system)
		return nil
	}); err != nil {
		endExec()
		return err
	}
	endExec()
	_, endRender := obs.StartSpan(ctx, obs.StageRender)
	defer endRender()
	for i, p := range plans {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("=", 100))
		}
		if err := p.render(w); err != nil {
			return fmt.Errorf("harness: %s: %w", selected[i].name, err)
		}
	}
	return nil
}

// ExperimentNames returns every experiment name in paper order — the valid
// -experiment values of the CLIs and /artifact/{experiment} endpoints of the
// service (excluding the "all" aggregate, which concatenates them).
func ExperimentNames() []string {
	all := steps()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.name
	}
	return out
}

// Experiment is one compiled experiment held for request-scoped execution:
// independent recording/evaluation cells plus the serial artifact renderer.
// The artifact service compiles the requested plan, drains its cells on the
// resident process-wide Runner, and renders into the response stream.
type Experiment struct {
	name string
	p    *plan
}

// CompileExperiment compiles the named experiment's plan under opts. The
// name must be one of ExperimentNames.
func CompileExperiment(name string, opts Options) (*Experiment, error) {
	for _, s := range steps() {
		if s.name == name {
			p, err := s.plan(opts)
			if err != nil {
				return nil, fmt.Errorf("harness: %s: %w", name, err)
			}
			return &Experiment{name: name, p: p}, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", name)
}

// Name returns the experiment's -experiment / endpoint name.
func (e *Experiment) Name() string { return e.name }

// Tasks returns the number of schedulable cells the plan compiled to.
func (e *Experiment) Tasks() int { return len(e.p.tasks) }

// Run drains the experiment's cells on the caller's runner and renders the
// artifact to w — the same serial render pass the batch CLIs use, so the
// bytes are identical to a binebench run of the same experiment at any pool
// width. ctx bounds cell submission: a cancelled request stops dispatching
// new cells (in-flight ones complete, keeping the shared caches consistent).
func (e *Experiment) Run(ctx context.Context, w io.Writer, runner *pool.Runner, progress ProgressFunc) error {
	tracker := newProgressTracker(progress, e.p.tasks)
	ectx, endExec := obs.StartSpan(ctx, obs.StageExecute)
	if err := runner.ForEachCtx(ectx, len(e.p.tasks), func(i int) error {
		if err := e.p.tasks[i].run(ectx); err != nil {
			return err
		}
		tracker.taskDone(e.p.tasks[i].system)
		return nil
	}); err != nil {
		endExec()
		return fmt.Errorf("harness: %s: %w", e.name, err)
	}
	endExec()
	_, endRender := obs.StartSpan(ctx, obs.StageRender)
	defer endRender()
	if err := e.p.render(w); err != nil {
		return fmt.Errorf("harness: %s: %w", e.name, err)
	}
	return nil
}

// RunExperiment compiles and executes one named experiment on a private pool
// of opts.Workers — the single-experiment CLI path. It shares plan
// compilation and rendering with the service path, so binebench files and
// binebenchd responses for the same request are byte-identical by
// construction (and pinned by tests on both sides).
func RunExperiment(ctx context.Context, w io.Writer, name string, opts Options) error {
	start := time.Now()
	e, err := CompileExperiment(name, opts)
	obs.ObserveStage(obs.StageCompile, time.Since(start))
	if err != nil {
		return err
	}
	return runPlan(ctx, w, e.p, nil, opts)
}
