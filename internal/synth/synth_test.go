package synth

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// recordSchedule is the oracle: the same schedule body executed for real on
// the in-process goroutine fabric under a Recorder. The short timeout bounds
// fuzz iterations that hit a genuinely unsupported (algorithm, p, root)
// combination at runtime.
func recordSchedule(p int, fn func(c fabric.Comm) error) (*fabric.Trace, error) {
	f := fabric.NewMem(p)
	f.SetTimeout(5 * time.Second)
	rec := fabric.NewRecorder(f)
	defer rec.Close()
	if err := fabric.Run(rec, fn); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

func encodeBytes(t *testing.T, tr *fabric.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fabric.EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkAlgoEquivalence pins the tentpole property for one registry schedule:
// synthesis and recording either both fail, or produce byte-identical
// encoded traces.
func checkAlgoEquivalence(t *testing.T, algo coll.Algorithm, p, root int) {
	t.Helper()
	name := fmt.Sprintf("%v/%s p=%d root=%d", algo.Coll, algo.Name, p, root)
	synthesize := func() (*fabric.Trace, error) {
		s, err := algo.Pattern(p, root, p)
		if err != nil {
			return nil, err
		}
		return Schedule(s)
	}
	record := func() (*fabric.Trace, error) {
		run, err := algo.Make(p, root)
		if err != nil {
			return nil, err
		}
		return recordSchedule(p, func(c fabric.Comm) error {
			inLen, outLen := algo.Coll.InOutLens(p, p)
			in := make([]int32, inLen)
			var out []int32
			if outLen > 0 {
				out = make([]int32, outLen)
			}
			return run(c, root, in, out, coll.OpSum)
		})
	}
	st, serr := synthesize()
	rt, rerr := record()
	if (serr == nil) != (rerr == nil) {
		t.Fatalf("%s: synth err %v, record err %v", name, serr, rerr)
	}
	if serr != nil {
		return
	}
	if !bytes.Equal(encodeBytes(t, st), encodeBytes(t, rt)) {
		t.Fatalf("%s: synthesized trace is not byte-identical to the recording\n synth  %d records\n record %d records",
			name, st.NumRecords(), rt.NumRecords())
	}
}

// TestRegistryScheduleEquivalence sweeps every registered algorithm over
// representative (p, root) combinations: the synthesized trace must encode
// byte-identically to the fabric recording for every one of them.
func TestRegistryScheduleEquivalence(t *testing.T) {
	combos := []struct{ p, root int }{{4, 0}, {16, 0}, {16, 5}, {8, 7}}
	for _, algo := range coll.Registry() {
		for _, c := range combos {
			checkAlgoEquivalence(t, algo, c.p, c.root)
		}
	}
}

// TestAdHocScheduleEquivalence covers the schedule families outside the
// registry — torus, named tree broadcast, butterfly allreduce and the
// hierarchical composite — via Run, mirroring the harness's
// cachedNamedTrace and torus recording sites.
func TestAdHocScheduleEquivalence(t *testing.T) {
	tor44 := core.MustTorus(4, 4)
	tor222 := core.MustTorus(2, 2, 2)
	tree := core.MustTree(core.BineDH, 8, 0)
	bfly := core.MustButterfly(core.BflyBineDD, 16)
	cases := []struct {
		name string
		p    int
		fn   func(c fabric.Comm) error
	}{
		{"torus-allreduce/4x4", 16, func(c fabric.Comm) error {
			return coll.TorusAllreduce(c, tor44, make([]int32, 16*4), coll.OpSum)
		}},
		{"torus-multiport-allreduce/4x4", 16, func(c fabric.Comm) error {
			return coll.TorusMultiportAllreduce(c, tor44, make([]int32, 16*4), coll.OpSum)
		}},
		{"bucket-allreduce/2x2x2", 8, func(c fabric.Comm) error {
			return coll.BucketAllreduce(c, tor222, make([]int32, 8*6), coll.OpSum)
		}},
		{"torus-bcast/4x4", 16, func(c fabric.Comm) error {
			return coll.TorusBcast(c, tor44, core.BineDH, 0, make([]int32, 1))
		}},
		{"torus-reduce/4x4", 16, func(c fabric.Comm) error {
			return coll.TorusReduce(c, tor44, core.BineDH, 0, make([]int32, 16), make([]int32, 16), coll.OpSum)
		}},
		{"tree-bcast/p=8", 8, func(c fabric.Comm) error {
			return coll.Bcast(c, tree, make([]int32, 1))
		}},
		{"bfly-allreduce/p=16", 16, func(c fabric.Comm) error {
			return coll.AllreduceRsAg(c, bfly, make([]int32, 16), coll.OpSum)
		}},
		{"hier-allreduce/p=16", 16, func(c fabric.Comm) error {
			return coll.HierarchicalAllreduce(c, 4, core.BflyBineDD, make([]int32, 64), coll.OpSum)
		}},
	}
	for _, tc := range cases {
		st, serr := Run(tc.p, tc.fn)
		rt, rerr := recordSchedule(tc.p, tc.fn)
		if serr != nil || rerr != nil {
			t.Fatalf("%s: synth err %v, record err %v", tc.name, serr, rerr)
		}
		if !bytes.Equal(encodeBytes(t, st), encodeBytes(t, rt)) {
			t.Fatalf("%s: synthesized trace is not byte-identical to the recording", tc.name)
		}
	}
}

// FuzzSynthEquivalence fuzzes the byte-equivalence property over random
// (algorithm, ranks, root) within registry bounds.
func FuzzSynthEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(16), uint8(0))
	f.Add(uint8(7), uint8(12), uint8(3))
	f.Add(uint8(23), uint8(8), uint8(7))
	f.Add(uint8(44), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, algoIdx, pp, rr uint8) {
		reg := coll.Registry()
		algo := reg[int(algoIdx)%len(reg)]
		p := 2 + int(pp)%31 // p in [2, 32]
		root := int(rr) % p
		checkAlgoEquivalence(t, algo, p, root)
	})
}
