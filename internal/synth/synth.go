// Package synth emits communication traces directly from schedule math —
// the cold-path replacement for recording on the goroutine fabric. Every
// schedule in internal/coll is deterministic and data-independent given
// (collective, algorithm, rank count, root, vector length), so the
// (step, from, to, sub, elems) columns a fabric.Trace stores are a pure
// function of the schedule definition: synth walks each rank's schedule
// body serially against a fabric.TraceBuilder pattern endpoint (Sends are
// logged, Recvs complete immediately) and merges the columns with the same
// shard sort and counting merge the Recorder uses. The result is
// byte-identical under the codec to a recorded trace of the same schedule
// — pinned by this package's tests across the whole registry, by the
// harness's -verify-synth mode, and in CI.
//
// The goroutine fabric remains the oracle: property/fuzz tests and the
// tcp-cluster example still execute schedules for real, and the harness
// falls back to it whenever synthesis fails.
package synth

import (
	"fmt"
	"time"

	"binetrees/internal/coll"
	"binetrees/internal/fabric"
	"binetrees/internal/obs"
)

// Synthesis metrics in the process-wide obs registry: how often the cold
// path runs, how long a synthesis takes, and how much trace volume it emits.
var (
	obsTraces = obs.Default.Counter("binebench_synth_traces_total",
		"Traces emitted by schedule synthesis.")
	obsRecords = obs.Default.Counter("binebench_synth_trace_records_total",
		"Send records across all synthesized traces.")
	obsSeconds = obs.Default.Histogram("binebench_synth_seconds",
		"Wall time of one trace synthesis (all ranks, merge included).", nil)
)

func observe(tr *fabric.Trace, start time.Time) {
	obsSeconds.ObserveSince(start)
	obsTraces.Inc()
	obsRecords.Add(uint64(tr.NumRecords()))
}

// Schedule emits the trace of one registry schedule by walking every rank
// in ascending order.
func Schedule(s coll.Synthesizer) (*fabric.Trace, error) {
	start := time.Now()
	p := s.Ranks()
	b := fabric.NewTraceBuilder(p)
	for rank := 0; rank < p; rank++ {
		if err := s.Walk(rank, b.Comm(rank)); err != nil {
			return nil, fmt.Errorf("synth: rank %d: %w", rank, err)
		}
	}
	tr := b.Trace()
	observe(tr, start)
	return tr, nil
}

// Run is the ad-hoc form of Schedule for schedule bodies outside the
// registry (torus, named tree/butterfly and hierarchical schedules): fn is
// the same per-rank body a fabric.Run recording would execute, driven here
// once per rank, serially, against pattern endpoints.
func Run(p int, fn func(c fabric.Comm) error) (*fabric.Trace, error) {
	start := time.Now()
	b := fabric.NewTraceBuilder(p)
	for rank := 0; rank < p; rank++ {
		if err := fn(b.Comm(rank)); err != nil {
			return nil, fmt.Errorf("synth: rank %d: %w", rank, err)
		}
	}
	tr := b.Trace()
	observe(tr, start)
	return tr, nil
}
