// Package synth emits communication traces directly from schedule math —
// the cold-path replacement for recording on the goroutine fabric. Every
// schedule in internal/coll is deterministic and data-independent given
// (collective, algorithm, rank count, root, vector length), so the
// (step, from, to, sub, elems) columns a fabric.Trace stores are a pure
// function of the schedule definition: synth walks each rank's schedule
// body serially against a fabric.TraceBuilder pattern endpoint (Sends are
// logged, Recvs complete immediately) and merges the columns with the same
// shard sort and counting merge the Recorder uses. The result is
// byte-identical under the codec to a recorded trace of the same schedule
// — pinned by this package's tests across the whole registry, by the
// harness's -verify-synth mode, and in CI.
//
// The goroutine fabric remains the oracle: property/fuzz tests and the
// tcp-cluster example still execute schedules for real, and the harness
// falls back to it whenever synthesis fails.
package synth

import (
	"fmt"

	"binetrees/internal/coll"
	"binetrees/internal/fabric"
)

// Schedule emits the trace of one registry schedule by walking every rank
// in ascending order.
func Schedule(s coll.Synthesizer) (*fabric.Trace, error) {
	p := s.Ranks()
	b := fabric.NewTraceBuilder(p)
	for rank := 0; rank < p; rank++ {
		if err := s.Walk(rank, b.Comm(rank)); err != nil {
			return nil, fmt.Errorf("synth: rank %d: %w", rank, err)
		}
	}
	return b.Trace(), nil
}

// Run is the ad-hoc form of Schedule for schedule bodies outside the
// registry (torus, named tree/butterfly and hierarchical schedules): fn is
// the same per-rank body a fabric.Run recording would execute, driven here
// once per rank, serially, against pattern endpoints.
func Run(p int, fn func(c fabric.Comm) error) (*fabric.Trace, error) {
	b := fabric.NewTraceBuilder(p)
	for rank := 0; rank < p; rank++ {
		if err := fn(b.Comm(rank)); err != nil {
			return nil, fmt.Errorf("synth: rank %d: %w", rank, err)
		}
	}
	return b.Trace(), nil
}
