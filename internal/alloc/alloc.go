// Package alloc generates Slurm-like job allocations over group-structured
// machines. It substitutes for the paper's one/two-week squeue/scontrol
// captures from Leonardo and LUMI (Sec. 2.4.2): jobs arrive and depart,
// nodes are handed out first-fit in hostname order (Slurm's default block
// distribution over the sorted free list), and long-running occupancy
// fragments the machine so that consecutive ranks land in irregular group
// runs — the regime in which Bine's shorter modular distances pay off.
package alloc

import (
	"fmt"
	"math/rand"
)

// Machine describes a group-structured system (Dragonfly groups, Dragonfly+
// pods, or fat-tree subtrees).
type Machine struct {
	Groups        int
	NodesPerGroup int
}

// Nodes returns the machine size.
func (m Machine) Nodes() int { return m.Groups * m.NodesPerGroup }

// GroupOf returns the group of a node (hostnames numbered consecutively
// across groups, as on the paper's systems).
func (m Machine) GroupOf(node int) int { return node / m.NodesPerGroup }

// Allocator tracks node occupancy and serves first-fit block allocations.
type Allocator struct {
	m    Machine
	busy []bool
	free int
	rng  *rand.Rand
}

// NewAllocator creates an empty allocator with a deterministic random
// source for workload generation.
func NewAllocator(m Machine, seed int64) *Allocator {
	return &Allocator{
		m:    m,
		busy: make([]bool, m.Nodes()),
		free: m.Nodes(),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Machine returns the allocator's machine description.
func (a *Allocator) Machine() Machine { return a.m }

// FreeNodes returns how many nodes are currently unallocated.
func (a *Allocator) FreeNodes() int { return a.free }

// Allocate hands out k free nodes in ascending hostname order (first fit).
// Rank i of the job runs on the i-th returned node, matching Slurm's block
// distribution over the sorted free list.
func (a *Allocator) Allocate(k int) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("alloc: request for %d nodes", k)
	}
	if k > a.free {
		return nil, fmt.Errorf("alloc: %d nodes requested, %d free", k, a.free)
	}
	nodes := make([]int, 0, k)
	for n := 0; n < len(a.busy) && len(nodes) < k; n++ {
		if !a.busy[n] {
			a.busy[n] = true
			nodes = append(nodes, n)
		}
	}
	a.free -= k
	return nodes, nil
}

// Release returns a job's nodes to the free pool.
func (a *Allocator) Release(nodes []int) {
	for _, n := range nodes {
		if a.busy[n] {
			a.busy[n] = false
			a.free++
		}
	}
}

// GroupsOf maps a job's node list to per-rank group IDs.
func (a *Allocator) GroupsOf(nodes []int) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = a.m.GroupOf(n)
	}
	return out
}

// Job is one synthetic allocation.
type Job struct {
	Nodes  []int
	Groups []int
}

// SpannedGroups counts the distinct groups a job touches.
func (j Job) SpannedGroups() int {
	seen := map[int]bool{}
	for _, g := range j.Groups {
		seen[g] = true
	}
	return len(seen)
}

// Workload drives a churning job mix and collects the allocations of jobs
// whose size matches the sampler's interest. sizes draws a job size;
// lifetime draws how many subsequent arrivals a job survives.
type Workload struct {
	A *Allocator
	// Sizes samples a job's node count.
	Sizes func(rng *rand.Rand) int
	// Lifetime samples how many arrivals a job outlives.
	Lifetime func(rng *rand.Rand) int

	clock   int
	running []liveJob
}

type liveJob struct {
	nodes []int
	until int
}

// Run simulates the arrival of n further jobs and returns every
// successfully placed job's allocation snapshot (in arrival order). Jobs
// that cannot fit are dropped, like Slurm holding them in queue. Jobs still
// running at the end stay allocated — the machine remains fragmented for
// subsequent Run or Allocate calls; Drain releases them.
func (w *Workload) Run(n int) []Job {
	var out []Job
	for end := w.clock + n; w.clock < end; w.clock++ {
		// Retire expired jobs first.
		kept := w.running[:0]
		for _, l := range w.running {
			if l.until <= w.clock {
				w.A.Release(l.nodes)
			} else {
				kept = append(kept, l)
			}
		}
		w.running = kept
		k := w.Sizes(w.A.rng)
		nodes, err := w.A.Allocate(k)
		if err != nil {
			continue
		}
		w.running = append(w.running, liveJob{nodes: nodes, until: w.clock + 1 + w.Lifetime(w.A.rng)})
		out = append(out, Job{Nodes: nodes, Groups: w.A.GroupsOf(nodes)})
	}
	return out
}

// EnsureFree retires the oldest running jobs until at least k nodes are
// free (a scheduler draining the machine for a large reservation). The
// freed holes stay scattered, preserving fragmentation.
func (w *Workload) EnsureFree(k int) {
	for w.A.FreeNodes() < k && len(w.running) > 0 {
		w.A.Release(w.running[0].nodes)
		w.running = w.running[1:]
	}
}

// Drain releases every still-running job.
func (w *Workload) Drain() {
	for _, l := range w.running {
		w.A.Release(l.nodes)
	}
	w.running = nil
}

// PowerOfTwoSizes samples power-of-two job sizes between min and max
// (inclusive), biased toward small jobs like real system mixes.
func PowerOfTwoSizes(min, max int) func(rng *rand.Rand) int {
	var sizes []int
	for s := min; s <= max; s *= 2 {
		sizes = append(sizes, s)
	}
	return func(rng *rand.Rand) int {
		// Geometric bias: small jobs dominate real queues.
		i := 0
		for i < len(sizes)-1 && rng.Intn(2) == 0 {
			i++
		}
		return sizes[i]
	}
}

// ProductionSizes models a production queue: a heavy majority of tiny
// (1–8 node) jobs that riddle the machine with small holes, plus a tail of
// power-of-two jobs up to max — the mix that makes large allocations
// fragmented, as observed on Leonardo and LUMI (Sec. 2.4.2 of the paper).
func ProductionSizes(max int) func(rng *rand.Rand) int {
	tail := PowerOfTwoSizes(16, max)
	return func(rng *rand.Rand) int {
		if rng.Float64() < 0.7 {
			return 1 + rng.Intn(8)
		}
		return tail(rng)
	}
}

// UniformLifetime samples lifetimes uniformly in [min, max].
func UniformLifetime(min, max int) func(rng *rand.Rand) int {
	return func(rng *rand.Rand) int {
		return min + rng.Intn(max-min+1)
	}
}
