package alloc

import "testing"

func TestAllocatorFirstFit(t *testing.T) {
	m := Machine{Groups: 4, NodesPerGroup: 8}
	a := NewAllocator(m, 1)
	j1, err := a.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range j1 {
		if n != i {
			t.Fatalf("first fit on empty machine: %v", j1)
		}
	}
	if a.FreeNodes() != 22 {
		t.Fatalf("free %d", a.FreeNodes())
	}
	j2, err := a.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if j2[0] != 10 {
		t.Fatalf("second job starts at %d", j2[0])
	}
	a.Release(j1)
	if a.FreeNodes() != 28 {
		t.Fatalf("free after release %d", a.FreeNodes())
	}
	// Releasing twice is harmless.
	a.Release(j1)
	if a.FreeNodes() != 28 {
		t.Fatal("double release changed occupancy")
	}
	// Fragmentation: the next 12-node job skips the hole occupied by j2.
	j3, err := a.Allocate(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range j3 {
		for _, b := range j2 {
			if n == b {
				t.Fatal("allocated a busy node")
			}
		}
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(Machine{Groups: 1, NodesPerGroup: 4}, 1)
	if _, err := a.Allocate(0); err == nil {
		t.Error("zero request accepted")
	}
	if _, err := a.Allocate(5); err == nil {
		t.Error("oversized request accepted")
	}
}

func TestGroupsOf(t *testing.T) {
	m := Machine{Groups: 3, NodesPerGroup: 4}
	a := NewAllocator(m, 1)
	nodes, _ := a.Allocate(6)
	groups := a.GroupsOf(nodes)
	want := []int{0, 0, 0, 0, 1, 1}
	for i, g := range want {
		if groups[i] != g {
			t.Fatalf("groups %v, want %v", groups, want)
		}
	}
	if (Job{Nodes: nodes, Groups: groups}).SpannedGroups() != 2 {
		t.Fatal("spanned groups")
	}
}

func TestWorkloadChurnsAndFragments(t *testing.T) {
	m := Machine{Groups: 24, NodesPerGroup: 124} // LUMI-like
	w := &Workload{
		A:        NewAllocator(m, 42),
		Sizes:    PowerOfTwoSizes(16, 1024),
		Lifetime: UniformLifetime(3, 40),
	}
	jobs := w.Run(500)
	if len(jobs) < 300 {
		t.Fatalf("only %d jobs placed", len(jobs))
	}
	w.Drain()
	if w.A.FreeNodes() != m.Nodes() {
		t.Fatalf("nodes leaked: %d free of %d", w.A.FreeNodes(), m.Nodes())
	}
	// Fragmentation signature: at least some jobs get non-contiguous
	// node sets.
	fragmented := 0
	bigJobs := 0
	for _, j := range jobs {
		contiguous := true
		for i := 1; i < len(j.Nodes); i++ {
			if j.Nodes[i] != j.Nodes[i-1]+1 {
				contiguous = false
				break
			}
		}
		if !contiguous {
			fragmented++
		}
		if len(j.Nodes) >= 256 {
			bigJobs++
		}
	}
	if fragmented == 0 {
		t.Error("workload produced no fragmented allocations")
	}
	if bigJobs == 0 {
		t.Error("workload produced no large jobs")
	}
	// Larger jobs span more groups (the paper's Fig. 5 driver).
	for _, j := range jobs {
		if len(j.Nodes) >= 512 && j.SpannedGroups() < 2 {
			t.Errorf("a %d-node job spans %d group(s)", len(j.Nodes), j.SpannedGroups())
		}
	}
}

func TestPowerOfTwoSizes(t *testing.T) {
	f := PowerOfTwoSizes(16, 256)
	a := NewAllocator(Machine{Groups: 1, NodesPerGroup: 1}, 9)
	for i := 0; i < 200; i++ {
		s := f(a.rng)
		if s < 16 || s > 256 || s&(s-1) != 0 {
			t.Fatalf("size %d", s)
		}
	}
}
