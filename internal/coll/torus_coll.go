package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Torus-optimized collectives (Appendix D): ranks are coordinates of a
// multidimensional torus and every communication moves along a single
// dimension, keeping hop counts minimal. Each dimension runs a 1-D
// collective over the Line sub-communicator of that dimension.

// TorusAllreduce performs the Appendix D Bine allreduce: a per-dimension
// reduce-scatter sweep (dimensions ascending) followed by the mirrored
// per-dimension allgather sweep. Every dimension size must be a power of
// two; the vector length must be a multiple of the total rank count.
func TorusAllreduce(c fabric.Comm, tor core.Torus, buf []int32, op Op) error {
	return torusAllreduce(c, tor, buf, op, identityOrder(tor.NDims()), false)
}

// torusAllreduce is the dimension-order/mirror parameterized core shared
// with the multi-ported variant. order lists the dimensions in processing
// sequence; mirror reverses every line, flipping the direction the Bine
// schedule walks around each ring (Appendix D.4's opposite-port planes).
func torusAllreduce(c fabric.Comm, tor core.Torus, buf []int32, op Op, order []int, mirror bool) error {
	p := tor.P()
	if c.Size() != p {
		return fmt.Errorf("coll: torus of %d ranks on a %d-rank communicator", p, c.Size())
	}
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	r := c.Rank()
	type phase struct {
		b      *core.Butterfly
		sub    fabric.Comm
		me     int
		seg    []int32
		lo, hi int
	}
	phases := make([]phase, 0, len(order))
	seg := buf
	for k, d := range order {
		qd := tor.Dims[d]
		if qd == 1 {
			continue
		}
		b, err := core.NewButterfly(core.BflyBineDD, qd)
		if err != nil {
			return fmt.Errorf("coll: torus dimension %d: %w", d, err)
		}
		line := tor.Line(r, d)
		if mirror {
			line = mirrorLine(line)
		}
		sub, err := Group(Offset(c, (k+1)*phaseStride), line)
		if err != nil {
			return err
		}
		if len(seg)%qd != 0 {
			return fmt.Errorf("coll: segment of %d elements not divisible by dimension %d (size %d)", len(seg), d, qd)
		}
		me := sub.Rank()
		lo, hi, err := rsContigPhase(&ctx{c: sub}, b, me, seg, op)
		if err != nil {
			return err
		}
		bs := len(seg) / qd
		phases = append(phases, phase{b: b, sub: sub, me: me, seg: seg, lo: lo, hi: hi})
		seg = seg[lo*bs : hi*bs]
	}
	for k := len(phases) - 1; k >= 0; k-- {
		ph := phases[k]
		ag := Offset(ph.sub, (len(order)+1)*phaseStride)
		if err := agContigPhase(&ctx{c: ag}, ph.b, ph.me, ph.seg, ph.lo, ph.hi); err != nil {
			return err
		}
	}
	return nil
}

// mirrorLine reverses the orientation of a ring line while keeping the same
// member at index 0 (so coordinates stay aligned across ranks of the line).
func mirrorLine(line []int) []int {
	out := make([]int, len(line))
	out[0] = line[0]
	for i := 1; i < len(line); i++ {
		out[i] = line[len(line)-i]
	}
	return out
}

func identityOrder(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

// TorusMultiportAllreduce exploits one NIC per torus direction (Appendix
// D.4): the vector is split into 2·D slices and 2·D allreduces run
// concurrently, each starting on a different dimension (rotated order) and
// direction (mirrored lines for the second half). Message tags share step
// numbers across planes — the planes genuinely overlap on the wire — and
// use disjoint sub windows.
func TorusMultiportAllreduce(c fabric.Comm, tor core.Torus, buf []int32, op Op) error {
	d := tor.NDims()
	planes := 2 * d
	p := tor.P()
	if len(buf)%(planes*p) != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d plane blocks", len(buf), planes*p)
	}
	sliceLen := len(buf) / planes
	for k := 0; k < planes; k++ {
		order := make([]int, d)
		for j := range order {
			order[j] = (k + j) % d
		}
		mirror := k >= d
		slice := buf[k*sliceLen : (k+1)*sliceLen]
		if err := torusAllreduce(SubShift(c, (k+1)*1024), tor, slice, op, order, mirror); err != nil {
			return fmt.Errorf("coll: multiport plane %d: %w", k, err)
		}
	}
	return nil
}

// BucketAllreduce is the torus-optimized Bucket baseline (Jain & Sabharwal,
// cited in Sec. 5): a multi-dimensional ring — per-dimension ring
// reduce-scatter sweeps followed by reversed ring allgather sweeps. It
// handles arbitrary dimension sizes.
func BucketAllreduce(c fabric.Comm, tor core.Torus, buf []int32, op Op) error {
	p := tor.P()
	if c.Size() != p {
		return fmt.Errorf("coll: torus of %d ranks on a %d-rank communicator", p, c.Size())
	}
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	r := c.Rank()
	d := tor.NDims()
	type phase struct {
		sub fabric.Comm
		seg []int32
		own []int32
	}
	phases := make([]phase, 0, d)
	seg := buf
	for k := 0; k < d; k++ {
		qd := tor.Dims[k]
		if qd == 1 {
			continue
		}
		line := tor.Line(r, k)
		sub, err := Group(Offset(c, (k+1)*phaseStride), line)
		if err != nil {
			return err
		}
		bs := len(seg) / qd
		own := seg[sub.Rank()*bs : (sub.Rank()+1)*bs]
		tmp := make([]int32, bs)
		if err := RingReduceScatter(sub, seg, tmp, op); err != nil {
			return err
		}
		copy(own, tmp)
		phases = append(phases, phase{sub: sub, seg: seg, own: own})
		seg = own
	}
	for k := len(phases) - 1; k >= 0; k-- {
		ph := phases[k]
		ag := Offset(ph.sub, (d+1)*phaseStride)
		if err := RingAllgather(ag, ph.own, ph.seg); err != nil {
			return err
		}
	}
	return nil
}

// TorusBcast broadcasts along one dimension at a time (Appendix D): after
// phase d, every rank whose trailing coordinates match the root's holds the
// vector; the final phase covers the whole torus.
func TorusBcast(c fabric.Comm, tor core.Torus, kind core.Kind, root int, buf []int32) error {
	p := tor.P()
	if c.Size() != p {
		return fmt.Errorf("coll: torus of %d ranks on a %d-rank communicator", p, c.Size())
	}
	r := c.Rank()
	my := tor.Coord(r)
	rc := tor.Coord(root)
	for d := 0; d < tor.NDims(); d++ {
		if tor.Dims[d] == 1 {
			continue
		}
		participates := true
		for j := d + 1; j < tor.NDims(); j++ {
			if my[j] != rc[j] {
				participates = false
				break
			}
		}
		if !participates {
			continue
		}
		sub, err := Group(Offset(c, (d+1)*phaseStride), tor.Line(r, d))
		if err != nil {
			return err
		}
		tree, err := core.NewTree(kind, tor.Dims[d], rc[d])
		if err != nil {
			return err
		}
		if err := Bcast(sub, tree, buf); err != nil {
			return err
		}
	}
	return nil
}

// TorusReduce reverses TorusBcast: per-dimension tree reductions walking the
// dimensions from last to first. out receives the result at the root.
func TorusReduce(c fabric.Comm, tor core.Torus, kind core.Kind, root int, in, out []int32, op Op) error {
	p := tor.P()
	if c.Size() != p {
		return fmt.Errorf("coll: torus of %d ranks on a %d-rank communicator", p, c.Size())
	}
	r := c.Rank()
	my := tor.Coord(r)
	rc := tor.Coord(root)
	if r == root && len(out) != len(in) {
		return fmt.Errorf("coll: reduce out has %d elements, want %d", len(out), len(in))
	}
	acc := append([]int32(nil), in...)
	for d := tor.NDims() - 1; d >= 0; d-- {
		if tor.Dims[d] == 1 {
			continue
		}
		participates := true
		for j := d + 1; j < tor.NDims(); j++ {
			if my[j] != rc[j] {
				participates = false
				break
			}
		}
		if !participates {
			continue
		}
		sub, err := Group(Offset(c, (d+1)*phaseStride), tor.Line(r, d))
		if err != nil {
			return err
		}
		tree, err := core.NewTree(kind, tor.Dims[d], rc[d])
		if err != nil {
			return err
		}
		res := make([]int32, len(acc))
		if err := Reduce(sub, tree, acc, res, op); err != nil {
			return err
		}
		if my[d] != rc[d] {
			return nil // contributed; not on the path to the root
		}
		acc = res
	}
	copy(out, acc)
	return nil
}
