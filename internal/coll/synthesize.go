package coll

import (
	"fmt"

	"binetrees/internal/fabric"
)

// Synthesizer is the capability a collective schedule exposes so its
// deterministic send pattern can be emitted without executing it on a
// fabric: Walk replays one rank's schedule body against a pattern-only
// endpoint (fabric.TraceBuilder's Comm), whose Sends are logged and whose
// Recvs complete immediately. Nearly every registered algorithm is
// data-independent — the (step, from, to, sub, elems) sequence a rank emits
// is a pure function of (p, root, n) — so walking the ranks one by one
// yields exactly the trace a concurrent recorded run would, without
// goroutines, mailboxes or payload traffic; the one exception (Bruck's
// alltoall) carries a Synth override that derives the same pattern by
// simulation. internal/synth drives the walk and merges the columns.
type Synthesizer interface {
	// Ranks returns the schedule's rank count.
	Ranks() int
	// Walk runs rank's schedule body against the pattern endpoint c (whose
	// Rank() is rank). It must emit the rank's sends in schedule order.
	Walk(rank int, c fabric.Comm) error
}

// Pattern returns a Synthesizer for the algorithm's schedule over p ranks
// with root root and n total vector elements. The per-rank runner is built
// once (Make caches tree/butterfly structures in its closure, exactly as a
// recording run would) and each Walk executes it on fresh zero buffers sized
// by the collective's InOutLens convention — matching the recording path,
// where vectors are all-zero and only send lengths reach the trace.
// Algorithms whose control flow reads received data carry a Synth override
// instead of walking the generic path.
func (a Algorithm) Pattern(p, root, n int) (Synthesizer, error) {
	if a.Synth != nil {
		return a.Synth(p, root, n)
	}
	run, err := a.Make(p, root)
	if err != nil {
		return nil, err
	}
	return &pattern{coll: a.Coll, run: run, p: p, root: root, n: n}, nil
}

type pattern struct {
	coll Collective
	run  RunFunc
	p    int
	root int
	n    int
}

func (s *pattern) Ranks() int { return s.p }

func (s *pattern) Walk(rank int, c fabric.Comm) error {
	inLen, outLen := s.coll.InOutLens(s.p, s.n)
	in := make([]int32, inLen)
	var out []int32
	if outLen > 0 {
		out = make([]int32, outLen)
	}
	return s.run(c, s.root, in, out, OpSum)
}

// bruckAlltoallPattern synthesizes BruckAlltoall's send pattern. Bruck is
// the registry's one data-dependent schedule: each step's message length is
// the count of held items whose remaining ring displacement has the step
// bit set, and a rank only learns its incoming count from a header message
// at runtime — so the generic zero-buffer walk cannot reproduce it. The
// counts are still pure schedule math (an item's hops depend only on its
// destination's displacement, never on payload), so a global simulation of
// item positions yields every rank's per-step send sizes up front.
func bruckAlltoallPattern(p, _, n int) (Synthesizer, error) {
	// held[r] lists the destinations of the items currently at rank r; each
	// rank starts holding one item per destination.
	held := make([][]int, p)
	for r := range held {
		for d := 0; d < p; d++ {
			held[r] = append(held[r], d)
		}
	}
	var moved [][]int32 // moved[step][rank] = items rank forwards that step
	for k := 1; k < p; k <<= 1 {
		row := make([]int32, p)
		next := make([][]int, p)
		for r := 0; r < p; r++ {
			to := (r + k) % p
			for _, d := range held[r] {
				if (mod(d-r, p)/k)%2 == 1 {
					row[r]++
					next[to] = append(next[to], d)
				} else {
					next[r] = append(next[r], d)
				}
			}
		}
		held = next
		moved = append(moved, row)
	}
	return &bruckPattern{p: p, n: n, moved: moved}, nil
}

type bruckPattern struct {
	p, n  int
	moved [][]int32
}

func (s *bruckPattern) Ranks() int { return s.p }

// Walk emits rank's sends exactly as BruckAlltoall does: per step, the item
// message — recorded even when empty — then the one-element count header
// (the runtime negotiation whose answer the simulation already knows).
func (s *bruckPattern) Walk(rank int, c fabric.Comm) error {
	p, n := s.p, s.n
	if n%p != 0 || n == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", n, p)
	}
	if p == 1 {
		return nil
	}
	bs := n / p
	var one [1]int32
	for step, k := 0, 1; k < p; step, k = step+1, k<<1 {
		to := (rank + k) % p
		var msg []int32
		if m := int(s.moved[step][rank]); m > 0 {
			msg = make([]int32, m*(bs+2))
		}
		if err := c.Send(to, step, 0, msg); err != nil {
			return err
		}
		if err := c.Send(to, step, 1, one[:]); err != nil {
			return err
		}
	}
	return nil
}
