package coll

import (
	"fmt"
	"testing"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

func TestFoldedAllreduceAnyP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 6, 7, 9, 12, 16, 21, 33} {
		for _, n := range []int{3, 4 * p} {
			want := expectedReduce(p, n, OpSum)
			runRanks(t, p, func(c fabric.Comm) error {
				buf := input(c.Rank(), n)
				if err := FoldedAllreduce(c, core.BflyBineDD, buf, OpSum); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("fold-allreduce p=%d n=%d rank=%d", p, n, c.Rank()), buf, want)
			})
		}
	}
}

func TestFoldedReduceScatterAnyP(t *testing.T) {
	for _, p := range []int{2, 3, 5, 6, 8, 12, 20} {
		bs := 3
		n := p * bs
		want := expectedReduce(p, n, OpSum)
		runRanks(t, p, func(c fabric.Comm) error {
			out := make([]int32, bs)
			if err := FoldedReduceScatter(c, core.BflyBineDD, Send, input(c.Rank(), n), out, OpSum); err != nil {
				return err
			}
			r := c.Rank()
			return eq(t, fmt.Sprintf("fold-rs p=%d rank=%d", p, r), out, want[r*bs:(r+1)*bs])
		})
	}
}

func TestFoldedAllgatherAnyP(t *testing.T) {
	for _, p := range []int{2, 3, 5, 6, 8, 12, 20} {
		bs := 4
		full := make([]int32, p*bs)
		for r := 0; r < p; r++ {
			copy(full[r*bs:], input(r, bs))
		}
		runRanks(t, p, func(c fabric.Comm) error {
			out := make([]int32, p*bs)
			if err := FoldedAllgather(c, core.BflyBineDD, Send, input(c.Rank(), bs), out); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("fold-ag p=%d rank=%d", p, c.Rank()), out, full)
		})
	}
}

func TestFoldedVolumeOverhead(t *testing.T) {
	// Appendix C notes the fold "doubles the total communication volume"
	// relative to an even-p execution; verify the folded ranks really pay
	// the extra full-vector exchange.
	p, n := 6, 12
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	if err := fabric.Run(rec, func(c fabric.Comm) error {
		return FoldedAllreduce(c, core.BflyBineDD, make([]int32, n), OpSum)
	}); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	// Two folded ranks send n pre-fold and receive n post-unfold: 4n extra
	// elements over the inner 4-rank allreduce.
	foldElems := int64(0)
	for _, m := range tr.Records() {
		if m.From >= 4 || m.To >= 4 {
			foldElems += int64(m.Elems)
		}
	}
	if foldElems != 4*int64(n) {
		t.Fatalf("fold volume %d, want %d", foldElems, 4*n)
	}
}

func TestPipelineBcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 16} {
		for _, segs := range []int{1, 3, 16} {
			for _, root := range []int{0, p - 1} {
				n := 24
				want := input(root, n)
				runRanks(t, p, func(c fabric.Comm) error {
					buf := make([]int32, n)
					if c.Rank() == root {
						copy(buf, want)
					}
					if err := PipelineBcast(c, root, buf, segs); err != nil {
						return err
					}
					return eq(t, fmt.Sprintf("pipeline p=%d segs=%d root=%d", p, segs, root), buf, want)
				})
			}
		}
	}
	// Invalid segment counts fail.
	runRanks(t, 2, func(c fabric.Comm) error {
		if err := PipelineBcast(c, 0, make([]int32, 4), 0); err == nil {
			return fmt.Errorf("zero segments accepted")
		}
		return nil
	})
}

func TestPipelineWavefrontOverlaps(t *testing.T) {
	// The pipelining signature: with s segments the trace has p−2+s steps
	// and interior steps carry multiple concurrent transfers.
	p, n, segs := 8, 64, 4
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	if err := fabric.Run(rec, func(c fabric.Comm) error {
		return PipelineBcast(c, 0, make([]int32, n), segs)
	}); err != nil {
		t.Fatal(err)
	}
	steps := rec.Trace().Steps()
	if len(steps) != p-2+segs {
		t.Fatalf("%d steps, want %d", len(steps), p-2+segs)
	}
	multi := 0
	for _, s := range steps {
		if len(s) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no overlapping wavefront steps")
	}
}
