package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Strategy selects how butterfly collectives handle the non-contiguous
// block sets of Bine distance-doubling schedules (Sec. 4.3.1).
type Strategy int

const (
	// BlockByBlock transmits every block as an independent message. More
	// per-message overhead, but maximal communication/computation overlap.
	BlockByBlock Strategy = iota
	// Permute first permutes the vector (block b to position
	// reverse(ν(b))) so every transmission is one contiguous range.
	Permute
	// Send transmits contiguous ranges as if the permutation had been
	// applied, then fixes ownership with one extra exchange (or lets a
	// paired collective undo it for free).
	Send
	// TwoTransmissions switches to the distance-halving butterfly, whose
	// block sets are circularly contiguous and need at most two messages.
	TwoTransmissions
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case BlockByBlock:
		return "block-by-block"
	case Permute:
		return "permute"
	case Send:
		return "send"
	case TwoTransmissions:
		return "two-transmissions"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all four variants of Sec. 4.3.1.
var Strategies = []Strategy{BlockByBlock, Permute, Send, TwoTransmissions}

// ReduceScatter reduces buf (p·bs elements) across all ranks and leaves the
// fully reduced block c.Rank() in out (bs elements). buf is not modified.
//
// The butterfly must match the strategy: TwoTransmissions requires a
// distance-halving Bine butterfly, the other strategies a distance-doubling
// one (or a binomial butterfly, for which every strategy degenerates to the
// classic contiguous recursive halving).
func ReduceScatter(c fabric.Comm, b *core.Butterfly, strat Strategy, buf, out []int32, op Op) error {
	if err := checkButterfly(c, b, len(buf)); err != nil {
		return err
	}
	bs := len(buf) / b.P
	if len(out) != bs {
		return fmt.Errorf("coll: reduce-scatter out has %d elements, want %d", len(out), bs)
	}
	if b.P == 1 {
		copy(out, buf)
		return nil
	}
	switch strat {
	case BlockByBlock:
		return rsBlockByBlock(c, b, buf, out, op)
	case TwoTransmissions:
		return rsRuns(c, b, buf, out, op)
	case Permute, Send:
		return rsContig(c, b, strat, buf, out, op)
	}
	return fmt.Errorf("coll: unknown strategy %v", strat)
}

// Allgather distributes each rank's in block (bs elements) to every rank:
// out (p·bs elements) ends with rank i's block at position i, on all ranks.
// The schedule is the exact reverse of the matching ReduceScatter, as in
// Sec. 4.3 ("for the allgather, it is enough to reverse the reduce-scatter
// communication pattern").
func Allgather(c fabric.Comm, b *core.Butterfly, strat Strategy, in, out []int32) error {
	if err := checkButterfly(c, b, len(out)); err != nil {
		return err
	}
	bs := len(out) / b.P
	if len(in) != bs {
		return fmt.Errorf("coll: allgather in has %d elements, want %d", len(in), bs)
	}
	if b.P == 1 {
		copy(out, in)
		return nil
	}
	switch strat {
	case BlockByBlock:
		return agBlockByBlock(c, b, in, out)
	case TwoTransmissions:
		return agRuns(c, b, in, out)
	case Permute, Send:
		return agContig(c, b, strat, in, out)
	}
	return fmt.Errorf("coll: unknown strategy %v", strat)
}

// AllreduceRecDoubling is the small-vector allreduce: at every step the full
// vector is exchanged with the butterfly partner and reduced (Sec. 4.4).
func AllreduceRecDoubling(c fabric.Comm, b *core.Butterfly, buf []int32, op Op) error {
	if c.Size() != b.P {
		return fmt.Errorf("coll: butterfly over %d ranks on a %d-rank communicator", b.P, c.Size())
	}
	x := &ctx{c: c}
	r := c.Rank()
	tmp := make([]int32, len(buf))
	for i := 0; i < b.S; i++ {
		x.exchange(b.Partner(r, i), i, 0, buf, tmp)
		if x.err != nil {
			return x.err
		}
		op.Apply(buf, tmp)
	}
	return nil
}

// AllreduceRsAg is the large-vector allreduce: a reduce-scatter immediately
// followed by the mirrored allgather (Sec. 4.4). For Bine butterflies both
// phases run in permuted position space with no data movement at either
// end — every transmission is one contiguous range, which is the paper's
// key advantage over Swing (Sec. 5.2.2). The vector length must be a
// multiple of the rank count.
func AllreduceRsAg(c fabric.Comm, b *core.Butterfly, buf []int32, op Op) error {
	if err := checkButterfly(c, b, len(buf)); err != nil {
		return err
	}
	if b.P == 1 {
		return nil
	}
	// Phase 1: reduce-scatter over raw positions ("send" mode without the
	// ownership fix-up: position q accumulates the full reduction of
	// whatever block sits at index q, namely block q).
	lo, hi, err := rsContigPhase(&ctx{c: c}, b, c.Rank(), buf, op)
	if err != nil {
		return err
	}
	// Phase 2: allgather by running the same schedule backwards; the
	// growing ranges restore every position, so buf ends fully reduced and
	// in its original order on every rank.
	return agContigPhase(&ctx{c: Offset(c, phaseStride)}, b, c.Rank(), buf, lo, hi)
}

// rsContigPhase runs a contiguous-range reduce-scatter over seg (p·bs
// elements, in raw position space) and returns the owned position range
// [lo, hi) with hi−lo == 1. Used by AllreduceRsAg and the per-dimension
// torus collectives.
func rsContigPhase(x *ctx, b *core.Butterfly, r int, seg []int32, op Op) (lo, hi int, err error) {
	bs := len(seg) / b.P
	lo, hi = 0, b.P
	tmp := make([]int32, len(seg)/2)
	for i := 0; i < b.S; i++ {
		slo, shi, klo, khi, err := splitRanges(b, r, i, lo, hi)
		if err != nil {
			return 0, 0, err
		}
		recv := tmp[:(khi-klo)*bs]
		x.exchange(b.Partner(r, i), i, 0, seg[slo*bs:shi*bs], recv)
		if x.err != nil {
			return 0, 0, x.err
		}
		op.Apply(seg[klo*bs:khi*bs], recv)
		lo, hi = klo, khi
	}
	return lo, hi, nil
}

// agContigPhase reverses rsContigPhase, growing the owned position range
// [lo, hi) back to the whole of seg on every rank.
func agContigPhase(x *ctx, b *core.Butterfly, r int, seg []int32, lo, hi int) error {
	bs := len(seg) / b.P
	for i := 0; i < b.S; i++ {
		j := b.S - 1 - i
		plo, phi, err := keepRange(b, r, j-1)
		if err != nil {
			return err
		}
		q := b.Partner(r, j)
		var olo, ohi int
		if lo == plo {
			olo, ohi = hi, phi
		} else {
			olo, ohi = plo, lo
		}
		x.exchange(q, i, 0, seg[lo*bs:hi*bs], seg[olo*bs:ohi*bs])
		if x.err != nil {
			return x.err
		}
		lo, hi = plo, phi
	}
	return nil
}

func checkButterfly(c fabric.Comm, b *core.Butterfly, n int) error {
	if c.Size() != b.P {
		return fmt.Errorf("coll: butterfly over %d ranks on a %d-rank communicator", b.P, c.Size())
	}
	if n%b.P != 0 || n == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", n, b.P)
	}
	return nil
}

// splitRanges maps rank r's step-i send and keep sets to contiguous
// permuted-position ranges and checks they exactly partition [lo, hi).
func splitRanges(b *core.Butterfly, r, i, lo, hi int) (slo, shi, klo, khi int, err error) {
	slo, shi, err = posRange(b, sendBlocksOf(b, r, i))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	switch {
	case slo == lo:
		klo, khi = shi, hi
	case shi == hi:
		klo, khi = lo, slo
	default:
		return 0, 0, 0, 0, fmt.Errorf("coll: send range [%d,%d) not a prefix/suffix of [%d,%d)", slo, shi, lo, hi)
	}
	return slo, shi, klo, khi, nil
}

// keepRange returns the contiguous position range owned after step i
// (i = −1 means the whole vector).
func keepRange(b *core.Butterfly, r, i int) (lo, hi int, err error) {
	if i < 0 {
		return 0, b.P, nil
	}
	return posRange(b, keepBlocksOf(b, r, i))
}

// posRange maps blocks to permuted positions and requires them to be one
// contiguous non-wrapping range.
func posRange(b *core.Butterfly, blks []int) (lo, hi int, err error) {
	lo, hi = b.P, -1
	for _, blk := range blks {
		pos := b.PermutedPosition(blk)
		if pos < lo {
			lo = pos
		}
		if pos > hi {
			hi = pos
		}
	}
	if hi-lo+1 != len(blks) {
		return 0, 0, fmt.Errorf("coll: %d blocks span positions [%d,%d]", len(blks), lo, hi)
	}
	return lo, hi + 1, nil
}

// sendBlocksOf and keepBlocksOf dispatch between the cached Bine offset sets
// and the binomial bit sets.
func sendBlocksOf(b *core.Butterfly, r, i int) []int {
	if b.Kind.IsBine() {
		return b.SendBlocks(r, i)
	}
	return b.SendSet(r, i)
}

func keepBlocksOf(b *core.Butterfly, r, i int) []int {
	if b.Kind.IsBine() {
		return b.KeepBlocks(r, i)
	}
	return b.KeepSet(r, i)
}

// rsContig is the permute/send reduce-scatter: one contiguous transmission
// per step in permuted position space.
func rsContig(c fabric.Comm, b *core.Butterfly, strat Strategy, buf, out []int32, op Op) error {
	r := c.Rank()
	bs := len(buf) / b.P
	pbuf := make([]int32, len(buf))
	if strat == Permute {
		for blk := 0; blk < b.P; blk++ {
			copy(pbuf[b.PermutedPosition(blk)*bs:], buf[blk*bs:(blk+1)*bs])
		}
	} else {
		copy(pbuf, buf)
	}
	x := &ctx{c: c}
	lo, hi := 0, b.P
	tmp := make([]int32, len(buf)/2)
	for i := 0; i < b.S; i++ {
		slo, shi, klo, khi, err := splitRanges(b, r, i, lo, hi)
		if err != nil {
			return err
		}
		recv := tmp[:(khi-klo)*bs]
		x.exchange(b.Partner(r, i), i, 0, pbuf[slo*bs:shi*bs], recv)
		if x.err != nil {
			return x.err
		}
		op.Apply(pbuf[klo*bs:khi*bs], recv)
		lo, hi = klo, khi
	}
	if hi-lo != 1 {
		return fmt.Errorf("coll: reduce-scatter ended owning %d positions", hi-lo)
	}
	if strat == Permute {
		// Position reverse(ν(r)) holds block r.
		copy(out, pbuf[lo*bs:hi*bs])
		return nil
	}
	// Send: the surviving position holds block `lo`, owned by rank `lo`;
	// one final exchange restores ownership (Sec. 4.3.1).
	if lo == r {
		copy(out, pbuf[lo*bs:hi*bs])
		return nil
	}
	x.send(lo, b.S, 0, pbuf[lo*bs:hi*bs])
	from := b.PermutedInverse(r) // the rank whose surviving position is r
	x.recv(from, b.S, 0, out)
	return x.err
}

// rsBlockByBlock transmits each block of the send set as its own message.
func rsBlockByBlock(c fabric.Comm, b *core.Butterfly, buf, out []int32, op Op) error {
	r := c.Rank()
	bs := len(buf) / b.P
	w := append([]int32(nil), buf...)
	x := &ctx{c: c}
	tmp := make([]int32, bs)
	for i := 0; i < b.S; i++ {
		q := b.Partner(r, i)
		for sub, blk := range sendBlocksOf(b, r, i) {
			x.send(q, i, sub, w[blk*bs:(blk+1)*bs])
		}
		for sub, blk := range sendBlocksOf(b, q, i) {
			x.recv(q, i, sub, tmp)
			if x.err != nil {
				return x.err
			}
			op.Apply(w[blk*bs:(blk+1)*bs], tmp)
		}
	}
	copy(out, w[r*bs:(r+1)*bs])
	return x.err
}

// rsRuns is the two-transmissions reduce-scatter over the distance-halving
// butterfly: send sets are at most two circularly contiguous block runs.
func rsRuns(c fabric.Comm, b *core.Butterfly, buf, out []int32, op Op) error {
	r := c.Rank()
	bs := len(buf) / b.P
	w := append([]int32(nil), buf...)
	x := &ctx{c: c}
	tmp := make([]int32, len(buf)/2)
	for i := 0; i < b.S; i++ {
		q := b.Partner(r, i)
		for sub, run := range core.CircRuns(b.SendSet(r, i), b.P) {
			x.send(q, i, sub, gatherRun(w, run, bs, b.P))
		}
		for sub, run := range core.CircRuns(b.SendSet(q, i), b.P) {
			recv := tmp[:run.Len*bs]
			x.recv(q, i, sub, recv)
			if x.err != nil {
				return x.err
			}
			for k, blk := range run.Members(b.P) {
				op.Apply(w[blk*bs:(blk+1)*bs], recv[k*bs:(k+1)*bs])
			}
		}
	}
	copy(out, w[r*bs:(r+1)*bs])
	return x.err
}

// gatherRun concatenates a circular run of blocks into one contiguous
// payload (the sender-side staging copy the strategy implies).
func gatherRun(w []int32, run core.CircRange, bs, p int) []int32 {
	if run.Start+run.Len <= p {
		return w[run.Start*bs : (run.Start+run.Len)*bs]
	}
	out := make([]int32, 0, run.Len*bs)
	for _, blk := range run.Members(p) {
		out = append(out, w[blk*bs:(blk+1)*bs]...)
	}
	return out
}

// agContig is the permute/send allgather (reversed contiguous schedule).
func agContig(c fabric.Comm, b *core.Butterfly, strat Strategy, in, out []int32) error {
	r := c.Rank()
	bs := len(in)
	pbuf := out // build the position-space vector in place
	x := &ctx{c: c}
	pos := b.PermutedPosition(r)
	if strat == Send {
		// Pre-exchange (Sec. 4.3.1): seed position reverse(ν(r)) with block
		// reverse(ν(r)) so no terminal permutation is needed.
		t := b.PermutedInverse(r) // the rank whose seed position is block r
		if t == r {
			copy(pbuf[pos*bs:], in)
		} else {
			x.send(t, b.S, 0, in)
			x.recv(pos, b.S, 0, pbuf[pos*bs:(pos+1)*bs])
		}
	} else {
		copy(pbuf[pos*bs:], in)
	}
	lo, hi := pos, pos+1
	for i := 0; i < b.S; i++ {
		j := b.S - 1 - i
		plo, phi, err := keepRange(b, r, j-1)
		if err != nil {
			return err
		}
		q := b.Partner(r, j)
		var olo, ohi int
		if lo == plo {
			olo, ohi = hi, phi
		} else {
			olo, ohi = plo, lo
		}
		x.exchange(q, i, 0, pbuf[lo*bs:hi*bs], pbuf[olo*bs:ohi*bs])
		if x.err != nil {
			return x.err
		}
		lo, hi = plo, phi
	}
	if x.err != nil {
		return x.err
	}
	if strat == Permute {
		// Terminal permutation: position reverse(ν(b)) holds block b.
		tmp := append([]int32(nil), pbuf...)
		for blk := 0; blk < b.P; blk++ {
			copy(out[blk*bs:], tmp[b.PermutedPosition(blk)*bs:(b.PermutedPosition(blk)+1)*bs])
		}
	}
	return nil
}

// agBlockByBlock reverses rsBlockByBlock: at step i (reverse step j) each
// rank forwards the blocks its partner is missing, one message per block.
func agBlockByBlock(c fabric.Comm, b *core.Butterfly, in, out []int32) error {
	r := c.Rank()
	bs := len(in)
	copy(out[r*bs:], in)
	x := &ctx{c: c}
	for i := 0; i < b.S; i++ {
		j := b.S - 1 - i
		q := b.Partner(r, j)
		for sub, blk := range sendBlocksOf(b, q, j) {
			x.send(q, i, sub, out[blk*bs:(blk+1)*bs])
		}
		for sub, blk := range sendBlocksOf(b, r, j) {
			x.recv(q, i, sub, out[blk*bs:(blk+1)*bs])
		}
		if x.err != nil {
			return x.err
		}
	}
	return nil
}

// agRuns reverses rsRuns over the distance-halving butterfly.
func agRuns(c fabric.Comm, b *core.Butterfly, in, out []int32) error {
	r := c.Rank()
	bs := len(in)
	p := b.P
	copy(out[r*bs:], in)
	x := &ctx{c: c}
	for i := 0; i < b.S; i++ {
		j := b.S - 1 - i
		q := b.Partner(r, j)
		for sub, run := range core.CircRuns(b.SendSet(q, j), p) {
			x.send(q, i, sub, gatherRun(out, run, bs, p))
		}
		for sub, run := range core.CircRuns(b.SendSet(r, j), p) {
			recv := make([]int32, run.Len*bs)
			x.recv(q, i, sub, recv)
			if x.err != nil {
				return x.err
			}
			for k, blk := range run.Members(p) {
				copy(out[blk*bs:(blk+1)*bs], recv[k*bs:(k+1)*bs])
			}
		}
	}
	return x.err
}
