package coll

import (
	"fmt"

	"binetrees/internal/fabric"
)

// Pipelined broadcasts: the chain and pipeline baselines Open MPI offers
// alongside the binomial tree. The vector is cut into segments that flow
// down a chain of ranks as a wavefront; segment s crosses hop h at step
// s+h, so in the cost model the transfers of one diagonal are concurrent —
// the classic pipelining effect that hides the chain's linear depth for
// large vectors.

// DefaultSegments is the segment count used by the pipelined broadcast
// variants when the vector allows it.
const DefaultSegments = 16

// PipelineBcast broadcasts buf from root down the chain
// root, root+1, …, root−1 (ring order) in segments.
func PipelineBcast(c fabric.Comm, root int, buf []int32, segments int) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	if segments < 1 {
		return fmt.Errorf("coll: pipeline with %d segments", segments)
	}
	if segments > len(buf) {
		segments = len(buf)
	}
	if segments == 0 {
		segments = 1
	}
	r := c.Rank()
	rel := mod(r-root, p)
	x := &ctx{c: c}
	next := (r + 1) % p
	prev := mod(r-1, p)
	for s := 0; s < segments; s++ {
		lo := len(buf) * s / segments
		hi := len(buf) * (s + 1) / segments
		step := s + rel // wavefront diagonal
		if rel > 0 {
			x.recv(prev, step-1, 0, buf[lo:hi])
		}
		if rel < p-1 {
			x.send(next, step, 0, buf[lo:hi])
		}
		if x.err != nil {
			return x.err
		}
	}
	return nil
}

// ChainBcast is the unsegmented degenerate chain (one hop per step); it
// exists as the latency-worst baseline the pipeline improves on.
func ChainBcast(c fabric.Comm, root int, buf []int32) error {
	return PipelineBcast(c, root, buf, 1)
}
