package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Composite large-vector collectives (Sec. 4.5): broadcast as scatter +
// allgather and reduce as reduce-scatter + gather, in both Bine and
// binomial flavours. Composites run on a rotated communicator so the
// tree/butterfly root is always logical rank 0; block order is preserved
// end to end.

// rotated returns a view of c in which global rank root becomes rank 0.
func rotated(c fabric.Comm, root int) (fabric.Comm, error) {
	p := c.Size()
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = (root + i) % p
	}
	return Group(c, ranks)
}

// BcastScatterAllgather is the large-vector broadcast: scatter down a tree,
// then allgather over a butterfly (Sec. 4.5 for Bine; the MPICH
// scatter+allgather broadcast when given binomial kinds). The vector length
// must be a multiple of the rank count.
func BcastScatterAllgather(c fabric.Comm, treeKind core.Kind, bflyKind core.ButterflyKind, strat Strategy, root int, buf []int32) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	rc, err := rotated(c, root)
	if err != nil {
		return err
	}
	tree, err := core.NewTree(treeKind, p, 0)
	if err != nil {
		return err
	}
	bfly, err := core.NewButterfly(bflyKind, p)
	if err != nil {
		return err
	}
	bs := len(buf) / p
	own := make([]int32, bs)
	if err := Scatter(rc, tree, buf, own); err != nil {
		return err
	}
	return Allgather(Offset(rc, phaseStride), bfly, strat, own, buf)
}

// ReduceRsGather is the large-vector reduce: butterfly reduce-scatter, then
// tree gather to the root (Sec. 4.5). in is unmodified; out is the fully
// reduced vector at the root.
func ReduceRsGather(c fabric.Comm, bflyKind core.ButterflyKind, treeKind core.Kind, strat Strategy, root int, in, out []int32, op Op) error {
	p := c.Size()
	if len(in)%p != 0 || len(in) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(in), p)
	}
	rc, err := rotated(c, root)
	if err != nil {
		return err
	}
	bfly, err := core.NewButterfly(bflyKind, p)
	if err != nil {
		return err
	}
	tree, err := core.NewTree(treeKind, p, 0)
	if err != nil {
		return err
	}
	bs := len(in) / p
	own := make([]int32, bs)
	if err := ReduceScatter(rc, bfly, strat, in, own, op); err != nil {
		return err
	}
	return Gather(Offset(rc, phaseStride), tree, own, out)
}

// HierarchicalAllreduce is the Sec. 6.2 multi-GPU schedule: an intra-node
// reduce-scatter among the ranksPerNode ranks of each node, an inter-node
// Bine allreduce among ranks with equal local id, and an intra-node
// allgather. Node membership is contiguous: node i owns ranks
// [i·ranksPerNode, (i+1)·ranksPerNode).
func HierarchicalAllreduce(c fabric.Comm, ranksPerNode int, bflyKind core.ButterflyKind, buf []int32, op Op) error {
	p := c.Size()
	if ranksPerNode <= 0 || p%ranksPerNode != 0 {
		return fmt.Errorf("coll: %d ranks not divisible into nodes of %d", p, ranksPerNode)
	}
	nodes := p / ranksPerNode
	if len(buf)%ranksPerNode != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d node blocks", len(buf), ranksPerNode)
	}
	r := c.Rank()
	node, local := r/ranksPerNode, r%ranksPerNode
	nodeRanks := make([]int, ranksPerNode)
	for i := range nodeRanks {
		nodeRanks[i] = node*ranksPerNode + i
	}
	peerRanks := make([]int, nodes)
	for i := range peerRanks {
		peerRanks[i] = i*ranksPerNode + local
	}
	intra, err := Group(c, nodeRanks)
	if err != nil {
		return err
	}
	inter, err := Group(Offset(c, phaseStride), peerRanks)
	if err != nil {
		return err
	}
	intraBfly, err := core.NewButterfly(core.BflyBinomialDH, ranksPerNode)
	if err != nil {
		return err
	}
	// Phase 1: intra-node reduce-scatter (GPUs are fully connected, so the
	// classic halving butterfly is already optimal locally).
	bs := len(buf) / ranksPerNode
	slice := make([]int32, bs)
	if err := ReduceScatter(intra, intraBfly, Permute, buf, slice, op); err != nil {
		return err
	}
	// Phase 2: inter-node Bine allreduce on the owned slice.
	if nodes > 1 {
		interBfly, err := core.NewButterfly(bflyKind, nodes)
		if err != nil {
			return err
		}
		if bs%nodes == 0 {
			if err := AllreduceRsAg(inter, interBfly, slice, op); err != nil {
				return err
			}
		} else if err := AllreduceRecDoubling(inter, interBfly, slice, op); err != nil {
			return err
		}
	}
	// Phase 3: intra-node allgather reassembles the full vector.
	return Allgather(Offset(intra, 2*phaseStride), intraBfly, Permute, slice, buf)
}

// AllreduceReduceBcast is the naive baseline: reduce to rank 0, then
// broadcast.
func AllreduceReduceBcast(c fabric.Comm, treeKind core.Kind, buf []int32, op Op) error {
	p := c.Size()
	tree, err := core.NewTree(treeKind, p, 0)
	if err != nil {
		return err
	}
	out := buf
	if c.Rank() == 0 {
		out = make([]int32, len(buf))
	}
	if err := Reduce(c, tree, buf, out, op); err != nil {
		return err
	}
	if c.Rank() == 0 {
		copy(buf, out)
	}
	return Bcast(Offset(c, phaseStride), tree, buf)
}
