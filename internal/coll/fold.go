package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Appendix C fold: butterfly collectives on non-power-of-two rank counts.
// The classic technique the paper describes for butterflies: the last
// p − p' ranks (p' = 2^⌊log2 p⌋) fold their contribution onto the first
// p − p' ranks, the power-of-two collective runs among the first p' ranks,
// and the result unfolds back. This doubles the transferred volume for the
// folded ranks — exactly the overhead the paper notes — which is why the
// even-p duplicate-prune construction is preferred for trees.

// FoldedAllreduce runs an allreduce over any rank count: extras fold in,
// the inner power-of-two Bine allreduce runs, and results unfold.
func FoldedAllreduce(c fabric.Comm, kind core.ButterflyKind, buf []int32, op Op) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	if _, pow2 := core.Log2(p); pow2 {
		return allreduceAuto(c, kind, buf, op)
	}
	pp := 1 << uint(core.Log2Floor(p))
	extra := p - pp
	r := c.Rank()
	x := &ctx{c: c}
	if r >= pp {
		// Fold: contribute the whole vector to the partner, then wait for
		// the final result.
		x.send(r-pp, 0, 0, buf)
		x.recv(r-pp, 1, 0, buf)
		return x.err
	}
	if r < extra {
		tmp := make([]int32, len(buf))
		x.recv(r+pp, 0, 0, tmp)
		if x.err != nil {
			return x.err
		}
		op.Apply(buf, tmp)
	}
	inner, err := Group(Offset(c, phaseStride), firstRanks(pp))
	if err != nil {
		return err
	}
	if err := allreduceAuto(inner, kind, buf, op); err != nil {
		return err
	}
	if r < extra {
		x.send(r+pp, 1, 0, buf)
	}
	return x.err
}

// allreduceAuto picks the bandwidth-optimal reduce-scatter+allgather when
// the vector divides evenly, falling back to recursive doubling.
func allreduceAuto(c fabric.Comm, kind core.ButterflyKind, buf []int32, op Op) error {
	b, err := core.NewButterfly(kind, c.Size())
	if err != nil {
		return err
	}
	if len(buf) >= c.Size() && len(buf)%c.Size() == 0 {
		return AllreduceRsAg(c, b, buf, op)
	}
	return AllreduceRecDoubling(c, b, buf, op)
}

// FoldedReduceScatter runs a reduce-scatter over any rank count. The inner
// power-of-two phase reduce-scatters whole fold-group shares; a final
// scatter step distributes each share's blocks to the folded ranks.
func FoldedReduceScatter(c fabric.Comm, kind core.ButterflyKind, strat Strategy, buf, out []int32, op Op) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	if _, pow2 := core.Log2(p); pow2 {
		b, err := core.NewButterfly(kind, p)
		if err != nil {
			return err
		}
		return ReduceScatter(c, b, strat, buf, out, op)
	}
	bs := len(buf) / p
	if len(out) != bs {
		return fmt.Errorf("coll: reduce-scatter out has %d elements, want %d", len(out), bs)
	}
	pp := 1 << uint(core.Log2Floor(p))
	extra := p - pp
	r := c.Rank()
	x := &ctx{c: c}
	w := buf
	if r >= pp {
		x.send(r-pp, 0, 0, buf)
		x.recv(r-pp, 1, 0, out)
		return x.err
	}
	if r < extra {
		w = append([]int32(nil), buf...)
		tmp := make([]int32, len(buf))
		x.recv(r+pp, 0, 0, tmp)
		if x.err != nil {
			return x.err
		}
		op.Apply(w, tmp)
	}
	// Inner phase: p' ranks, p' shares. Share i covers the original blocks
	// of inner rank i plus (for i < extra) those of folded rank i+p'.
	shareLen := 2 * bs
	share := make([]int32, shareLen)
	inner, err := Group(Offset(c, phaseStride), firstRanks(pp))
	if err != nil {
		return err
	}
	b, err := core.NewButterfly(kind, pp)
	if err != nil {
		return err
	}
	// Repack: inner share i = [block i, block i+p' (zero-padded when absent)].
	packed := make([]int32, pp*shareLen)
	for i := 0; i < pp; i++ {
		copy(packed[i*shareLen:], w[i*bs:(i+1)*bs])
		if i < extra {
			copy(packed[i*shareLen+bs:], w[(i+pp)*bs:(i+pp+1)*bs])
		}
	}
	if err := ReduceScatter(inner, b, strat, packed, share, op); err != nil {
		return err
	}
	copy(out, share[:bs])
	if r < extra {
		x.send(r+pp, 1, 0, share[bs:])
	}
	return x.err
}

// FoldedAllgather runs an allgather over any rank count: folded ranks seed
// their block through their partner, which contributes a doubled share to
// the inner power-of-two allgather and forwards the assembled vector back.
func FoldedAllgather(c fabric.Comm, kind core.ButterflyKind, strat Strategy, in, out []int32) error {
	p := c.Size()
	bs := len(in)
	if len(out) != p*bs {
		return fmt.Errorf("coll: allgather out has %d elements, want %d", len(out), p*bs)
	}
	if _, pow2 := core.Log2(p); pow2 {
		b, err := core.NewButterfly(kind, p)
		if err != nil {
			return err
		}
		return Allgather(c, b, strat, in, out)
	}
	pp := 1 << uint(core.Log2Floor(p))
	extra := p - pp
	r := c.Rank()
	x := &ctx{c: c}
	if r >= pp {
		x.send(r-pp, 0, 0, in)
		x.recv(r-pp, 1, 0, out)
		return x.err
	}
	share := make([]int32, 2*bs)
	copy(share, in)
	if r < extra {
		x.recv(r+pp, 0, 0, share[bs:])
		if x.err != nil {
			return x.err
		}
	}
	inner, err := Group(Offset(c, phaseStride), firstRanks(pp))
	if err != nil {
		return err
	}
	b, err := core.NewButterfly(kind, pp)
	if err != nil {
		return err
	}
	packed := make([]int32, pp*2*bs)
	if err := Allgather(inner, b, strat, share, packed); err != nil {
		return err
	}
	// Unpack shares into rank order.
	for i := 0; i < pp; i++ {
		copy(out[i*bs:(i+1)*bs], packed[i*2*bs:])
		if i < extra {
			copy(out[(i+pp)*bs:(i+pp+1)*bs], packed[i*2*bs+bs:])
		}
	}
	if r < extra {
		x.send(r+pp, 1, 0, out)
	}
	return x.err
}

func firstRanks(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}
