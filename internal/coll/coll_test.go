package coll

import (
	"fmt"
	"sync"
	"testing"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// input deterministically generates rank r's n-element input vector.
func input(r, n int) []int32 {
	v := make([]int32, n)
	for i := range v {
		v[i] = int32((r+1)*1000003%997 + i*31 + r*7)
	}
	return v
}

// expectedReduce returns the elementwise reduction of all ranks' inputs.
func expectedReduce(p, n int, op Op) []int32 {
	acc := input(0, n)
	for r := 1; r < p; r++ {
		op.Apply(acc, input(r, n))
	}
	return acc
}

// runRanks executes fn for every rank of a fresh Mem fabric and fails the
// test on any error.
func runRanks(t *testing.T, p int, fn func(c fabric.Comm) error) {
	t.Helper()
	f := fabric.NewMem(p)
	defer f.Close()
	if err := fabric.Run(f, fn); err != nil {
		t.Fatal(err)
	}
}

func eq(t *testing.T, tag string, got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: element %d is %d, want %d", tag, i, got[i], want[i])
		}
	}
	return nil
}

var treeKinds = []core.Kind{core.BineDH, core.BineDD, core.BinomialDD, core.BinomialDH}

func TestBcastAllKindsAllRoots(t *testing.T) {
	for _, kind := range treeKinds {
		for _, p := range []int{1, 2, 4, 8, 16, 64, 6, 10, 12, 7, 9} {
			roots := []int{0}
			if p > 1 {
				roots = append(roots, 1, p-1)
			}
			for _, root := range roots {
				tree, err := core.NewTree(kind, p, root)
				if err != nil {
					t.Fatal(err)
				}
				n := 33
				want := input(root, n)
				runRanks(t, p, func(c fabric.Comm) error {
					buf := make([]int32, n)
					if c.Rank() == root {
						copy(buf, want)
					}
					if err := Bcast(c, tree, buf); err != nil {
						return err
					}
					return eq(t, fmt.Sprintf("%v p=%d root=%d rank=%d", kind, p, root, c.Rank()), buf, want)
				})
			}
		}
	}
}

func TestReduceAllKinds(t *testing.T) {
	ops := []Op{OpSum, OpMax, OpBXor}
	for _, kind := range treeKinds {
		for _, p := range []int{1, 2, 8, 16, 6, 12, 9} {
			for _, op := range ops {
				tree, err := core.NewTree(kind, p, 0)
				if err != nil {
					t.Fatal(err)
				}
				n := 17
				want := expectedReduce(p, n, op)
				runRanks(t, p, func(c fabric.Comm) error {
					in := input(c.Rank(), n)
					var out []int32
					if c.Rank() == 0 {
						out = make([]int32, n)
					}
					if err := Reduce(c, tree, in, out, op); err != nil {
						return err
					}
					if c.Rank() != 0 {
						return nil
					}
					return eq(t, fmt.Sprintf("%v p=%d op=%s", kind, p, op.Name), out, want)
				})
			}
		}
	}
}

func TestReduceArbitraryRoot(t *testing.T) {
	p, root, n := 16, 5, 8
	tree := core.MustTree(core.BineDH, p, root)
	want := expectedReduce(p, n, OpSum)
	runRanks(t, p, func(c fabric.Comm) error {
		out := make([]int32, n)
		if err := Reduce(c, tree, input(c.Rank(), n), out, OpSum); err != nil {
			return err
		}
		if c.Rank() != root {
			return nil
		}
		return eq(t, "reduce root=5", out, want)
	})
}

func TestGatherScatterAllKinds(t *testing.T) {
	for _, kind := range treeKinds {
		for _, p := range []int{1, 2, 4, 8, 32, 6, 10, 9} {
			for _, root := range []int{0, p / 2} {
				tree, err := core.NewTree(kind, p, root)
				if err != nil {
					t.Fatal(err)
				}
				bs := 5
				full := make([]int32, p*bs)
				for r := 0; r < p; r++ {
					copy(full[r*bs:], input(r, bs))
				}
				runRanks(t, p, func(c fabric.Comm) error {
					r := c.Rank()
					var out []int32
					if r == root {
						out = make([]int32, p*bs)
					}
					if err := Gather(c, tree, input(r, bs), out); err != nil {
						return err
					}
					if r == root {
						if err := eq(t, fmt.Sprintf("gather %v p=%d root=%d", kind, p, root), out, full); err != nil {
							return err
						}
					}
					// Scatter back on a fresh tag window.
					own := make([]int32, bs)
					if err := Scatter(Offset(c, 4096), tree, full, own); err != nil {
						return err
					}
					return eq(t, fmt.Sprintf("scatter %v p=%d root=%d rank=%d", kind, p, root, r), own, input(r, bs))
				})
			}
		}
	}
}

func butterfliesFor(strat Strategy) []core.ButterflyKind {
	if strat == TwoTransmissions {
		return []core.ButterflyKind{core.BflyBineDH, core.BflyBinomialDH, core.BflyBinomialDD}
	}
	return []core.ButterflyKind{core.BflyBineDD, core.BflySwing, core.BflyBinomialDH, core.BflyBinomialDD}
}

func TestReduceScatterAllStrategies(t *testing.T) {
	for _, strat := range Strategies {
		for _, kind := range butterfliesFor(strat) {
			for _, p := range []int{1, 2, 4, 8, 16, 64} {
				b, err := core.NewButterfly(kind, p)
				if err != nil {
					t.Fatal(err)
				}
				bs := 3
				want := expectedReduce(p, p*bs, OpSum)
				runRanks(t, p, func(c fabric.Comm) error {
					r := c.Rank()
					out := make([]int32, bs)
					if err := ReduceScatter(c, b, strat, input(r, p*bs), out, OpSum); err != nil {
						return err
					}
					return eq(t, fmt.Sprintf("rs %v/%v p=%d rank=%d", kind, strat, p, r),
						out, want[r*bs:(r+1)*bs])
				})
			}
		}
	}
}

func TestAllgatherAllStrategies(t *testing.T) {
	for _, strat := range Strategies {
		for _, kind := range butterfliesFor(strat) {
			for _, p := range []int{1, 2, 4, 8, 16, 64} {
				b, err := core.NewButterfly(kind, p)
				if err != nil {
					t.Fatal(err)
				}
				bs := 4
				full := make([]int32, p*bs)
				for r := 0; r < p; r++ {
					copy(full[r*bs:], input(r, bs))
				}
				runRanks(t, p, func(c fabric.Comm) error {
					out := make([]int32, p*bs)
					if err := Allgather(c, b, strat, input(c.Rank(), bs), out); err != nil {
						return err
					}
					return eq(t, fmt.Sprintf("ag %v/%v p=%d rank=%d", kind, strat, p, c.Rank()), out, full)
				})
			}
		}
	}
}

func TestAllreduceRecDoubling(t *testing.T) {
	for _, kind := range []core.ButterflyKind{core.BflyBineDD, core.BflyBineDH, core.BflyBinomialDD} {
		for _, p := range []int{1, 2, 8, 32, 128} {
			b, err := core.NewButterfly(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			n := 9
			want := expectedReduce(p, n, OpSum)
			runRanks(t, p, func(c fabric.Comm) error {
				buf := input(c.Rank(), n)
				if err := AllreduceRecDoubling(c, b, buf, OpSum); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("ard %v p=%d", kind, p), buf, want)
			})
		}
	}
}

func TestAllreduceRsAg(t *testing.T) {
	for _, kind := range []core.ButterflyKind{core.BflyBineDD, core.BflyBinomialDH} {
		for _, p := range []int{1, 2, 4, 16, 64, 256} {
			b, err := core.NewButterfly(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			n := p * 2
			want := expectedReduce(p, n, OpSum)
			runRanks(t, p, func(c fabric.Comm) error {
				buf := input(c.Rank(), n)
				if err := AllreduceRsAg(c, b, buf, OpSum); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("rsag %v p=%d rank=%d", kind, p, c.Rank()), buf, want)
			})
		}
	}
}

func TestRingCollectives(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 30} {
		bs := 3
		n := p * bs
		wantRed := expectedReduce(p, n, OpSum)
		full := make([]int32, n)
		for r := 0; r < p; r++ {
			copy(full[r*bs:], input(r, bs))
		}
		runRanks(t, p, func(c fabric.Comm) error {
			r := c.Rank()
			out := make([]int32, bs)
			if err := RingReduceScatter(c, input(r, n), out, OpSum); err != nil {
				return err
			}
			if err := eq(t, fmt.Sprintf("ring-rs p=%d rank=%d", p, r), out, wantRed[r*bs:(r+1)*bs]); err != nil {
				return err
			}
			ag := make([]int32, n)
			if err := RingAllgather(Offset(c, 4096), input(r, bs), ag); err != nil {
				return err
			}
			if err := eq(t, fmt.Sprintf("ring-ag p=%d rank=%d", p, r), ag, full); err != nil {
				return err
			}
			buf := input(r, n)
			if err := RingAllreduce(Offset(c, 8192), buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("ring-allreduce p=%d rank=%d", p, r), buf, wantRed)
		})
	}
}

func alltoallExpected(p, bs, me int) []int32 {
	out := make([]int32, p*bs)
	for o := 0; o < p; o++ {
		full := input(o, p*bs)
		copy(out[o*bs:(o+1)*bs], full[me*bs:(me+1)*bs])
	}
	return out
}

func TestAlltoallAlgorithms(t *testing.T) {
	bs := 3
	t.Run("Bine", func(t *testing.T) {
		for _, p := range []int{1, 2, 4, 8, 16, 32} {
			b, err := core.NewButterfly(core.BflyBineDD, p)
			if err != nil {
				t.Fatal(err)
			}
			runRanks(t, p, func(c fabric.Comm) error {
				out := make([]int32, p*bs)
				if err := BineAlltoall(c, b, input(c.Rank(), p*bs), out); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("bine-a2a p=%d rank=%d", p, c.Rank()),
					out, alltoallExpected(p, bs, c.Rank()))
			})
		}
	})
	t.Run("Bruck", func(t *testing.T) {
		for _, p := range []int{1, 2, 3, 4, 8, 11, 16} {
			runRanks(t, p, func(c fabric.Comm) error {
				out := make([]int32, p*bs)
				if err := BruckAlltoall(c, input(c.Rank(), p*bs), out); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("bruck-a2a p=%d rank=%d", p, c.Rank()),
					out, alltoallExpected(p, bs, c.Rank()))
			})
		}
	})
	t.Run("Pairwise", func(t *testing.T) {
		for _, p := range []int{1, 2, 5, 8, 16} {
			runRanks(t, p, func(c fabric.Comm) error {
				out := make([]int32, p*bs)
				if err := PairwiseAlltoall(c, input(c.Rank(), p*bs), out); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("pairwise-a2a p=%d rank=%d", p, c.Rank()),
					out, alltoallExpected(p, bs, c.Rank()))
			})
		}
	})
}

func TestBruckAndSparbitAllgather(t *testing.T) {
	bs := 4
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		full := make([]int32, p*bs)
		for r := 0; r < p; r++ {
			copy(full[r*bs:], input(r, bs))
		}
		runRanks(t, p, func(c fabric.Comm) error {
			out := make([]int32, p*bs)
			if err := BruckAllgather(c, input(c.Rank(), bs), out); err != nil {
				return err
			}
			if err := eq(t, fmt.Sprintf("bruck-ag p=%d", p), out, full); err != nil {
				return err
			}
			out2 := make([]int32, p*bs)
			if err := SparbitAllgather(Offset(c, 4096), input(c.Rank(), bs), out2); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("sparbit-ag p=%d", p), out2, full)
		})
	}
	// Bruck also handles non-power-of-two rank counts.
	for _, p := range []int{3, 6, 11} {
		full := make([]int32, p*bs)
		for r := 0; r < p; r++ {
			copy(full[r*bs:], input(r, bs))
		}
		runRanks(t, p, func(c fabric.Comm) error {
			out := make([]int32, p*bs)
			if err := BruckAllgather(c, input(c.Rank(), bs), out); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("bruck-ag p=%d", p), out, full)
		})
	}
}

func TestCompositeBcastAndReduce(t *testing.T) {
	cases := []struct {
		tree core.Kind
		bfly core.ButterflyKind
	}{
		{core.BineDD, core.BflyBineDD},
		{core.BinomialDH, core.BflyBinomialDH},
	}
	for _, cse := range cases {
		for _, strat := range []Strategy{BlockByBlock, Permute, Send} {
			for _, p := range []int{2, 4, 16, 64} {
				for _, root := range []int{0, p - 1} {
					n := p * 3
					want := input(root, n)
					runRanks(t, p, func(c fabric.Comm) error {
						buf := make([]int32, n)
						if c.Rank() == root {
							copy(buf, want)
						}
						if err := BcastScatterAllgather(c, cse.tree, cse.bfly, strat, root, buf); err != nil {
							return err
						}
						return eq(t, fmt.Sprintf("bcast-sag %v/%v/%v p=%d root=%d", cse.tree, cse.bfly, strat, p, root), buf, want)
					})
					wantRed := expectedReduce(p, n, OpSum)
					runRanks(t, p, func(c fabric.Comm) error {
						var out []int32
						if c.Rank() == root {
							out = make([]int32, n)
						}
						if err := ReduceRsGather(c, cse.bfly, cse.tree, strat, root, input(c.Rank(), n), out, OpSum); err != nil {
							return err
						}
						if c.Rank() != root {
							return nil
						}
						return eq(t, fmt.Sprintf("reduce-rsg %v/%v p=%d root=%d", cse.bfly, strat, p, root), out, wantRed)
					})
				}
			}
		}
	}
}

func TestHierarchicalAllreduce(t *testing.T) {
	for _, cfg := range []struct{ p, g int }{{4, 4}, {8, 4}, {16, 4}, {64, 4}, {16, 2}, {8, 8}} {
		n := cfg.p * 2
		want := expectedReduce(cfg.p, n, OpSum)
		runRanks(t, cfg.p, func(c fabric.Comm) error {
			buf := input(c.Rank(), n)
			if err := HierarchicalAllreduce(c, cfg.g, core.BflyBineDD, buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("hier p=%d g=%d rank=%d", cfg.p, cfg.g, c.Rank()), buf, want)
		})
	}
}

func TestAllreduceReduceBcast(t *testing.T) {
	for _, p := range []int{2, 8, 12} {
		n := 7
		want := expectedReduce(p, n, OpSum)
		runRanks(t, p, func(c fabric.Comm) error {
			buf := input(c.Rank(), n)
			if err := AllreduceReduceBcast(c, core.BineDH, buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("red-bcast p=%d", p), buf, want)
		})
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	// The same collective code must run unchanged over real sockets.
	p := 8
	f, err := fabric.NewTCP(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := core.MustButterfly(core.BflyBineDD, p)
	n := p * 4
	want := expectedReduce(p, n, OpSum)
	var mu sync.Mutex
	results := map[int][]int32{}
	if err := fabric.Run(f, func(c fabric.Comm) error {
		buf := input(c.Rank(), n)
		if err := AllreduceRsAg(c, b, buf, OpSum); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if err := eq(t, fmt.Sprintf("tcp rank %d", r), results[r], want); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInputValidation(t *testing.T) {
	b := core.MustButterfly(core.BflyBineDD, 4)
	tree := core.MustTree(core.BineDH, 4, 0)
	runRanks(t, 4, func(c fabric.Comm) error {
		if err := ReduceScatter(c, b, Permute, make([]int32, 7), make([]int32, 1), OpSum); err == nil {
			return fmt.Errorf("indivisible vector accepted")
		}
		if err := Allgather(c, b, Permute, make([]int32, 2), make([]int32, 9)); err == nil {
			return fmt.Errorf("mismatched allgather accepted")
		}
		if err := Gather(c, tree, make([]int32, 2), nil); c.Rank() == 0 && err == nil {
			return fmt.Errorf("nil gather out accepted at root")
		}
		return nil
	})
	// Wrong-size communicator.
	runRanks(t, 2, func(c fabric.Comm) error {
		if err := Bcast(c, tree, make([]int32, 4)); err == nil {
			return fmt.Errorf("tree size mismatch accepted")
		}
		return nil
	})
}
