package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Collective enumerates the eight operations of the paper.
type Collective int

const (
	CBcast Collective = iota
	CReduce
	CGather
	CScatter
	CReduceScatter
	CAllgather
	CAllreduce
	CAlltoall
)

// String returns the collective's conventional name.
func (c Collective) String() string {
	switch c {
	case CBcast:
		return "bcast"
	case CReduce:
		return "reduce"
	case CGather:
		return "gather"
	case CScatter:
		return "scatter"
	case CReduceScatter:
		return "reduce-scatter"
	case CAllgather:
		return "allgather"
	case CAllreduce:
		return "allreduce"
	case CAlltoall:
		return "alltoall"
	}
	return fmt.Sprintf("Collective(%d)", int(c))
}

// Collectives lists all eight operations.
var Collectives = []Collective{CBcast, CReduce, CGather, CScatter, CReduceScatter, CAllgather, CAllreduce, CAlltoall}

// InOutLens returns the per-rank input and output vector lengths for a
// collective over p ranks and n total elements (n divisible by p). A zero
// output length means the collective works in place on the input buffer.
func (c Collective) InOutLens(p, n int) (in, out int) {
	bs := n / p
	switch c {
	case CBcast, CAllreduce:
		return n, 0
	case CReduce:
		return n, n
	case CGather:
		return bs, n
	case CScatter:
		return n, bs
	case CReduceScatter:
		return n, bs
	case CAllgather:
		return bs, n
	case CAlltoall:
		return n, n
	}
	panic("coll: unknown collective")
}

// Reduces reports whether the collective folds data (for the cost model's
// compute term).
func (c Collective) Reduces() bool {
	return c == CReduce || c == CReduceScatter || c == CAllreduce
}

// RunFunc executes one algorithm for one rank: in and out follow the
// collective's InOutLens convention, root is the tree root where relevant.
type RunFunc func(c fabric.Comm, root int, in, out []int32, op Op) error

// Algorithm is a registered collective implementation with the metadata the
// experiment harness and cost model need.
type Algorithm struct {
	Name string
	Coll Collective
	// Bine marks the paper's algorithms (as opposed to baselines).
	Bine bool
	// Binomial marks the binomial tree/butterfly baselines used for the
	// head-to-head Tables 3–5.
	Binomial bool
	// Pow2Only restricts the algorithm to power-of-two rank counts.
	Pow2Only bool
	// Overlap is the communication/computation overlap credit in the cost
	// model (block-by-block variants pipeline reductions well).
	Overlap float64
	// CopyFactor scales extra local data movement in vector lengths
	// (permute strategies shuffle the full vector once).
	CopyFactor float64
	// SmallVector marks latency-optimized variants; the harness annotates
	// but does not restrict on it.
	SmallVector bool
	// Make builds the per-rank runner. Shared schedule structures (trees,
	// butterflies) are built once per (p, root) and captured by the
	// closure, mirroring how MPI implementations cache communicator state.
	Make func(p, root int) (RunFunc, error)
	// Synth, when non-nil, overrides Pattern's generic zero-buffer walk for
	// schedules whose runtime control flow reads received data (Bruck's
	// negotiated item counts): it must compute the exact send pattern a
	// real execution produces from schedule math alone.
	Synth func(p, root, n int) (Synthesizer, error)
}

func treeAlgo(coll Collective, name string, kind core.Kind, bine bool) Algorithm {
	return Algorithm{
		Name: name, Coll: coll, Bine: bine,
		Binomial: kind == core.BinomialDD || kind == core.BinomialDH,
		Make: func(p, root int) (RunFunc, error) {
			t, err := core.NewTree(kind, p, root)
			if err != nil {
				return nil, err
			}
			switch coll {
			case CBcast:
				return func(c fabric.Comm, _ int, in, _ []int32, _ Op) error {
					return Bcast(c, t, in)
				}, nil
			case CReduce:
				return func(c fabric.Comm, _ int, in, out []int32, op Op) error {
					return Reduce(c, t, in, out, op)
				}, nil
			case CGather:
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return Gather(c, t, in, out)
				}, nil
			case CScatter:
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return Scatter(c, t, in, out)
				}, nil
			}
			return nil, fmt.Errorf("coll: no tree algorithm for %v", coll)
		},
	}
}

func butterflyAlgo(coll Collective, name string, kind core.ButterflyKind, strat Strategy, bine bool) Algorithm {
	overlap, copies := 0.0, 0.0
	switch strat {
	case BlockByBlock:
		overlap = 0.8
	case Permute:
		copies = 1
	case TwoTransmissions:
		overlap = 0.2
	}
	return Algorithm{
		Name: name, Coll: coll, Bine: bine,
		Binomial: kind == core.BflyBinomialDH || kind == core.BflyBinomialDD,
		Pow2Only: true, Overlap: overlap, CopyFactor: copies,
		Make: func(p, _ int) (RunFunc, error) {
			b, err := core.NewButterfly(kind, p)
			if err != nil {
				return nil, err
			}
			switch coll {
			case CReduceScatter:
				return func(c fabric.Comm, _ int, in, out []int32, op Op) error {
					return ReduceScatter(c, b, strat, in, out, op)
				}, nil
			case CAllgather:
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return Allgather(c, b, strat, in, out)
				}, nil
			}
			return nil, fmt.Errorf("coll: no butterfly algorithm for %v", coll)
		},
	}
}

// Registry returns every registered algorithm, grouped by collective on
// demand via ByCollective. The set mirrors the paper's evaluation matrix:
// each collective has its Bine variant(s), the binomial baselines of
// Open MPI and MPICH, and the additional state-of-the-art algorithms of
// Sec. 5 (ring, Bruck, sparbit, Swing, linear).
func Registry() []Algorithm {
	var algos []Algorithm

	// Broadcast.
	algos = append(algos,
		treeAlgo(CBcast, "bine-tree", core.BineDH, true),
		treeAlgo(CBcast, "binomial-dd", core.BinomialDD, false),
		treeAlgo(CBcast, "binomial-dh", core.BinomialDH, false),
		Algorithm{
			Name: "bine-scatter-allgather", Coll: CBcast, Bine: true, Pow2Only: true,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, _ []int32, _ Op) error {
					return BcastScatterAllgather(c, core.BineDD, core.BflyBineDD, Send, root, in)
				}, nil
			},
		},
		Algorithm{
			Name: "binomial-scatter-allgather", Coll: CBcast, Binomial: true, Pow2Only: true,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, _ []int32, _ Op) error {
					return BcastScatterAllgather(c, core.BinomialDH, core.BflyBinomialDH, Permute, root, in)
				}, nil
			},
		},
		Algorithm{
			Name: "linear", Coll: CBcast,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, _ []int32, _ Op) error {
					return LinearBcast(c, root, in)
				}, nil
			},
		},
		Algorithm{
			Name: "pipeline", Coll: CBcast, Overlap: 0.8,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, _ []int32, _ Op) error {
					return PipelineBcast(c, root, in, DefaultSegments)
				}, nil
			},
		},
		Algorithm{
			Name: "chain", Coll: CBcast,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, _ []int32, _ Op) error {
					return ChainBcast(c, root, in)
				}, nil
			},
		},
	)

	// Reduce.
	algos = append(algos,
		treeAlgo(CReduce, "bine-tree", core.BineDH, true),
		treeAlgo(CReduce, "binomial-dd", core.BinomialDD, false),
		treeAlgo(CReduce, "binomial-dh", core.BinomialDH, false),
		Algorithm{
			Name: "bine-rs-gather", Coll: CReduce, Bine: true, Pow2Only: true,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, out []int32, op Op) error {
					return ReduceRsGather(c, core.BflyBineDD, core.BineDH, Send, root, in, out, op)
				}, nil
			},
		},
		Algorithm{
			Name: "binomial-rs-gather", Coll: CReduce, Binomial: true, Pow2Only: true,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, out []int32, op Op) error {
					return ReduceRsGather(c, core.BflyBinomialDH, core.BinomialDH, Permute, root, in, out, op)
				}, nil
			},
		},
		Algorithm{
			Name: "linear", Coll: CReduce,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, out []int32, op Op) error {
					return LinearReduce(c, root, in, out, op)
				}, nil
			},
		},
	)

	// Gather and scatter.
	algos = append(algos,
		treeAlgo(CGather, "bine-tree", core.BineDH, true),
		treeAlgo(CGather, "binomial-dd", core.BinomialDD, false),
		treeAlgo(CGather, "binomial-dh", core.BinomialDH, false),
		Algorithm{
			Name: "linear", Coll: CGather,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, out []int32, _ Op) error {
					return LinearGather(c, root, in, out)
				}, nil
			},
		},
		treeAlgo(CScatter, "bine-tree", core.BineDH, true),
		treeAlgo(CScatter, "binomial-dd", core.BinomialDD, false),
		treeAlgo(CScatter, "binomial-dh", core.BinomialDH, false),
		Algorithm{
			Name: "linear", Coll: CScatter,
			Make: func(p, root int) (RunFunc, error) {
				return func(c fabric.Comm, root int, in, out []int32, _ Op) error {
					return LinearScatter(c, root, in, out)
				}, nil
			},
		},
	)

	// Reduce-scatter.
	algos = append(algos,
		butterflyAlgo(CReduceScatter, "bine-permute", core.BflyBineDD, Permute, true),
		butterflyAlgo(CReduceScatter, "bine-send", core.BflyBineDD, Send, true),
		butterflyAlgo(CReduceScatter, "bine-block", core.BflyBineDD, BlockByBlock, true),
		butterflyAlgo(CReduceScatter, "bine-two-trans", core.BflyBineDH, TwoTransmissions, true),
		butterflyAlgo(CReduceScatter, "recursive-halving", core.BflyBinomialDH, Permute, false),
		butterflyAlgo(CReduceScatter, "swing", core.BflySwing, BlockByBlock, false),
		Algorithm{
			Name: "ring", Coll: CReduceScatter,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, op Op) error {
					return RingReduceScatter(c, in, out, op)
				}, nil
			},
		},
		Algorithm{
			Name: "bine-fold", Coll: CReduceScatter, Bine: true,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, op Op) error {
					return FoldedReduceScatter(c, core.BflyBineDD, Send, in, out, op)
				}, nil
			},
		},
	)

	// Allgather.
	algos = append(algos,
		butterflyAlgo(CAllgather, "bine-permute", core.BflyBineDD, Permute, true),
		butterflyAlgo(CAllgather, "bine-send", core.BflyBineDD, Send, true),
		butterflyAlgo(CAllgather, "bine-block", core.BflyBineDD, BlockByBlock, true),
		butterflyAlgo(CAllgather, "bine-two-trans", core.BflyBineDH, TwoTransmissions, true),
		butterflyAlgo(CAllgather, "recursive-doubling", core.BflyBinomialDH, Permute, false),
		butterflyAlgo(CAllgather, "swing", core.BflySwing, BlockByBlock, false),
		Algorithm{
			Name: "ring", Coll: CAllgather,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return RingAllgather(c, in, out)
				}, nil
			},
		},
		Algorithm{
			Name: "bruck", Coll: CAllgather,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return BruckAllgather(c, in, out)
				}, nil
			},
		},
		Algorithm{
			Name: "sparbit", Coll: CAllgather, Pow2Only: true, Overlap: 0.8,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return SparbitAllgather(c, in, out)
				}, nil
			},
		},
		Algorithm{
			Name: "bine-fold", Coll: CAllgather, Bine: true,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return FoldedAllgather(c, core.BflyBineDD, Send, in, out)
				}, nil
			},
		},
	)

	// Allreduce.
	mkAllreduce := func(name string, bine, binomial, pow2 bool, overlap float64, small bool,
		run func(p int) (func(c fabric.Comm, buf []int32, op Op) error, error)) Algorithm {
		return Algorithm{
			Name: name, Coll: CAllreduce, Bine: bine, Binomial: binomial,
			Pow2Only: pow2, Overlap: overlap, SmallVector: small,
			Make: func(p, _ int) (RunFunc, error) {
				inner, err := run(p)
				if err != nil {
					return nil, err
				}
				return func(c fabric.Comm, _ int, in, _ []int32, op Op) error {
					return inner(c, in, op)
				}, nil
			},
		}
	}
	algos = append(algos,
		mkAllreduce("bine-lat", true, false, true, 0, true, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			b, err := core.NewButterfly(core.BflyBineDD, p)
			if err != nil {
				return nil, err
			}
			return func(c fabric.Comm, buf []int32, op Op) error {
				return AllreduceRecDoubling(c, b, buf, op)
			}, nil
		}),
		mkAllreduce("bine-bw", true, false, true, 0.3, false, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			b, err := core.NewButterfly(core.BflyBineDD, p)
			if err != nil {
				return nil, err
			}
			return func(c fabric.Comm, buf []int32, op Op) error {
				return AllreduceRsAg(c, b, buf, op)
			}, nil
		}),
		mkAllreduce("recursive-doubling", false, true, true, 0, true, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			b, err := core.NewButterfly(core.BflyBinomialDD, p)
			if err != nil {
				return nil, err
			}
			return func(c fabric.Comm, buf []int32, op Op) error {
				return AllreduceRecDoubling(c, b, buf, op)
			}, nil
		}),
		mkAllreduce("rabenseifner", false, true, true, 0, false, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			b, err := core.NewButterfly(core.BflyBinomialDH, p)
			if err != nil {
				return nil, err
			}
			return func(c fabric.Comm, buf []int32, op Op) error {
				return AllreduceRsAg(c, b, buf, op)
			}, nil
		}),
		mkAllreduce("ring", false, false, false, 0.6, false, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			return RingAllreduce, nil
		}),
		mkAllreduce("swing", false, false, true, 0.8, false, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			b, err := core.NewButterfly(core.BflySwing, p)
			if err != nil {
				return nil, err
			}
			return func(c fabric.Comm, buf []int32, op Op) error {
				bs := len(buf) / p
				own := make([]int32, bs)
				if err := ReduceScatter(c, b, BlockByBlock, buf, own, op); err != nil {
					return err
				}
				return Allgather(Offset(c, phaseStride), b, BlockByBlock, own, buf)
			}, nil
		}),
		mkAllreduce("reduce-bcast", false, false, false, 0, true, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			return func(c fabric.Comm, buf []int32, op Op) error {
				return AllreduceReduceBcast(c, core.BinomialDH, buf, op)
			}, nil
		}),
		mkAllreduce("bine-fold", true, false, false, 0.3, false, func(p int) (func(fabric.Comm, []int32, Op) error, error) {
			return func(c fabric.Comm, buf []int32, op Op) error {
				return FoldedAllreduce(c, core.BflyBineDD, buf, op)
			}, nil
		}),
	)

	// Alltoall.
	algos = append(algos,
		Algorithm{
			Name: "bine", Coll: CAlltoall, Bine: true, Pow2Only: true,
			Make: func(p, _ int) (RunFunc, error) {
				b, err := core.NewButterfly(core.BflyBineDD, p)
				if err != nil {
					return nil, err
				}
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return BineAlltoall(c, b, in, out)
				}, nil
			},
		},
		Algorithm{
			Name: "bruck", Coll: CAlltoall, Binomial: true,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return BruckAlltoall(c, in, out)
				}, nil
			},
			Synth: bruckAlltoallPattern,
		},
		Algorithm{
			Name: "pairwise", Coll: CAlltoall,
			Make: func(p, _ int) (RunFunc, error) {
				return func(c fabric.Comm, _ int, in, out []int32, _ Op) error {
					return PairwiseAlltoall(c, in, out)
				}, nil
			},
		},
	)

	return algos
}

// ByCollective filters the registry.
func ByCollective(algos []Algorithm, c Collective) []Algorithm {
	var out []Algorithm
	for _, a := range algos {
		if a.Coll == c {
			out = append(out, a)
		}
	}
	return out
}

// Find returns the named algorithm for a collective.
func Find(algos []Algorithm, c Collective, name string) (Algorithm, bool) {
	for _, a := range algos {
		if a.Coll == c && a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}
