package coll

import (
	"fmt"

	"binetrees/internal/fabric"
)

// ctx wraps a rank's Comm with sticky-error semantics so collective code
// reads as straight-line communication schedules; the first failure
// suppresses all subsequent operations and is reported once.
type ctx struct {
	c   fabric.Comm
	err error
}

func (x *ctx) send(to, step, sub int, data []int32) {
	if x.err != nil {
		return
	}
	x.err = x.c.Send(to, step, sub, data)
}

func (x *ctx) recv(from, step, sub int, buf []int32) {
	if x.err != nil {
		return
	}
	x.err = x.c.Recv(from, step, sub, buf)
}

// exchange sends sdata to peer and receives len(rbuf) elements from the same
// peer under the same (step, sub) tag.
func (x *ctx) exchange(peer, step, sub int, sdata, rbuf []int32) {
	x.send(peer, step, sub, sdata)
	x.recv(peer, step, sub, rbuf)
}

// Group restricts a communicator to the given global ranks, renumbering them
// 0..len(ranks)−1 in slice order. The caller's own rank must be present.
// Collectives run on the returned Comm exactly as on a full communicator;
// sub-communicators are how the hierarchical (Sec. 6.2) and torus
// (Appendix D) algorithms compose 1-D collectives.
func Group(c fabric.Comm, ranks []int) (fabric.Comm, error) {
	me := -1
	for i, r := range ranks {
		if r == c.Rank() {
			me = i
			break
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("coll: rank %d not in group %v", c.Rank(), ranks)
	}
	return &groupComm{inner: c, ranks: append([]int(nil), ranks...), me: me}, nil
}

type groupComm struct {
	inner fabric.Comm
	ranks []int
	me    int
}

func (g *groupComm) Rank() int { return g.me }
func (g *groupComm) Size() int { return len(g.ranks) }

func (g *groupComm) Send(to, step, sub int, data []int32) error {
	return g.inner.Send(g.ranks[to], step, sub, data)
}

func (g *groupComm) Recv(from, step, sub int, buf []int32) error {
	return g.inner.Recv(g.ranks[from], step, sub, buf)
}

// Offset shifts the step tags of a communicator by base. Composite
// collectives give each phase a disjoint tag window so messages of different
// phases can never be confused, and the cost model sees the phases as
// serialized.
func Offset(c fabric.Comm, base int) fabric.Comm {
	return &offsetComm{inner: c, base: base}
}

type offsetComm struct {
	inner fabric.Comm
	base  int
}

func (o *offsetComm) Rank() int { return o.inner.Rank() }
func (o *offsetComm) Size() int { return o.inner.Size() }

func (o *offsetComm) Send(to, step, sub int, data []int32) error {
	return o.inner.Send(to, o.base+step, sub, data)
}

func (o *offsetComm) Recv(from, step, sub int, buf []int32) error {
	return o.inner.Recv(from, o.base+step, sub, buf)
}

// SubShift relabels only the sub tags of a communicator. Parallel
// multi-ported sub-collectives (Appendix D.4) share step numbers — they are
// genuinely concurrent on the wire — and use disjoint sub windows to keep
// their frames apart.
func SubShift(c fabric.Comm, base int) fabric.Comm {
	return &subShiftComm{inner: c, base: base}
}

type subShiftComm struct {
	inner fabric.Comm
	base  int
}

func (s *subShiftComm) Rank() int { return s.inner.Rank() }
func (s *subShiftComm) Size() int { return s.inner.Size() }

func (s *subShiftComm) Send(to, step, sub int, data []int32) error {
	return s.inner.Send(to, step, s.base+sub, data)
}

func (s *subShiftComm) Recv(from, step, sub int, buf []int32) error {
	return s.inner.Recv(from, step, s.base+sub, buf)
}

// tag windows for composite collectives: each phase of a multi-phase
// algorithm gets its own step window.
const phaseStride = 1 << 12
