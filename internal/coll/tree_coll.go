package coll

import (
	"fmt"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Bcast broadcasts the root's buf down the tree; every rank's buf holds the
// full vector on return. This is the small-vector broadcast of Sec. 4.5 when
// given a distance-halving Bine tree, and the Open MPI / MPICH baselines
// when given binomial trees.
func Bcast(c fabric.Comm, t *core.Tree, buf []int32) error {
	if err := checkTree(c, t); err != nil {
		return err
	}
	x := &ctx{c: c}
	r := c.Rank()
	if r != t.Root {
		x.recv(t.Parent[r], t.JoinStep[r], 0, buf)
	}
	for _, e := range t.Children[r] {
		x.send(e.Child, e.Step, 0, buf)
	}
	return x.err
}

// Reduce folds every rank's in vector with op up the tree; the fully reduced
// vector lands in out at the root (out is ignored elsewhere and may be nil).
// This is the small-vector reduce of Sec. 4.5. in is not modified.
func Reduce(c fabric.Comm, t *core.Tree, in, out []int32, op Op) error {
	if err := checkTree(c, t); err != nil {
		return err
	}
	r := c.Rank()
	if r == t.Root && len(out) != len(in) {
		return fmt.Errorf("coll: reduce out has %d elements, want %d", len(out), len(in))
	}
	x := &ctx{c: c}
	acc := append([]int32(nil), in...)
	tmp := make([]int32, len(in))
	// Gather direction: the broadcast edge at step s fires at reduce step
	// Steps−1−s, child → parent. Children joined later send earlier, so by
	// a rank's own send time all its children have reported.
	for k := len(t.Children[r]) - 1; k >= 0; k-- {
		e := t.Children[r][k]
		x.recv(e.Child, t.Steps-1-e.Step, 0, tmp)
		if x.err != nil {
			return x.err
		}
		op.Apply(acc, tmp)
	}
	if r == t.Root {
		copy(out, acc)
		return nil
	}
	x.send(t.Parent[r], t.Steps-1-t.JoinStep[r], 0, acc)
	return x.err
}

// Gather collects each rank's in block (bs elements) to the root: out at the
// root (p·bs elements) ends with rank i's block at position i. The buffer
// ranges grow exactly as in Sec. 4.1: with a Bine tree every intermediate
// holding is a circularly contiguous block range (Fig. 7).
func Gather(c fabric.Comm, t *core.Tree, in, out []int32) error {
	if err := checkTree(c, t); err != nil {
		return err
	}
	r := c.Rank()
	bs := len(in)
	if r == t.Root && len(out) != bs*t.P {
		return fmt.Errorf("coll: gather out has %d elements, want %d", len(out), bs*t.P)
	}
	x := &ctx{c: c}
	w := out
	if r != t.Root {
		w = make([]int32, bs*t.P)
	}
	copy(w[r*bs:], in)
	for k := len(t.Children[r]) - 1; k >= 0; k-- {
		e := t.Children[r][k]
		sub := t.Subtree(e.Child)
		recv := make([]int32, len(sub)*bs)
		x.recv(e.Child, t.Steps-1-e.Step, 0, recv)
		if x.err != nil {
			return x.err
		}
		for i, blk := range sub {
			copy(w[blk*bs:(blk+1)*bs], recv[i*bs:(i+1)*bs])
		}
	}
	if r == t.Root {
		return x.err
	}
	mine := t.Subtree(r)
	payload := make([]int32, 0, len(mine)*bs)
	for _, blk := range mine {
		payload = append(payload, w[blk*bs:(blk+1)*bs]...)
	}
	x.send(t.Parent[r], t.Steps-1-t.JoinStep[r], 0, payload)
	return x.err
}

// Scatter distributes the root's in vector (p·bs elements) down the tree;
// each rank's out (bs elements) receives block rank. This is the reverse of
// Gather (Sec. 4.2).
func Scatter(c fabric.Comm, t *core.Tree, in, out []int32) error {
	if err := checkTree(c, t); err != nil {
		return err
	}
	r := c.Rank()
	bs := len(out)
	if r == t.Root && len(in) != bs*t.P {
		return fmt.Errorf("coll: scatter in has %d elements, want %d", len(in), bs*t.P)
	}
	x := &ctx{c: c}
	var w []int32 // blocks of this rank's subtree, in Subtree order
	mine := t.Subtree(r)
	if r == t.Root {
		w = make([]int32, 0, len(mine)*bs)
		for _, blk := range mine {
			w = append(w, in[blk*bs:(blk+1)*bs]...)
		}
	} else {
		w = make([]int32, len(mine)*bs)
		x.recv(t.Parent[r], t.JoinStep[r], 0, w)
		if x.err != nil {
			return x.err
		}
	}
	at := func(blk int) []int32 {
		for i, b := range mine {
			if b == blk {
				return w[i*bs : (i+1)*bs]
			}
		}
		panic("coll: block not in subtree")
	}
	for _, e := range t.Children[r] {
		sub := t.Subtree(e.Child)
		payload := make([]int32, 0, len(sub)*bs)
		for _, blk := range sub {
			payload = append(payload, at(blk)...)
		}
		x.send(e.Child, e.Step, 0, payload)
	}
	copy(out, at(r))
	return x.err
}

func checkTree(c fabric.Comm, t *core.Tree) error {
	if c.Size() != t.P {
		return fmt.Errorf("coll: tree over %d ranks on a %d-rank communicator", t.P, c.Size())
	}
	return nil
}

// LinearBcast is the flat baseline: the root sends the vector to every rank
// directly.
func LinearBcast(c fabric.Comm, root int, buf []int32) error {
	x := &ctx{c: c}
	if c.Rank() == root {
		for to := 0; to < c.Size(); to++ {
			if to != root {
				x.send(to, 0, 0, buf)
			}
		}
		return x.err
	}
	x.recv(root, 0, 0, buf)
	return x.err
}

// LinearGather is the flat baseline gather: every rank sends its block
// straight to the root.
func LinearGather(c fabric.Comm, root int, in, out []int32) error {
	x := &ctx{c: c}
	p := c.Size()
	bs := len(in)
	if c.Rank() == root {
		if len(out) != p*bs {
			return fmt.Errorf("coll: gather out has %d elements, want %d", len(out), p*bs)
		}
		copy(out[root*bs:], in)
		for from := 0; from < p; from++ {
			if from != root {
				x.recv(from, 0, 0, out[from*bs:(from+1)*bs])
			}
		}
		return x.err
	}
	x.send(root, 0, 0, in)
	return x.err
}

// LinearScatter is the flat baseline scatter.
func LinearScatter(c fabric.Comm, root int, in, out []int32) error {
	x := &ctx{c: c}
	p := c.Size()
	bs := len(out)
	if c.Rank() == root {
		if len(in) != p*bs {
			return fmt.Errorf("coll: scatter in has %d elements, want %d", len(in), p*bs)
		}
		for to := 0; to < p; to++ {
			if to != root {
				x.send(to, 0, 0, in[to*bs:(to+1)*bs])
			}
		}
		copy(out, in[root*bs:(root+1)*bs])
		return x.err
	}
	x.recv(root, 0, 0, out)
	return x.err
}

// LinearReduce is the flat baseline reduce: the root folds every rank's
// vector directly.
func LinearReduce(c fabric.Comm, root int, in, out []int32, op Op) error {
	x := &ctx{c: c}
	if c.Rank() == root {
		if len(out) != len(in) {
			return fmt.Errorf("coll: reduce out has %d elements, want %d", len(out), len(in))
		}
		copy(out, in)
		tmp := make([]int32, len(in))
		for from := 0; from < c.Size(); from++ {
			if from == root {
				continue
			}
			x.recv(from, 0, 0, tmp)
			if x.err != nil {
				return x.err
			}
			op.Apply(out, tmp)
		}
		return nil
	}
	x.send(root, 0, 0, in)
	return x.err
}
