package coll

import (
	"fmt"
	"sort"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Alltoall algorithms. Conceptually the paper's Bine alltoall is "a small
// vector allreduce where ranks send n/2 bytes at each step and the received
// data is concatenated rather than aggregated" (Sec. 4.4): items ride the
// same Bine routing as reduce-scatter partials, plus a final local
// permutation that the item headers make implicit here.
//
// Every log-step alltoall below routes (origin, destination, payload) items:
// a message is a sequence of items, each encoded as one header element (the
// origin rank) followed by the bs payload elements. Headers let the receiver
// scatter items into place without any out-of-band agreement; the one-element
// overhead per block is charged to the algorithms honestly in the traces.

// item encoding helpers.
func encodeItems(msg []int32, items []a2aItem, bs int) []int32 {
	for _, it := range items {
		msg = append(msg, int32(it.origin))
		msg = append(msg, it.data...)
	}
	return msg
}

type a2aItem struct {
	origin int
	data   []int32
}

// BineAlltoall routes items over the distance-doubling Bine butterfly: at
// step i the items whose destination lies in the partner's half (the same
// block sets as the Bine reduce-scatter) move to the partner, n/2 elements
// per step over log2(p) steps.
func BineAlltoall(c fabric.Comm, b *core.Butterfly, buf, out []int32) error {
	if err := checkButterfly(c, b, len(buf)); err != nil {
		return err
	}
	if len(out) != len(buf) {
		return fmt.Errorf("coll: alltoall out has %d elements, want %d", len(out), len(buf))
	}
	p := b.P
	r := c.Rank()
	bs := len(buf) / p
	if p == 1 {
		copy(out, buf)
		return nil
	}
	// held[dest] = items currently at this rank destined for dest.
	held := make([][]a2aItem, p)
	for d := 0; d < p; d++ {
		data := append([]int32(nil), buf[d*bs:(d+1)*bs]...)
		held[d] = []a2aItem{{origin: r, data: data}}
	}
	x := &ctx{c: c}
	for i := 0; i < b.S; i++ {
		q := b.Partner(r, i)
		var msg []int32
		for _, d := range b.SendBlocks(r, i) {
			msg = encodeItems(msg, held[d], bs)
			held[d] = nil
		}
		x.send(q, i, 0, msg)
		// The partner moves the same item count: its send set mirrors ours
		// and each surviving destination carries 2^i accumulated items.
		incoming := len(b.SendOffsets(i)) << uint(i)
		recv := make([]int32, incoming*(bs+1))
		x.recv(q, i, 0, recv)
		if x.err != nil {
			return x.err
		}
		for k := 0; k < incoming; k++ {
			chunk := recv[k*(bs+1) : (k+1)*(bs+1)]
			it := a2aItem{origin: int(chunk[0]), data: append([]int32(nil), chunk[1:]...)}
			// The destination is recoverable from the schedule, but
			// indexing by our own keep set keeps it simple: incoming items
			// are destined for blocks we keep. Scan is avoided by decoding
			// the destination below.
			d := destOf(b, q, i, k)
			held[d] = append(held[d], it)
		}
	}
	for _, it := range held[r] {
		copy(out[it.origin*bs:(it.origin+1)*bs], it.data)
	}
	if got := len(held[r]); got != p {
		return fmt.Errorf("coll: alltoall rank %d assembled %d of %d items", r, got, p)
	}
	return nil
}

// destOf recovers the destination of the k-th item of the step-i message
// sent by rank q: items are packed per destination block in SendBlocks
// order, 2^i items per block.
func destOf(b *core.Butterfly, q, i, k int) int {
	return b.SendBlocks(q, i)[k>>uint(i)]
}

// BruckAlltoall is the classic logarithmic baseline (the closest binomial
// relative, used for the comparison in Sec. 5.1.1): items whose remaining
// ring displacement has bit k set hop k-th-power-of-two positions forward.
func BruckAlltoall(c fabric.Comm, buf, out []int32) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	if len(out) != len(buf) {
		return fmt.Errorf("coll: alltoall out has %d elements, want %d", len(out), len(buf))
	}
	r := c.Rank()
	bs := len(buf) / p
	if p == 1 {
		copy(out, buf)
		return nil
	}
	type routed struct {
		origin, dest int
		data         []int32
	}
	var held []routed
	for d := 0; d < p; d++ {
		held = append(held, routed{origin: r, dest: d,
			data: append([]int32(nil), buf[d*bs:(d+1)*bs]...)})
	}
	x := &ctx{c: c}
	step := 0
	for k := 1; k < p; k <<= 1 {
		to := (r + k) % p
		from := mod(r-k, p)
		var stay []routed
		var msg []int32
		moved := 0
		for _, it := range held {
			if (mod(it.dest-r, p)/k)%2 == 1 {
				msg = append(msg, int32(it.origin), int32(it.dest))
				msg = append(msg, it.data...)
				moved++
			} else {
				stay = append(stay, it)
			}
		}
		x.send(to, step, 0, msg)
		// Peer count mirrors ours only for power-of-two p; receive length
		// is negotiated with a small header message otherwise.
		var cnt [1]int32
		x.send(to, step, 1, []int32{int32(moved)})
		x.recv(from, step, 1, cnt[:])
		if x.err != nil {
			return x.err
		}
		recv := make([]int32, int(cnt[0])*(bs+2))
		x.recv(from, step, 0, recv)
		if x.err != nil {
			return x.err
		}
		held = stay
		for i := 0; i < int(cnt[0]); i++ {
			chunk := recv[i*(bs+2) : (i+1)*(bs+2)]
			held = append(held, routed{origin: int(chunk[0]), dest: int(chunk[1]),
				data: append([]int32(nil), chunk[2:]...)})
		}
		step++
	}
	n := 0
	for _, it := range held {
		if it.dest != r {
			return fmt.Errorf("coll: bruck item for %d stranded at %d", it.dest, r)
		}
		copy(out[it.origin*bs:(it.origin+1)*bs], it.data)
		n++
	}
	if n != p {
		return fmt.Errorf("coll: bruck assembled %d of %d items", n, p)
	}
	return nil
}

// PairwiseAlltoall is the linear baseline: p−1 direct exchanges
// (rank r sends to r+t and receives from r−t at step t).
func PairwiseAlltoall(c fabric.Comm, buf, out []int32) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	if len(out) != len(buf) {
		return fmt.Errorf("coll: alltoall out has %d elements, want %d", len(out), len(buf))
	}
	r := c.Rank()
	bs := len(buf) / p
	copy(out[r*bs:(r+1)*bs], buf[r*bs:(r+1)*bs])
	x := &ctx{c: c}
	for t := 1; t < p; t++ {
		to := (r + t) % p
		from := mod(r-t, p)
		x.send(to, t-1, 0, buf[to*bs:(to+1)*bs])
		x.recv(from, t-1, 0, out[from*bs:(from+1)*bs])
		if x.err != nil {
			return x.err
		}
	}
	return nil
}

// BruckAllgather is the classic Bruck allgather baseline: at step k each
// rank sends all blocks it holds to rank r−2^k and receives from r+2^k,
// doubling ownership per step (contiguous in a rotated view).
func BruckAllgather(c fabric.Comm, in, out []int32) error {
	p := c.Size()
	bs := len(in)
	if len(out) != p*bs {
		return fmt.Errorf("coll: allgather out has %d elements, want %d", len(out), p*bs)
	}
	r := c.Rank()
	if p == 1 {
		copy(out, in)
		return nil
	}
	// Rotated working buffer: position i holds block (r+i) mod p.
	w := make([]int32, p*bs)
	copy(w[:bs], in)
	have := 1
	x := &ctx{c: c}
	step := 0
	for k := 1; k < p; k <<= 1 {
		to := mod(r-k, p)
		from := (r + k) % p
		cnt := have
		if cnt > p-k {
			cnt = p - k
		}
		x.send(to, step, 0, w[:cnt*bs])
		x.recv(from, step, 0, w[have*bs:(have+cnt)*bs])
		if x.err != nil {
			return x.err
		}
		have += cnt
		step++
	}
	for i := 0; i < p; i++ {
		blk := (r + i) % p
		copy(out[blk*bs:(blk+1)*bs], w[i*bs:(i+1)*bs])
	}
	return nil
}

// SparbitAllgather models the sparbit algorithm (Loch & Koslovski, cited by
// the paper as a state-of-the-art log-cost allgather): a distance-halving
// binomial exchange transmitting the non-contiguous block sets
// block-by-block, preserving data locality at the price of per-block
// messages.
func SparbitAllgather(c fabric.Comm, in, out []int32) error {
	p := c.Size()
	s, ok := core.Log2(p)
	if !ok {
		return fmt.Errorf("coll: sparbit requires power-of-two ranks, got %d", p)
	}
	bs := len(in)
	if len(out) != p*bs {
		return fmt.Errorf("coll: allgather out has %d elements, want %d", len(out), p*bs)
	}
	r := c.Rank()
	copy(out[r*bs:], in)
	owned := []int{r}
	x := &ctx{c: c}
	for i := 0; i < s; i++ {
		q := r ^ (p >> uint(i+1))
		// Send every owned block as its own message (sparbit's per-block
		// transfers), receive the partner's mirrored set.
		for sub, blk := range owned {
			x.send(q, i, sub, out[blk*bs:(blk+1)*bs])
		}
		theirs := make([]int, len(owned))
		for k, blk := range owned {
			theirs[k] = blk ^ (p >> uint(i+1))
		}
		sort.Ints(theirs)
		for sub, blk := range theirs {
			x.recv(q, i, sub, out[blk*bs:(blk+1)*bs])
		}
		if x.err != nil {
			return x.err
		}
		owned = append(owned, theirs...)
		sort.Ints(owned)
	}
	return nil
}
