// Package coll implements the eight collective operations of the paper —
// broadcast, reduce, gather, scatter, reduce-scatter, allgather, allreduce,
// alltoall — in their Bine variants (Sec. 4) and in every baseline variant
// the paper compares against (binomial trees and butterflies, ring, Bruck,
// Swing, bucket, linear).
//
// All collectives operate on []int32 vectors, matching the paper's
// evaluation ("all collectives operate on vectors of 32-bit integers"), and
// run per-rank against a fabric.Comm. Executions are verified against
// locally computed expected results in the tests; communication traces
// recorded through fabric.Recorder feed the traffic/cost analyses.
package coll

import "fmt"

// Op is an associative, commutative reduction operator applied elementwise.
type Op struct {
	Name  string
	apply func(dst, src []int32)
}

// Apply folds src into dst elementwise: dst[i] = dst[i] op src[i]. The two
// slices must have equal length.
func (o Op) Apply(dst, src []int32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("coll: %s over mismatched lengths %d and %d", o.Name, len(dst), len(src)))
	}
	o.apply(dst, src)
}

// Reduction operators mirroring the MPI built-ins used by the paper's
// benchmarks.
var (
	OpSum = Op{Name: "sum", apply: func(dst, src []int32) {
		for i, v := range src {
			dst[i] += v
		}
	}}
	OpMax = Op{Name: "max", apply: func(dst, src []int32) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}}
	OpMin = Op{Name: "min", apply: func(dst, src []int32) {
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}}
	OpProd = Op{Name: "prod", apply: func(dst, src []int32) {
		for i, v := range src {
			dst[i] *= v
		}
	}}
	OpBXor = Op{Name: "bxor", apply: func(dst, src []int32) {
		for i, v := range src {
			dst[i] ^= v
		}
	}}
)
