package coll

import (
	"fmt"
	"testing"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// TestRegistryAllAlgorithmsCorrect executes every registered algorithm on
// several rank counts and verifies its output against locally computed
// expected results.
func TestRegistryAllAlgorithmsCorrect(t *testing.T) {
	algos := Registry()
	if len(algos) < 30 {
		t.Fatalf("registry has only %d algorithms", len(algos))
	}
	for _, algo := range algos {
		counts := []int{2, 4, 16}
		if !algo.Pow2Only {
			counts = append(counts, 6, 12)
		}
		for _, p := range counts {
			bs := 2
			n := p * bs
			root := p / 3
			run, err := algo.Make(p, root)
			if err != nil {
				t.Fatalf("%v/%s p=%d: %v", algo.Coll, algo.Name, p, err)
			}
			full := make([]int32, n)
			for r := 0; r < p; r++ {
				copy(full[r*bs:], input(r, bs))
			}
			wantRed := expectedReduce(p, n, OpSum)
			tag := fmt.Sprintf("%v/%s p=%d", algo.Coll, algo.Name, p)
			runRanks(t, p, func(c fabric.Comm) error {
				r := c.Rank()
				inLen, outLen := algo.Coll.InOutLens(p, n)
				in := make([]int32, inLen)
				var out []int32
				if outLen > 0 {
					out = make([]int32, outLen)
				}
				switch algo.Coll {
				case CBcast:
					if r == root {
						copy(in, input(root, n))
					}
				case CGather, CAllgather:
					copy(in, input(r, bs))
				default:
					copy(in, input(r, n))
				}
				if err := run(c, root, in, out, OpSum); err != nil {
					return err
				}
				switch algo.Coll {
				case CBcast:
					return eq(t, tag, in, input(root, n))
				case CReduce:
					if r == root {
						return eq(t, tag, out, wantRed)
					}
				case CGather:
					if r == root {
						return eq(t, tag, out, full)
					}
				case CScatter:
					return eq(t, tag, out, input(root, n)[r*bs:(r+1)*bs])
				case CReduceScatter:
					return eq(t, tag, out, wantRed[r*bs:(r+1)*bs])
				case CAllgather:
					return eq(t, tag, out, full)
				case CAllreduce:
					return eq(t, tag, in, wantRed)
				case CAlltoall:
					return eq(t, tag, out, alltoallExpected(p, bs, r))
				}
				return nil
			})
		}
	}
}

// TestRegistryScatterInput fixes the scatter convention: the root's input is
// the full vector.
func TestRegistryScatterInput(t *testing.T) {
	algos := Registry()
	for _, name := range []string{"bine-tree", "binomial-dd", "linear"} {
		algo, ok := Find(algos, CScatter, name)
		if !ok {
			t.Fatalf("scatter/%s not registered", name)
		}
		p, bs := 8, 3
		root := 2
		run, err := algo.Make(p, root)
		if err != nil {
			t.Fatal(err)
		}
		fullIn := input(root, p*bs)
		runRanks(t, p, func(c fabric.Comm) error {
			in := make([]int32, p*bs)
			if c.Rank() == root {
				copy(in, fullIn)
			}
			out := make([]int32, bs)
			if err := run(c, root, in, out, OpSum); err != nil {
				return err
			}
			return eq(t, name, out, fullIn[c.Rank()*bs:(c.Rank()+1)*bs])
		})
	}
}

// TestRegistryCoverage checks every collective has at least one Bine
// algorithm and one binomial baseline, as the paper's tables require.
func TestRegistryCoverage(t *testing.T) {
	algos := Registry()
	for _, c := range Collectives {
		perColl := ByCollective(algos, c)
		var bine, binomial int
		for _, a := range perColl {
			if a.Bine {
				bine++
			}
			if a.Binomial {
				binomial++
			}
			if a.Bine && a.Binomial {
				t.Errorf("%v/%s marked both bine and binomial", c, a.Name)
			}
		}
		if bine == 0 {
			t.Errorf("%v has no Bine algorithm", c)
		}
		if binomial == 0 {
			t.Errorf("%v has no binomial baseline", c)
		}
	}
	if _, ok := Find(algos, CAllreduce, "swing"); !ok {
		t.Error("swing allreduce missing")
	}
	if _, ok := Find(algos, CAllreduce, "no-such"); ok {
		t.Error("phantom algorithm found")
	}
}

// TestTreeAlgoKindsDiffer pins the Fig. 1 distinction: the two binomial
// broadcast baselines produce different traffic patterns.
func TestTreeAlgoKindsDiffer(t *testing.T) {
	dd := core.MustTree(core.BinomialDD, 8, 0)
	dh := core.MustTree(core.BinomialDH, 8, 0)
	if dd.Parent[1] == dh.Parent[1] && dd.JoinStep[4] == dh.JoinStep[4] {
		t.Error("distance-doubling and distance-halving trees coincide")
	}
}
