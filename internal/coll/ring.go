package coll

import (
	"fmt"

	"binetrees/internal/fabric"
)

// ring collectives: the bandwidth-optimal baselines the paper compares
// against for large vectors (Sec. 5.2.2). Each rank talks only to its ring
// neighbours, so global-link traffic is minimal but the step count is linear
// in p.

// RingReduceScatter reduces buf (p·bs elements) and leaves block rank in
// out, using the classic p−1 step ring: at step t each rank sends the
// partial for block (rank−t−1) to its successor and folds the incoming
// partial for block (rank−t−1) … shifted, ending with its own block fully
// reduced. buf is not modified.
func RingReduceScatter(c fabric.Comm, buf, out []int32, op Op) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	bs := len(buf) / p
	if len(out) != bs {
		return fmt.Errorf("coll: reduce-scatter out has %d elements, want %d", len(out), bs)
	}
	r := c.Rank()
	if p == 1 {
		copy(out, buf)
		return nil
	}
	w := append([]int32(nil), buf...)
	x := &ctx{c: c}
	next, prev := (r+1)%p, (r+p-1)%p
	tmp := make([]int32, bs)
	for t := 0; t < p-1; t++ {
		sblk := mod(r-t-1, p) // partial this rank forwards
		rblk := mod(r-t-2, p) // partial arriving from the predecessor
		x.send(next, t, 0, w[sblk*bs:(sblk+1)*bs])
		x.recv(prev, t, 0, tmp)
		if x.err != nil {
			return x.err
		}
		op.Apply(w[rblk*bs:(rblk+1)*bs], tmp)
	}
	copy(out, w[r*bs:(r+1)*bs])
	return nil
}

// RingAllgather distributes each rank's block around the ring in p−1 steps.
func RingAllgather(c fabric.Comm, in, out []int32) error {
	p := c.Size()
	bs := len(in)
	if len(out) != p*bs {
		return fmt.Errorf("coll: allgather out has %d elements, want %d", len(out), p*bs)
	}
	r := c.Rank()
	copy(out[r*bs:], in)
	if p == 1 {
		return nil
	}
	x := &ctx{c: c}
	next, prev := (r+1)%p, (r+p-1)%p
	for t := 0; t < p-1; t++ {
		sblk := mod(r-t, p)
		rblk := mod(r-t-1, p)
		x.send(next, t, 0, out[sblk*bs:(sblk+1)*bs])
		x.recv(prev, t, 0, out[rblk*bs:(rblk+1)*bs])
		if x.err != nil {
			return x.err
		}
	}
	return nil
}

// RingAllreduce is the classic large-vector ring allreduce: ring
// reduce-scatter followed by ring allgather, 2(p−1) steps of n/p elements.
func RingAllreduce(c fabric.Comm, buf []int32, op Op) error {
	p := c.Size()
	if len(buf)%p != 0 || len(buf) == 0 {
		return fmt.Errorf("coll: vector of %d elements not divisible into %d blocks", len(buf), p)
	}
	bs := len(buf) / p
	own := make([]int32, bs)
	if err := RingReduceScatter(c, buf, own, op); err != nil {
		return err
	}
	return RingAllgather(Offset(c, phaseStride), own, buf)
}

func mod(v, p int) int {
	m := v % p
	if m < 0 {
		m += p
	}
	return m
}
