package coll

import (
	"fmt"
	"testing"

	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

func torusCases() []core.Torus {
	return []core.Torus{
		core.MustTorus(4),
		core.MustTorus(2, 2),
		core.MustTorus(4, 4),
		core.MustTorus(2, 4, 8),
		core.MustTorus(4, 4, 4),
		core.MustTorus(8, 2),
	}
}

func TestTorusAllreduce(t *testing.T) {
	for _, tor := range torusCases() {
		p := tor.P()
		n := p * 2
		want := expectedReduce(p, n, OpSum)
		runRanks(t, p, func(c fabric.Comm) error {
			buf := input(c.Rank(), n)
			if err := TorusAllreduce(c, tor, buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("torus %v rank=%d", tor.Dims, c.Rank()), buf, want)
		})
	}
}

func TestTorusMultiportAllreduce(t *testing.T) {
	for _, tor := range []core.Torus{core.MustTorus(4, 4), core.MustTorus(2, 4, 8)} {
		p := tor.P()
		planes := 2 * tor.NDims()
		n := p * planes
		want := expectedReduce(p, n, OpSum)
		runRanks(t, p, func(c fabric.Comm) error {
			buf := input(c.Rank(), n)
			if err := TorusMultiportAllreduce(c, tor, buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("multiport %v rank=%d", tor.Dims, c.Rank()), buf, want)
		})
	}
}

func TestBucketAllreduce(t *testing.T) {
	// Bucket handles non-power-of-two dimensions too.
	cases := append(torusCases(), core.MustTorus(3, 4), core.MustTorus(6), core.MustTorus(3, 5))
	for _, tor := range cases {
		p := tor.P()
		n := p * 2
		want := expectedReduce(p, n, OpSum)
		runRanks(t, p, func(c fabric.Comm) error {
			buf := input(c.Rank(), n)
			if err := BucketAllreduce(c, tor, buf, OpSum); err != nil {
				return err
			}
			return eq(t, fmt.Sprintf("bucket %v rank=%d", tor.Dims, c.Rank()), buf, want)
		})
	}
}

func TestTorusBcastAndReduce(t *testing.T) {
	for _, tor := range torusCases() {
		p := tor.P()
		n := 10
		for _, root := range []int{0, p - 1, p / 2} {
			want := input(root, n)
			runRanks(t, p, func(c fabric.Comm) error {
				buf := make([]int32, n)
				if c.Rank() == root {
					copy(buf, want)
				}
				if err := TorusBcast(c, tor, core.BineDH, root, buf); err != nil {
					return err
				}
				return eq(t, fmt.Sprintf("torus-bcast %v root=%d rank=%d", tor.Dims, root, c.Rank()), buf, want)
			})
			wantRed := expectedReduce(p, n, OpSum)
			runRanks(t, p, func(c fabric.Comm) error {
				var out []int32
				if c.Rank() == root {
					out = make([]int32, n)
				}
				if err := TorusReduce(c, tor, core.BineDH, root, input(c.Rank(), n), out, OpSum); err != nil {
					return err
				}
				if c.Rank() != root {
					return nil
				}
				return eq(t, fmt.Sprintf("torus-reduce %v root=%d", tor.Dims, root), out, wantRed)
			})
		}
	}
}

func TestTorusValidation(t *testing.T) {
	tor := core.MustTorus(2, 2)
	runRanks(t, 4, func(c fabric.Comm) error {
		if err := TorusAllreduce(c, tor, make([]int32, 3), OpSum); err == nil {
			return fmt.Errorf("indivisible vector accepted")
		}
		return nil
	})
	runRanks(t, 8, func(c fabric.Comm) error {
		if err := TorusAllreduce(c, tor, make([]int32, 8), OpSum); err == nil {
			return fmt.Errorf("rank count mismatch accepted")
		}
		return nil
	})
}
