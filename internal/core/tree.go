package core

import (
	"fmt"
	"sort"
)

// Kind identifies a spanning-tree construction family.
type Kind int

const (
	// BineDH is the distance-halving Bine tree of Sec. 2.3: distances
	// between communicating ranks shrink by roughly half at every step.
	BineDH Kind = iota
	// BineDD is the distance-doubling Bine tree of Sec. 3.2 / Appendix A.
	BineDD
	// BinomialDD is the standard distance-doubling binomial tree used by
	// Open MPI: the root first talks to rank root+1, then root+2, root+4, …
	BinomialDD
	// BinomialDH is the standard distance-halving binomial tree used by
	// MPICH: the root first talks to rank root+p/2, then root+p/4, …
	BinomialDH
)

// String returns the conventional short name of the tree kind.
func (k Kind) String() string {
	switch k {
	case BineDH:
		return "bine-dh"
	case BineDD:
		return "bine-dd"
	case BinomialDD:
		return "binomial-dd"
	case BinomialDH:
		return "binomial-dh"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Edge is a directed parent→child communication edge of a tree, annotated
// with the step at which the transfer happens in a root-to-leaves traversal
// (broadcast order). In a leaves-to-root traversal (gather, reduce) the same
// edge fires at step Steps−1−Step with the direction reversed.
type Edge struct {
	Step  int
	Child int
}

// Tree is a rooted spanning tree over p ranks together with its step
// schedule. Trees are immutable after construction and safe for concurrent
// use.
type Tree struct {
	Kind  Kind
	P     int
	Root  int
	Steps int

	// Parent[r] is the parent of rank r, or −1 for the root.
	Parent []int
	// JoinStep[r] is the step at which rank r receives from its parent in
	// a broadcast; −1 for the root.
	JoinStep []int
	// Children[r] lists r's outgoing edges ordered by ascending step.
	Children [][]Edge
}

// partnerFunc returns the destination rank (relative to a root at 0) that a
// relative rank r, already part of the tree, sends to at the given step; it
// may return an out-of-range value (binomial trees on non-power-of-two p)
// or an already-reached rank (Bine trees on even non-power-of-two p, see
// Appendix C); the builder skips such edges.
type partnerFunc func(rrel, step int) int

// NewTree builds a tree of the given kind over p ranks rooted at root.
//
// Power-of-two p uses the exact constructions of the paper. Even
// non-power-of-two p uses Appendix C's duplicate-prune technique for Bine
// kinds. Odd p (Bine kinds) falls back to the classic fold: the tree is built
// over p' = 2^floor(log2 p) ranks and each remaining rank is attached as a
// leaf of rank r−p' in one extra final step. Binomial kinds handle any p
// directly by skipping out-of-range partners.
func NewTree(kind Kind, p, root int) (*Tree, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: tree over %d ranks", p)
	}
	if root < 0 || root >= p {
		return nil, fmt.Errorf("core: root %d out of range [0,%d)", root, p)
	}
	if p == 1 {
		return &Tree{Kind: kind, P: 1, Root: root, Steps: 0,
			Parent: []int{-1}, JoinStep: []int{-1}, Children: [][]Edge{nil}}, nil
	}
	isBine := kind == BineDH || kind == BineDD
	_, pow2 := Log2(p)
	if isBine && !pow2 && p%2 == 1 {
		return foldedTree(kind, p, root)
	}
	s := Log2Ceil(p)
	t := &Tree{Kind: kind, P: p, Root: root, Steps: s}
	t.build(partnerFor(kind, p, s))
	if !t.spanning() {
		if isBine {
			// Safety net: Appendix C's prune rule is stated for even p;
			// if a pathological even p fails to span, fall back to fold.
			return foldedTree(kind, p, root)
		}
		return nil, fmt.Errorf("core: %v tree over p=%d did not span", kind, p)
	}
	return t, nil
}

// MustTree is NewTree, panicking on error; intended for power-of-two p in
// tests and examples.
func MustTree(kind Kind, p, root int) *Tree {
	t, err := NewTree(kind, p, root)
	if err != nil {
		panic(err)
	}
	return t
}

func partnerFor(kind Kind, p, s int) partnerFunc {
	switch kind {
	case BineDH:
		// Eq. 1: at step i, rank r sends to the rank whose negabinary
		// representation differs in the s−i least significant bits.
		return func(rrel, step int) int {
			nb := RankToNB(rrel, p)
			return NBToRank(nb^Ones(s-step), p)
		}
	case BineDD:
		// Eq. 5: q = r ± Σ_{k=0}^{j}(−2)^k mod p (+ for even r, − for odd).
		return func(rrel, step int) int {
			d := int(BineDelta(step))
			if rrel%2 == 0 {
				return Mod(rrel+d, p)
			}
			return Mod(rrel-d, p)
		}
	case BinomialDD:
		return func(rrel, step int) int {
			q := rrel + (1 << uint(step))
			if q >= p {
				return -1
			}
			return q
		}
	case BinomialDH:
		return func(rrel, step int) int {
			q := rrel + (1 << uint(s-1-step))
			if q >= p {
				return -1
			}
			return q
		}
	}
	panic("core: unknown tree kind")
}

// build runs the step-by-step BFS construction shared by all kinds: at every
// step each rank already in the tree computes its designated partner and
// adopts it as a child unless it was already reached (Appendix C's prune) or
// out of range.
func (t *Tree) build(partner partnerFunc) {
	p, root, s := t.P, t.Root, t.Steps
	t.Parent = make([]int, p)
	t.JoinStep = make([]int, p)
	t.Children = make([][]Edge, p)
	for r := range t.Parent {
		t.Parent[r] = -1
		t.JoinStep[r] = -1
	}
	reached := make([]bool, p)
	reached[root] = true
	order := []int{root} // ranks in join order; join order is BFS order
	for step := 0; step < s; step++ {
		// Snapshot: only ranks joined before this step send during it.
		joined := len(order)
		for idx := 0; idx < joined; idx++ {
			sender := order[idx]
			if sender != root && t.JoinStep[sender] >= step {
				continue
			}
			rrel := Mod(sender-root, p)
			qrel := partner(rrel, step)
			if qrel < 0 || qrel >= p {
				continue
			}
			q := Mod(qrel+root, p)
			if reached[q] {
				continue // Appendix C: prune the subtree reached later.
			}
			reached[q] = true
			t.Parent[q] = sender
			t.JoinStep[q] = step
			t.Children[sender] = append(t.Children[sender], Edge{Step: step, Child: q})
			order = append(order, q)
		}
	}
	return
}

func (t *Tree) spanning() bool {
	n := 1 // root
	for r := 0; r < t.P; r++ {
		if r != t.Root && t.Parent[r] >= 0 {
			n++
		}
	}
	return n == t.P
}

// foldedTree builds a Bine tree over p' = 2^floor(log2 p) ranks and attaches
// the remaining p−p' ranks as leaves in one extra final step: extra rank
// root+p'+i is served by root+i (Appendix C's fallback for odd p).
func foldedTree(kind Kind, p, root int) (*Tree, error) {
	pp := 1 << uint(Log2Floor(p))
	inner, err := NewTree(kind, pp, 0)
	if err != nil {
		return nil, err
	}
	s := inner.Steps
	t := &Tree{Kind: kind, P: p, Root: root, Steps: s + 1}
	t.Parent = make([]int, p)
	t.JoinStep = make([]int, p)
	t.Children = make([][]Edge, p)
	abs := func(rel int) int { return Mod(rel+root, p) }
	for rel := 0; rel < pp; rel++ {
		r := abs(rel)
		if rel == 0 {
			t.Parent[r] = -1
			t.JoinStep[r] = -1
		} else {
			t.Parent[r] = abs(inner.Parent[rel])
			t.JoinStep[r] = inner.JoinStep[rel]
		}
		for _, e := range inner.Children[rel] {
			t.Children[r] = append(t.Children[r], Edge{Step: e.Step, Child: abs(e.Child)})
		}
	}
	for rel := pp; rel < p; rel++ {
		r, parent := abs(rel), abs(rel-pp)
		t.Parent[r] = parent
		t.JoinStep[r] = s
		t.Children[parent] = append(t.Children[parent], Edge{Step: s, Child: r})
	}
	return t, nil
}

// Subtree returns the set of ranks in the subtree rooted at r (including r),
// in ascending rank order.
func (t *Tree) Subtree(r int) []int {
	var out []int
	var walk func(int)
	walk = func(v int) {
		out = append(out, v)
		for _, e := range t.Children[v] {
			walk(e.Child)
		}
	}
	walk(r)
	sort.Ints(out)
	return out
}

// SubtreeRanges returns the ranks of the subtree rooted at r grouped into
// maximal circularly contiguous runs over the ring [0, p). Distance-halving
// Bine subtrees always form a single run (Sec. 2.3.3 / Fig. 7);
// distance-doubling subtrees generally do not (Sec. 3.2.3), which is exactly
// the non-contiguity the strategies of Sec. 4.3.1 deal with.
func (t *Tree) SubtreeRanges(r int) []CircRange {
	return CircRuns(t.Subtree(r), t.P)
}

// Depth returns the number of edges on the path from the root to rank r.
func (t *Tree) Depth(r int) int {
	d := 0
	for v := r; t.Parent[v] >= 0; v = t.Parent[v] {
		d++
	}
	return d
}

// MaxModDist returns the largest modular distance between any communicating
// pair of the tree (used to validate the locality claims of Sec. 2.4).
func (t *Tree) MaxModDist() int {
	max := 0
	for r := 0; r < t.P; r++ {
		if p := t.Parent[r]; p >= 0 {
			if d := ModDist(r, p, t.P); d > max {
				max = d
			}
		}
	}
	return max
}

// StepSenders returns, for the given broadcast step, all (sender, receiver)
// pairs active at that step, in deterministic order.
func (t *Tree) StepSenders(step int) [][2]int {
	var out [][2]int
	for r := 0; r < t.P; r++ {
		for _, e := range t.Children[r] {
			if e.Step == step {
				out = append(out, [2]int{r, e.Child})
			}
		}
	}
	return out
}

// CircRange is a circularly contiguous run of ranks (or block indices) on the
// ring [0, P): the members are Start, Start+1, …, Start+Len−1, all modulo P.
type CircRange struct {
	Start, Len int
}

// Contains reports whether v lies within the run on a ring of p elements.
func (c CircRange) Contains(v, p int) bool {
	return Mod(v-c.Start, p) < c.Len
}

// Members lists the run's elements in circular order on a ring of p elements.
func (c CircRange) Members(p int) []int {
	out := make([]int, c.Len)
	for i := range out {
		out[i] = Mod(c.Start+i, p)
	}
	return out
}

// CircRuns groups a set of distinct values in [0, p) into maximal circularly
// contiguous runs, ordered by ascending start. The input need not be sorted.
func CircRuns(vals []int, p int) []CircRange {
	if len(vals) == 0 {
		return nil
	}
	if len(vals) == p {
		return []CircRange{{Start: 0, Len: p}}
	}
	sorted := append([]int(nil), vals...)
	sort.Ints(sorted)
	var runs []CircRange
	start, length := sorted[0], 1
	for _, v := range sorted[1:] {
		if v == start+length {
			length++
			continue
		}
		runs = append(runs, CircRange{Start: start, Len: length})
		start, length = v, 1
	}
	runs = append(runs, CircRange{Start: start, Len: length})
	// Merge a wrap-around: last run ending at p−1 joins a first run starting
	// at 0.
	if len(runs) > 1 {
		first, last := runs[0], runs[len(runs)-1]
		if first.Start == 0 && last.Start+last.Len == p {
			runs = runs[1 : len(runs)-1]
			runs = append(runs, CircRange{Start: last.Start, Len: last.Len + first.Len})
		}
	}
	return runs
}
