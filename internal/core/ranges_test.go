package core

import "testing"

func TestGatherRangePaperExamples(t *testing.T) {
	// Sec. 4.2: "in the first step of the scatter, rank 0 has [a,b] = [6,5]"
	// for p = 8, i.e. the full circular range starting at 6.
	r0 := ScatterRange(0, 8, 0)
	if r0.Start != 6 || r0.Len != 8 {
		t.Errorf("scatter start range %+v, want start 6 len 8", r0)
	}
	// Sec. 4.2: rank 0 sent the sub-buffer [2,5] in the gather's last step,
	// so before that merge it held [6,1].
	r2 := GatherRange(0, 8, 2)
	if r2.Start != 6 || r2.Len != 4 {
		t.Errorf("range after 2 merges %+v, want [6,1]", r2)
	}
	// Sec. 4.1: "at step 1, rank 0 with blocks [0,1] receives [6,7]".
	r1 := GatherRange(0, 8, 1)
	if r1.Start != 0 || r1.Len != 2 {
		t.Errorf("range after 1 merge %+v, want [0,1]", r1)
	}
}

func TestGatherRangesMatchSubtrees(t *testing.T) {
	// The closed-form range at a rank's send time must equal its subtree in
	// the distance-halving Bine tree — the two derivations of Sec. 4.1.
	for _, p := range []int{2, 4, 8, 16, 64, 256} {
		tr := MustTree(BineDH, p, 0)
		s := tr.Steps
		for r := 0; r < p; r++ {
			merges := s // root merges at every gather step
			if r != 0 {
				merges = s - 1 - tr.JoinStep[r]
			}
			got := GatherRange(r, p, merges)
			want := tr.SubtreeRanges(r)
			if len(want) != 1 {
				t.Fatalf("p=%d rank %d: subtree not a single run", p, r)
			}
			if got.Len == p && want[0].Len == p {
				continue // full ring: any start describes the same set
			}
			if got != want[0] {
				t.Errorf("p=%d rank %d: closed form %+v, subtree %+v", p, r, got, want[0])
			}
		}
	}
}

func TestGatherRangeGrowth(t *testing.T) {
	// Each merge doubles the holding: after t merges the range has 2^t
	// blocks.
	for _, p := range []int{8, 32, 128} {
		s := Log2Ceil(p)
		for r := 0; r < p; r += p/8 + 1 {
			for steps := 0; steps <= s; steps++ {
				if got, want := GatherRange(r, p, steps).Len, 1<<uint(steps); got != want {
					t.Fatalf("p=%d r=%d steps=%d: len %d want %d", p, r, steps, got, want)
				}
			}
		}
	}
}

func TestScatterRangeShrinks(t *testing.T) {
	p := 16
	s := Log2Ceil(p)
	prev := ScatterRange(0, p, 0)
	if prev.Len != p {
		t.Fatalf("scatter starts with %d blocks", prev.Len)
	}
	for step := 1; step <= s; step++ {
		cur := ScatterRange(0, p, step)
		if cur.Len*2 != prev.Len {
			t.Fatalf("step %d: len %d after %d", step, cur.Len, prev.Len)
		}
		// The remaining range is a sub-range of the previous one.
		for _, m := range cur.Members(p) {
			if !prev.Contains(m, p) {
				t.Fatalf("step %d: block %d appeared from nowhere", step, m)
			}
		}
		prev = cur
	}
}

func TestGatherDirectionAlternation(t *testing.T) {
	if !GatherExtendsUpFirst(0) || GatherExtendsUpFirst(1) {
		t.Error("first-extension parity")
	}
	// Rank 3 (odd, p=8) first merges {2} (down), then {4,5} (up).
	if r := GatherRange(3, 8, 1); r.Start != 2 || r.Len != 2 {
		t.Errorf("rank 3 after 1 merge: %+v", r)
	}
	if r := GatherRange(3, 8, 2); r.Start != 2 || r.Len != 4 {
		t.Errorf("rank 3 after 2 merges: %+v", r)
	}
}
