// Package core implements the paper's primary contribution: the construction
// of Bine (binomial negabinary) trees and butterflies, together with the
// negabinary arithmetic they are built on.
//
// The package provides:
//
//   - negabinary (base −2) encoding and decoding (Sec. 2.3.1 of the paper);
//   - the rank↔negabinary maps rank2nb / nb2rank for a communicator of p ranks;
//   - the ν (nu) virtual-rank mapping used by distance-doubling Bine trees
//     and butterflies (Sec. 3.2.1 and Appendix A);
//   - tree builders for Bine and binomial trees in both distance-halving and
//     distance-doubling flavours, including the non-power-of-two handling of
//     Appendix C and the torus-optimized construction of Appendix D;
//   - butterfly partner schedules (Eq. 4 and Eq. 5).
//
// All identifiers use the paper's notation where practical: p is the number
// of ranks, s = ceil(log2 p) the number of steps, r a rank identifier.
package core

import "math/bits"

// oddMask has ones in all odd bit positions (…1010). Adding it and XOR-ing it
// back converts two's complement to negabinary: in base −2 every odd position
// contributes a negated power of two, and the add/XOR pair performs exactly
// the required borrow propagation.
const oddMask uint64 = 0xAAAAAAAAAAAAAAAA

// EncodeNB returns the negabinary (base −2) representation of v as a bit set:
// bit i of the result is the coefficient of (−2)^i.
func EncodeNB(v int64) uint64 {
	return (uint64(v) + oddMask) ^ oddMask
}

// DecodeNB is the inverse of EncodeNB: it evaluates a negabinary bit string,
// i.e. returns the sum of (−2)^i over all set bits i.
func DecodeNB(nb uint64) int64 {
	return int64((nb ^ oddMask) - oddMask)
}

// EvenOnes returns the s-bit pattern 0101…01 with ones in all even positions
// below s. Interpreted as negabinary it is the largest value representable in
// s bits (the paper's m, Sec. 2.3.1).
func EvenOnes(s int) uint64 {
	return ^oddMask & Ones(s)
}

// MaxPos returns m, the largest non-negative integer representable in s
// negabinary bits (e.g. MaxPos(6) = 21 = 010101₋₂).
func MaxPos(s int) int64 {
	return DecodeNB(EvenOnes(s))
}

// MinNeg returns the smallest (most negative) integer representable in s
// negabinary bits, obtained by setting ones in all odd positions below s.
func MinNeg(s int) int64 {
	return DecodeNB(oddMask & Ones(s))
}

// Ones returns a mask with the k least significant bits set.
func Ones(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// Log2 returns log2(p) for a power of two p, and ok=false otherwise.
func Log2(p int) (s int, ok bool) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, false
	}
	return bits.TrailingZeros64(uint64(p)), true
}

// Log2Ceil returns ceil(log2(p)); it is the number of steps s of a tree or
// butterfly collective over p ranks. Log2Ceil(1) = 0.
func Log2Ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len64(uint64(p - 1))
}

// Log2Floor returns floor(log2(p)) for p >= 1.
func Log2Floor(p int) int {
	if p < 1 {
		panic("core: Log2Floor of non-positive value")
	}
	return bits.Len64(uint64(p)) - 1
}

// RankToNB converts rank identifier r of a p-rank collective to its s-bit
// negabinary representation (the paper's rank2nb, Sec. 2.3.1): ranks in
// [0, m] use their own value, ranks above m (i.e. "to the left of rank 0" on
// the circle) use the negabinary encoding of r − p.
func RankToNB(r, p int) uint64 {
	s := Log2Ceil(p)
	if int64(r) <= MaxPos(s) {
		return EncodeNB(int64(r))
	}
	return EncodeNB(int64(r) - int64(p))
}

// NBToRank converts an s-bit negabinary representation back to a rank
// identifier in [0, p) (the paper's nb2rank): the decoded value, which may be
// negative, is reduced modulo p.
func NBToRank(nb uint64, p int) int {
	return Mod(int(DecodeNB(nb)), p)
}

// Mod returns v modulo p with a result always in [0, p).
func Mod(v, p int) int {
	m := v % p
	if m < 0 {
		m += p
	}
	return m
}

// ModDist returns the modular (circular) distance between ranks r and q on a
// ring of p ranks: min((r−q) mod p, (q−r) mod p) (Sec. 2.2).
func ModDist(r, q, p int) int {
	d := Mod(r-q, p)
	if e := p - d; e < d {
		return e
	}
	return d
}

// TrailingIdentical returns u, the number of consecutive least significant
// bits of nb that are equal to each other within an s-bit window, starting
// from the least significant bit (Sec. 2.3.2). For example, with s = 4,
// u(1000) = 3 and u(1011) = 2. The result is in [1, s] for s >= 1.
func TrailingIdentical(nb uint64, s int) int {
	if s <= 0 {
		return 0
	}
	low := nb & 1
	u := 1
	for i := 1; i < s; i++ {
		if (nb>>uint(i))&1 != low {
			break
		}
		u++
	}
	return u
}

// Reverse reverses the s least significant bits of v (bit 0 swaps with bit
// s−1, and so on); bits at position s and above are discarded. It implements
// the paper's reverse() used by the permute and send strategies (Sec. 4.3.1).
func Reverse(v uint64, s int) uint64 {
	return bits.Reverse64(v) >> uint(64-s)
}

// HighestBit returns the position of the most significant set bit of v, or −1
// if v is zero.
func HighestBit(v uint64) int {
	return bits.Len64(v) - 1
}

// Nu returns ν(r, p), the virtual-rank representation used by
// distance-doubling Bine trees and butterflies (Sec. 3.2.1): with
// h(r) = rank2nb(p−r) for even r (h(0) = 0) and h(r) = rank2nb(r) for odd r,
// ν(r) = h(r) XOR (h(r) >> 1). For power-of-two p, ν is a bijection of
// [0, p) onto [0, p) (property-tested in this package).
func Nu(r, p int) uint64 {
	h := nuH(r, p)
	return h ^ (h >> 1)
}

func nuH(r, p int) uint64 {
	if r == 0 {
		return 0
	}
	if r%2 == 0 {
		return RankToNB(p-r, p)
	}
	return RankToNB(r, p)
}

// NuInverse returns the rank r in [0, p) with Nu(r, p) == v, for power-of-two
// p. The inverse of the Gray-style XOR shift is the running prefix XOR; the
// parity of h's least significant bit discriminates the even/odd branch of
// nuH.
func NuInverse(v uint64, p int) int {
	// Invert h ^ (h >> 1): h = v ^ (v>>1) ^ (v>>2) ^ … (prefix XOR of all
	// suffixes). Fold in log steps.
	h := v
	for shift := uint(1); shift < 64; shift <<= 1 {
		h ^= h >> shift
	}
	val := DecodeNB(h)
	if h&1 == 1 { // odd rank branch: h = rank2nb(r)
		return Mod(int(val), p)
	}
	// even rank branch: h = rank2nb(p − r) ⇒ r = p − val (mod p)
	return Mod(p-int(val), p)
}

// NuPermutation returns the full ν permutation for a power-of-two p:
// perm[r] = ν(r). The inverse permutation is returned alongside:
// inv[ν(r)] = r.
func NuPermutation(p int) (perm, inv []int) {
	perm = make([]int, p)
	inv = make([]int, p)
	for r := 0; r < p; r++ {
		v := int(Nu(r, p))
		perm[r] = v
		inv[v] = r
	}
	return perm, inv
}

// BineDelta returns the signed distance Σ_{k=0}^{j} (−2)^k = (1 − (−2)^{j+1})/3
// between communicating ranks at step j of a distance-doubling Bine butterfly
// (Eq. 5 / Appendix A). The magnitude roughly doubles with j: 1, −1, 3, −5,
// 11, −21, …
func BineDelta(j int) int64 {
	return int64(DecodeNB(Ones(j + 1)))
}

// BineDeltaDH returns the signed distance used at step i of a
// distance-halving Bine butterfly over s steps (Eq. 4): (1 − (−2)^{s−i})/3,
// i.e. BineDelta(s−i−1).
func BineDeltaDH(i, s int) int64 {
	return BineDelta(s - i - 1)
}

// BinomialDelta returns the distance 2^{s−i−1} between communicating ranks at
// step i of a standard distance-halving binomial tree over s steps
// (Sec. 2.4.1).
func BinomialDelta(i, s int) int64 {
	return int64(1) << uint(s-i-1)
}
