package core

import "fmt"

// ButterflyKind identifies a butterfly (pairwise-exchange) schedule family.
type ButterflyKind int

const (
	// BflyBineDH is the distance-halving Bine butterfly of Sec. 3.1
	// (Eq. 4): distances shrink roughly by half at each step. Used by the
	// "two transmissions" strategy of Sec. 4.3.1.
	BflyBineDH ButterflyKind = iota
	// BflyBineDD is the distance-doubling Bine butterfly (Eq. 5 /
	// Appendix A): distances grow, so the early, data-heavy steps of a
	// reduce-scatter stay local. The Bine allgather is its exact reverse.
	BflyBineDD
	// BflyBinomialDH is the classic recursive-halving butterfly: at step i
	// ranks exchange with the partner differing in bit s−1−i, so the first
	// exchange spans distance p/2.
	BflyBinomialDH
	// BflyBinomialDD is the classic recursive-doubling butterfly: at step i
	// ranks exchange with the partner differing in bit i.
	BflyBinomialDD
	// BflySwing is the Swing schedule (De Sensi et al., NSDI'24), which the
	// paper compares against: same ±Σ(−2)^k distances as the
	// distance-doubling Bine butterfly, but its blocks are always
	// transmitted non-contiguously (no permute/send optimization applies).
	BflySwing
)

// String returns the conventional short name of the butterfly kind.
func (k ButterflyKind) String() string {
	switch k {
	case BflyBineDH:
		return "bfly-bine-dh"
	case BflyBineDD:
		return "bfly-bine-dd"
	case BflyBinomialDH:
		return "bfly-binomial-dh"
	case BflyBinomialDD:
		return "bfly-binomial-dd"
	case BflySwing:
		return "bfly-swing"
	}
	return fmt.Sprintf("ButterflyKind(%d)", int(k))
}

// IsBine reports whether the kind uses Bine (negabinary) partner schedules,
// as opposed to classic binomial bit flips.
func (k ButterflyKind) IsBine() bool {
	return k == BflyBineDH || k == BflyBineDD || k == BflySwing
}

func (k ButterflyKind) isBine() bool { return k.IsBine() }

// Butterfly describes a p-rank pairwise exchange schedule: at every one of
// the s = log2(p) steps each rank exchanges data with exactly one partner,
// and the pairing is symmetric (Partner(Partner(r, i), i) == r).
//
// A Bine butterfly is the superposition of p Bine trees: even rank r runs
// the tree rooted at 0 rotated right by r positions, odd rank r runs it
// mirrored (Sec. 3.1). Block bookkeeping therefore works on rank *offsets*
// from each rank: rank r owns/sends blocks r±a, with the offset sets defined
// by the negabinary representation of a (distance-halving) or by ν(a)
// (distance-doubling). Binomial butterflies use the classic absolute-index
// hypercube bookkeeping.
type Butterfly struct {
	Kind ButterflyKind
	P    int
	S    int

	// For Bine kinds: per-step offset sets, precomputed at construction
	// (they are rank-independent). sendOff[i] lists the offsets a whose
	// blocks are transmitted at step i; keepOff[i] lists the offsets still
	// owned after step i. Both are in deterministic (ascending offset)
	// order.
	sendOff, keepOff [][]int
}

// NewButterfly builds a butterfly schedule over p ranks; p must be a power
// of two (non-power-of-two collectives fold to a power of two before using a
// butterfly, following Appendix C).
func NewButterfly(kind ButterflyKind, p int) (*Butterfly, error) {
	s, ok := Log2(p)
	if !ok {
		return nil, fmt.Errorf("core: butterfly over non-power-of-two p=%d", p)
	}
	switch kind {
	case BflyBineDH, BflyBineDD, BflyBinomialDH, BflyBinomialDD, BflySwing:
	default:
		return nil, fmt.Errorf("core: unknown butterfly kind %v", kind)
	}
	b := &Butterfly{Kind: kind, P: p, S: s}
	if kind.isBine() {
		b.sendOff = make([][]int, s)
		b.keepOff = make([][]int, s)
		kept := make([]int, 0, p)
		for a := 0; a < p; a++ {
			kept = append(kept, a)
		}
		for i := 0; i < s; i++ {
			var nextKept []int
			for _, a := range kept {
				switch {
				case b.offsetSent(a, i):
					b.sendOff[i] = append(b.sendOff[i], a)
				case b.offsetKeeps(a, i):
					nextKept = append(nextKept, a)
				}
			}
			kept = nextKept
			b.keepOff[i] = kept
		}
	}
	return b, nil
}

// SendOffsets returns the rank offsets transmitted at step i of a
// reduce-scatter (Bine kinds only); rank r's transmitted blocks are
// r±offset. The slice is shared: callers must not modify it.
func (b *Butterfly) SendOffsets(i int) []int { return b.sendOff[i] }

// KeepOffsets returns the rank offsets still owned after step i (Bine kinds
// only). The slice is shared: callers must not modify it.
func (b *Butterfly) KeepOffsets(i int) []int { return b.keepOff[i] }

// SendBlocks returns rank r's step-i transmitted blocks in the fixed
// offset order both peers can derive independently (no sorting); Bine kinds
// only. Execution paths use this; SendSet provides the sorted view.
func (b *Butterfly) SendBlocks(r, i int) []int {
	off := b.sendOff[i]
	out := make([]int, len(off))
	for k, a := range off {
		out[k] = b.blockAt(r, a)
	}
	return out
}

// KeepBlocks returns rank r's owned blocks after step i in fixed offset
// order (Bine kinds only).
func (b *Butterfly) KeepBlocks(r, i int) []int {
	if i < 0 {
		out := make([]int, b.P)
		for k := range out {
			out[k] = k
		}
		return out
	}
	off := b.keepOff[i]
	out := make([]int, len(off))
	for k, a := range off {
		out[k] = b.blockAt(r, a)
	}
	return out
}

// MustButterfly is NewButterfly, panicking on error.
func MustButterfly(kind ButterflyKind, p int) *Butterfly {
	b, err := NewButterfly(kind, p)
	if err != nil {
		panic(err)
	}
	return b
}

// Partner returns the rank that r exchanges with at step i ∈ [0, S).
//
// Bine kinds evaluate the paper's closed forms — Eq. 4 (distance-halving)
// and Eq. 5 (distance-doubling): q = (r ± δ) mod p with + for even and − for
// odd ranks. Binomial kinds flip the step bit of the rank index.
func (b *Butterfly) Partner(r, i int) int {
	switch b.Kind {
	case BflyBineDH:
		return b.signed(r, int(BineDeltaDH(i, b.S)))
	case BflyBineDD, BflySwing:
		return b.signed(r, int(BineDelta(i)))
	case BflyBinomialDH:
		return r ^ (1 << uint(b.S-1-i))
	default: // BflyBinomialDD
		return r ^ (1 << uint(i))
	}
}

func (b *Butterfly) signed(r, d int) int {
	if r%2 == 0 {
		return Mod(r+d, b.P)
	}
	return Mod(r-d, b.P)
}

// ModDistAt returns the modular distance between partners at step i (the
// same for every rank of the step).
func (b *Butterfly) ModDistAt(i int) int {
	return ModDist(0, b.Partner(0, i), b.P)
}

// offsetKeeps reports whether offset a (from the owning rank) is still owned
// after step i of a reduce-scatter running down this butterfly.
//
// Distance-doubling (Sec. 3.2.3): the kept offsets are those whose ν has the
// i+1 least significant bits all zero; the offsets sent at step i have those
// bits equal to 2^i (the ν suffix of the step-i child's subtree).
// Distance-halving (Sec. 2.3.3): the same with the i+1 *most* significant
// negabinary bits.
func (b *Butterfly) offsetKeeps(a, i int) bool {
	switch b.Kind {
	case BflyBineDD, BflySwing:
		return Nu(a, b.P)&Ones(i+1) == 0
	case BflyBineDH:
		return RankToNB(a, b.P)>>uint(b.S-1-i) == 0
	}
	panic("core: offsetKeeps on binomial butterfly")
}

func (b *Butterfly) offsetSent(a, i int) bool {
	switch b.Kind {
	case BflyBineDD, BflySwing:
		return Nu(a, b.P)&Ones(i+1) == 1<<uint(i)
	case BflyBineDH:
		return RankToNB(a, b.P)>>uint(b.S-1-i) == 1
	}
	panic("core: offsetSent on binomial butterfly")
}

// blockAt maps an offset a to the absolute block index for rank r: r+a for
// even ranks, r−a for odd ranks (mirrored trees, Sec. 3.1).
func (b *Butterfly) blockAt(r, a int) int {
	if r%2 == 0 {
		return Mod(r+a, b.P)
	}
	return Mod(r-a, b.P)
}

func (b *Butterfly) binomialBit(i int) int {
	if b.Kind == BflyBinomialDH {
		return b.S - 1 - i
	}
	return i
}

// SendSet returns the blocks rank r transmits to its partner at step i of a
// reduce-scatter, in ascending block-index order. Block blk is the block
// destined for rank blk; SendSet(r, i) ∪ KeepSet(r, i) = KeepSet(r, i−1).
//
// For an allgather run as the mirror image (step order reversed, data
// growing) the same sets describe the blocks received.
func (b *Butterfly) SendSet(r, i int) []int {
	var out []int
	if b.Kind.isBine() {
		for a := 0; a < b.P; a++ {
			if b.offsetSent(a, i) {
				out = append(out, b.blockAt(r, a))
			}
		}
		sortInts(out)
		return out
	}
	// Binomial: blocks matching r on all previous step bits and matching
	// the partner on the current one.
	for blk := 0; blk < b.P; blk++ {
		if b.binomialOwnedBefore(r, blk, i) && (blk>>uint(b.binomialBit(i)))&1 != (r>>uint(b.binomialBit(i)))&1 {
			out = append(out, blk)
		}
	}
	return out
}

// KeepSet returns the blocks rank r still owns after steps 0..i of a
// reduce-scatter (ascending block-index order). KeepSet(r, −1) is every
// block.
func (b *Butterfly) KeepSet(r, i int) []int {
	var out []int
	if b.Kind.isBine() {
		for a := 0; a < b.P; a++ {
			owned := true
			for j := 0; j <= i; j++ {
				if !b.offsetKeeps(a, j) {
					owned = false
					break
				}
			}
			if owned {
				out = append(out, b.blockAt(r, a))
			}
		}
		sortInts(out)
		return out
	}
	for blk := 0; blk < b.P; blk++ {
		if b.binomialOwnedBefore(r, blk, i+1) {
			out = append(out, blk)
		}
	}
	return out
}

func (b *Butterfly) binomialOwnedBefore(r, blk, i int) bool {
	for j := 0; j < i; j++ {
		bit := uint(b.binomialBit(j))
		if (blk>>bit)&1 != (r>>bit)&1 {
			return false
		}
	}
	return true
}

// FinalBlock returns the block rank r owns after a full reduce-scatter down
// this butterfly. It is r for every kind: Bine offsets end at a = 0,
// binomial indices end fully constrained to r.
func (b *Butterfly) FinalBlock(r int) int {
	if b.Kind.isBine() {
		return b.blockAt(r, 0)
	}
	return r
}

// PermutedPosition returns where the permute strategy of Sec. 4.3.1 places
// block blk: position reverse(ν(blk)) for Bine kinds, which turns every
// distance-doubling send set into a contiguous position range (Fig. 8). For
// binomial kinds the identity placement is already contiguous under the
// recursive-halving bit order and is returned unchanged.
func (b *Butterfly) PermutedPosition(blk int) int {
	switch b.Kind {
	case BflyBineDH, BflyBineDD, BflySwing:
		return int(Reverse(Nu(blk, b.P), b.S))
	case BflyBinomialDD:
		// The recursive-doubling bit order walks bits LSB-first; reversing
		// the block index makes its halves contiguous, mirroring the Bine
		// case.
		return int(Reverse(uint64(blk), b.S))
	default:
		return blk
	}
}

// PermutedInverse returns the block stored at the given permuted position.
func (b *Butterfly) PermutedInverse(pos int) int {
	switch b.Kind {
	case BflyBineDH, BflyBineDD, BflySwing:
		return NuInverse(Reverse(uint64(pos), b.S), b.P)
	case BflyBinomialDD:
		return int(Reverse(uint64(pos), b.S))
	default:
		return pos
	}
}

func sortInts(v []int) {
	// Insertion sort: the sets here are small and often nearly sorted;
	// avoids pulling package sort into this hot path.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
