package core

import (
	"testing"
)

var allKinds = []Kind{BineDH, BineDD, BinomialDD, BinomialDH}

func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	p := tr.P
	// Spanning: every non-root rank has a parent and a join step.
	for r := 0; r < p; r++ {
		if r == tr.Root {
			if tr.Parent[r] != -1 || tr.JoinStep[r] != -1 {
				t.Fatalf("%v p=%d: root has parent", tr.Kind, p)
			}
			continue
		}
		if tr.Parent[r] < 0 {
			t.Fatalf("%v p=%d: rank %d unreached", tr.Kind, p, r)
		}
		if tr.JoinStep[r] < 0 || tr.JoinStep[r] >= tr.Steps {
			t.Fatalf("%v p=%d: rank %d joins at step %d of %d", tr.Kind, p, r, tr.JoinStep[r], tr.Steps)
		}
		// A parent must hold the data before it forwards it.
		par := tr.Parent[r]
		if par != tr.Root && tr.JoinStep[par] >= tr.JoinStep[r] {
			t.Fatalf("%v p=%d: rank %d (step %d) has parent %d joining later (step %d)",
				tr.Kind, p, r, tr.JoinStep[r], par, tr.JoinStep[par])
		}
	}
	// Children edges are consistent with Parent/JoinStep and step-ordered.
	edges := 0
	for r := 0; r < p; r++ {
		last := -1
		for _, e := range tr.Children[r] {
			edges++
			if tr.Parent[e.Child] != r {
				t.Fatalf("%v p=%d: edge %d→%d not mirrored in Parent", tr.Kind, p, r, e.Child)
			}
			if tr.JoinStep[e.Child] != e.Step {
				t.Fatalf("%v p=%d: edge step mismatch", tr.Kind, p)
			}
			if e.Step <= last {
				t.Fatalf("%v p=%d: children of %d not step-ordered", tr.Kind, p, r)
			}
			last = e.Step
		}
	}
	if edges != p-1 {
		t.Fatalf("%v p=%d: %d edges, want %d", tr.Kind, p, edges, p-1)
	}
	// No rank sends more than once per step; senders hold data beforehand.
	for step := 0; step < tr.Steps; step++ {
		busy := map[int]bool{}
		for _, pair := range tr.StepSenders(step) {
			src, dst := pair[0], pair[1]
			if busy[src] || busy[dst] {
				t.Fatalf("%v p=%d step %d: rank busy twice", tr.Kind, p, step)
			}
			busy[src] = true
			busy[dst] = true
		}
	}
}

func TestTreeInvariantsPowerOfTwo(t *testing.T) {
	for _, kind := range allKinds {
		for _, p := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
			for _, root := range []int{0, 1, p / 2, p - 1} {
				if root >= p {
					continue
				}
				tr := MustTree(kind, p, root)
				checkTreeInvariants(t, tr)
			}
		}
	}
}

func TestTreeInvariantsNonPowerOfTwo(t *testing.T) {
	for _, kind := range allKinds {
		for p := 2; p <= 70; p++ {
			tr, err := NewTree(kind, p, 0)
			if err != nil {
				t.Fatalf("%v p=%d: %v", kind, p, err)
			}
			checkTreeInvariants(t, tr)
		}
	}
}

func TestTreeArbitraryRootsNonPowerOfTwo(t *testing.T) {
	for _, kind := range allKinds {
		for _, p := range []int{6, 10, 12, 24, 36} {
			for root := 0; root < p; root++ {
				tr, err := NewTree(kind, p, root)
				if err != nil {
					t.Fatalf("%v p=%d root=%d: %v", kind, p, root, err)
				}
				checkTreeInvariants(t, tr)
			}
		}
	}
}

func TestBineDHMatchesPaperFigure3(t *testing.T) {
	// Order-3 distance-halving Bine tree rooted at 0 (Fig. 3): step 0 sends
	// 0→3; step 1 sends 0→7 and 3→4; step 2 sends 0→1, 3→2, 7→6, 4→5.
	tr := MustTree(BineDH, 8, 0)
	want := map[int][2]int{ // child → {parent, step}
		3: {0, 0},
		7: {0, 1}, 4: {3, 1},
		1: {0, 2}, 2: {3, 2}, 6: {7, 2}, 5: {4, 2},
	}
	for child, w := range want {
		if tr.Parent[child] != w[0] || tr.JoinStep[child] != w[1] {
			t.Errorf("rank %d: parent %d step %d, want parent %d step %d",
				child, tr.Parent[child], tr.JoinStep[child], w[0], w[1])
		}
	}
}

func TestBineDHMatchesPaperFigure4(t *testing.T) {
	// 16-node tree (Fig. 4): rank 8 has rank2nb = 1000, joins at step
	// i = s−u = 4−3 = 1, and at step 2 sends to rank 7 (1011).
	tr := MustTree(BineDH, 16, 0)
	if RankToNB(8, 16) != 0b1000 {
		t.Fatalf("rank2nb(8,16) = %b", RankToNB(8, 16))
	}
	if tr.JoinStep[8] != 1 {
		t.Errorf("rank 8 joins at %d, want 1", tr.JoinStep[8])
	}
	found := false
	for _, e := range tr.Children[8] {
		if e.Step == 2 && e.Child == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("rank 8 children %v: want edge to 7 at step 2", tr.Children[8])
	}
	// Join step must equal s−u for every rank (Sec. 2.3.2).
	s := 4
	for r := 1; r < 16; r++ {
		u := TrailingIdentical(RankToNB(r, 16), s)
		if got, want := tr.JoinStep[r], s-u; got != want {
			t.Errorf("rank %d: join step %d, want s-u = %d", r, got, want)
		}
	}
}

func TestBineDDMatchesPaperFigure6(t *testing.T) {
	// Distance-doubling tree rooted at 0 (Fig. 6, right, dashed): 0→1 at
	// step 0, 0→7 and 1→2 at step 1, 0→3, 1→6, 7→4, 2→5 at step 2.
	tr := MustTree(BineDD, 8, 0)
	want := map[int][2]int{
		1: {0, 0},
		7: {0, 1}, 2: {1, 1},
		3: {0, 2}, 6: {1, 2}, 4: {7, 2}, 5: {2, 2},
	}
	for child, w := range want {
		if tr.Parent[child] != w[0] || tr.JoinStep[child] != w[1] {
			t.Errorf("rank %d: parent %d step %d, want %v", child, tr.Parent[child], tr.JoinStep[child], w)
		}
	}
	// Join step is the highest set bit of ν (Sec. 3.2.2); e.g. rank 2 has
	// ν = 011 and is reached at step 1.
	for r := 1; r < 8; r++ {
		if got, want := tr.JoinStep[r], HighestBit(Nu(r, 8)); got != want {
			t.Errorf("rank %d: join %d, want hsb(ν) = %d", r, got, want)
		}
	}
}

func TestBinomialDDMatchesFigure1(t *testing.T) {
	// Fig. 1 top: distance-doubling broadcast over 8 ranks: 0→1, then 0→2
	// and 1→3, then distance-4 sends.
	tr := MustTree(BinomialDD, 8, 0)
	if tr.Parent[1] != 0 || tr.JoinStep[1] != 0 {
		t.Error("rank 1")
	}
	if tr.Parent[2] != 0 || tr.JoinStep[2] != 1 {
		t.Error("rank 2")
	}
	if tr.Parent[3] != 1 || tr.JoinStep[3] != 1 {
		t.Error("rank 3")
	}
	for _, r := range []int{4, 5, 6, 7} {
		if tr.JoinStep[r] != 2 {
			t.Errorf("rank %d joins at %d, want 2", r, tr.JoinStep[r])
		}
	}
}

func TestBinomialDHMatchesFigure1(t *testing.T) {
	// Fig. 1 bottom: distance-halving broadcast: 0→4, then 0→2 and 4→6,
	// then odd ranks.
	tr := MustTree(BinomialDH, 8, 0)
	if tr.Parent[4] != 0 || tr.JoinStep[4] != 0 {
		t.Error("rank 4")
	}
	if tr.Parent[2] != 0 || tr.JoinStep[2] != 1 {
		t.Error("rank 2")
	}
	if tr.Parent[6] != 4 || tr.JoinStep[6] != 1 {
		t.Error("rank 6")
	}
	for _, r := range []int{1, 3, 5, 7} {
		if tr.JoinStep[r] != 2 {
			t.Errorf("rank %d joins at %d, want 2", r, tr.JoinStep[r])
		}
	}
}

func TestBineDHSubtreesCircularlyContiguous(t *testing.T) {
	// Sec. 2.3.3 / Fig. 7: distance-halving Bine subtrees are contiguous on
	// the rank circle.
	for _, p := range []int{4, 8, 16, 32, 128, 512} {
		tr := MustTree(BineDH, p, 0)
		for r := 0; r < p; r++ {
			if runs := tr.SubtreeRanges(r); len(runs) != 1 {
				t.Errorf("p=%d rank %d: subtree splits into %d runs: %v", p, r, len(runs), runs)
			}
		}
	}
}

func TestBineDDSubtreesShareNuSuffix(t *testing.T) {
	// Sec. 3.2.3: all ranks of a distance-doubling subtree rooted at r share
	// the i+1 least significant ν bits, where i is r's join step.
	for _, p := range []int{8, 16, 64, 256} {
		tr := MustTree(BineDD, p, 0)
		for r := 0; r < p; r++ {
			if r == 0 {
				continue
			}
			i := tr.JoinStep[r]
			mask := Ones(i + 1)
			suffix := Nu(r, p) & mask
			for _, m := range tr.Subtree(r) {
				if Nu(m, p)&mask != suffix {
					t.Errorf("p=%d: subtree of %d member %d breaks ν suffix", p, r, m)
				}
			}
		}
	}
}

func TestTreeRotationInvariance(t *testing.T) {
	// A tree rooted at t is the tree rooted at 0 with all ranks shifted by t
	// (Sec. 2.2: "logical rotation").
	for _, kind := range allKinds {
		for _, p := range []int{8, 16, 64} {
			base := MustTree(kind, p, 0)
			for _, root := range []int{1, 3, p - 1} {
				tr := MustTree(kind, p, root)
				for r := 0; r < p; r++ {
					if r == root {
						continue
					}
					rel := Mod(r-root, p)
					wantParent := Mod(base.Parent[rel]+root, p)
					if tr.Parent[r] != wantParent || tr.JoinStep[r] != base.JoinStep[rel] {
						t.Fatalf("%v p=%d root=%d rank=%d: rotation broken", kind, p, root, r)
					}
				}
			}
		}
	}
}

func TestBineShorterMaxDistanceThanBinomial(t *testing.T) {
	// The headline locality property: per-step modular distances of Bine
	// trees are ≈2/3 of the binomial ones (Sec. 2.4.1). Check the per-step
	// maxima across the whole tree.
	for _, p := range []int{8, 16, 64, 256, 1024} {
		s, _ := Log2(p)
		bine := MustTree(BineDH, p, 0)
		binom := MustTree(BinomialDH, p, 0)
		for step := 0; step < s; step++ {
			maxDist := func(tr *Tree) int {
				m := 0
				for _, pr := range tr.StepSenders(step) {
					if d := ModDist(pr[0], pr[1], p); d > m {
						m = d
					}
				}
				return m
			}
			db, dn := maxDist(bine), maxDist(binom)
			if db >= dn && dn > 2 {
				t.Errorf("p=%d step %d: bine dist %d !< binomial dist %d", p, step, db, dn)
			}
			// Exact ratio check: 3·δbine = 2·δbinomial ± 1.
			diff := 3*db - 2*dn
			if diff != 1 && diff != -1 {
				t.Errorf("p=%d step %d: 3·%d vs 2·%d", p, step, db, dn)
			}
		}
	}
}

func TestFoldedTreeOddP(t *testing.T) {
	for _, p := range []int{3, 5, 7, 9, 21, 33} {
		tr, err := NewTree(BineDH, p, 0)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkTreeInvariants(t, tr)
		pp := 1 << uint(Log2Floor(p))
		for r := pp; r < p; r++ {
			if tr.Parent[r] != r-pp {
				t.Errorf("p=%d: extra rank %d parent %d, want %d", p, r, tr.Parent[r], r-pp)
			}
		}
	}
}

func TestSubtreePartitionsRanks(t *testing.T) {
	// The root's children subtrees plus the root itself partition [0,p).
	for _, kind := range allKinds {
		for _, p := range []int{8, 16, 24, 64} {
			tr, err := NewTree(kind, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{tr.Root: true}
			for _, e := range tr.Children[tr.Root] {
				for _, m := range tr.Subtree(e.Child) {
					if seen[m] {
						t.Fatalf("%v p=%d: rank %d in two subtrees", kind, p, m)
					}
					seen[m] = true
				}
			}
			if len(seen) != p {
				t.Fatalf("%v p=%d: subtrees cover %d ranks", kind, p, len(seen))
			}
		}
	}
}

func TestTreeDepthWithinSteps(t *testing.T) {
	for _, kind := range allKinds {
		for _, p := range []int{16, 64, 100} {
			tr, err := NewTree(kind, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < p; r++ {
				if d := tr.Depth(r); d > tr.Steps {
					t.Errorf("%v p=%d: depth(%d) = %d > steps %d", kind, p, r, d, tr.Steps)
				}
			}
		}
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := NewTree(BineDH, 0, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewTree(BineDH, 8, 8); err == nil {
		t.Error("root out of range should fail")
	}
	if _, err := NewTree(BineDH, 8, -1); err == nil {
		t.Error("negative root should fail")
	}
}

func TestSingleRankTree(t *testing.T) {
	tr := MustTree(BineDD, 1, 0)
	if tr.Steps != 0 || len(tr.Children[0]) != 0 {
		t.Error("degenerate tree")
	}
}
