package core

import "testing"

var allBflyKinds = []ButterflyKind{BflyBineDH, BflyBineDD, BflyBinomialDH, BflyBinomialDD, BflySwing}

func TestButterflyPairingSymmetric(t *testing.T) {
	for _, kind := range allBflyKinds {
		for _, p := range []int{2, 4, 8, 32, 256, 1024} {
			b := MustButterfly(kind, p)
			for i := 0; i < b.S; i++ {
				for r := 0; r < p; r++ {
					q := b.Partner(r, i)
					if q == r {
						t.Fatalf("%v p=%d: self-partner at step %d", kind, p, i)
					}
					if back := b.Partner(q, i); back != r {
						t.Fatalf("%v p=%d step %d: partner(%d)=%d but partner(%d)=%d",
							kind, p, i, r, q, q, back)
					}
				}
			}
		}
	}
}

func TestButterflyClosedForms(t *testing.T) {
	// Eq. 4 / Eq. 5 written out longhand: δ = (1 − (−2)^{s−i})/3 for
	// distance halving, (1 − (−2)^{i+1})/3 for distance doubling.
	pow := func(k int) int64 { // (−2)^k
		v := int64(1)
		for j := 0; j < k; j++ {
			v *= -2
		}
		return v
	}
	for _, p := range []int{2, 4, 8, 16, 64, 512} {
		s, _ := Log2(p)
		dh := MustButterfly(BflyBineDH, p)
		dd := MustButterfly(BflyBineDD, p)
		for i := 0; i < s; i++ {
			dDH := (1 - pow(s-i)) / 3
			dDD := (1 - pow(i+1)) / 3
			for r := 0; r < p; r++ {
				sign := int64(1)
				if r%2 == 1 {
					sign = -1
				}
				if got, want := dh.Partner(r, i), Mod(r+int(sign*dDH), p); got != want {
					t.Fatalf("dh p=%d step %d rank %d: %d want %d", p, i, r, got, want)
				}
				if got, want := dd.Partner(r, i), Mod(r+int(sign*dDD), p); got != want {
					t.Fatalf("dd p=%d step %d rank %d: %d want %d", p, i, r, got, want)
				}
			}
		}
	}
}

func TestButterflyFigure6Annotations(t *testing.T) {
	// Fig. 6 (left, distance-halving, p=8): at step 0 rank 2 communicates
	// with rank 5; (right, distance-doubling): at step 1 rank 5 communicates
	// with rank 6.
	dh := MustButterfly(BflyBineDH, 8)
	if q := dh.Partner(2, 0); q != 5 {
		t.Errorf("dh step 0 partner of 2 = %d, want 5", q)
	}
	dd := MustButterfly(BflyBineDD, 8)
	if q := dd.Partner(5, 1); q != 6 {
		t.Errorf("dd step 1 partner of 5 = %d, want 6", q)
	}
}

func TestButterflyDistancesMonotone(t *testing.T) {
	for _, p := range []int{8, 64, 1024} {
		dh := MustButterfly(BflyBineDH, p)
		dd := MustButterfly(BflyBineDD, p)
		for i := 1; i < dh.S; i++ {
			if dh.ModDistAt(i) > dh.ModDistAt(i-1) {
				t.Errorf("p=%d: dh distance grows at step %d", p, i)
			}
			if dd.ModDistAt(i) < dd.ModDistAt(i-1) {
				t.Errorf("p=%d: dd distance shrinks at step %d", p, i)
			}
		}
	}
}

func TestButterflyBineVsBinomialDistance(t *testing.T) {
	// Eq. 2: per-step Bine distances are ≈2/3 of the binomial ones.
	for _, p := range []int{8, 64, 1024, 4096} {
		bine := MustButterfly(BflyBineDH, p)
		binom := MustButterfly(BflyBinomialDH, p)
		for i := 0; i < bine.S; i++ {
			db, dn := bine.ModDistAt(i), binom.ModDistAt(i)
			if diff := 3*db - 2*dn; diff != 1 && diff != -1 {
				t.Errorf("p=%d step %d: 3·%d vs 2·%d", p, i, db, dn)
			}
		}
	}
}

func TestButterflyParityAlternation(t *testing.T) {
	// Bine butterflies always pair an even rank with an odd rank (Sec. 3.1).
	for _, kind := range []ButterflyKind{BflyBineDH, BflyBineDD, BflySwing} {
		b := MustButterfly(kind, 64)
		for i := 0; i < b.S; i++ {
			for r := 0; r < 64; r++ {
				if (r+b.Partner(r, i))%2 == 0 {
					t.Fatalf("%v step %d: ranks %d and %d share parity", kind, i, r, b.Partner(r, i))
				}
			}
		}
	}
}

func TestReduceScatterBlockBookkeeping(t *testing.T) {
	for _, kind := range allBflyKinds {
		for _, p := range []int{2, 4, 8, 16, 64} {
			b := MustButterfly(kind, p)
			for r := 0; r < p; r++ {
				owned := make(map[int]bool, p)
				for blk := 0; blk < p; blk++ {
					owned[blk] = true
				}
				for i := 0; i < b.S; i++ {
					send := b.SendSet(r, i)
					for _, blk := range send {
						if !owned[blk] {
							t.Fatalf("%v p=%d r=%d step %d: sending unowned block %d", kind, p, r, i, blk)
						}
						delete(owned, blk)
					}
					keep := b.KeepSet(r, i)
					if len(keep) != len(owned) {
						t.Fatalf("%v p=%d r=%d step %d: keep %d vs owned %d", kind, p, r, i, len(keep), len(owned))
					}
					for _, blk := range keep {
						if !owned[blk] {
							t.Fatalf("%v p=%d r=%d step %d: KeepSet holds unowned %d", kind, p, r, i, blk)
						}
					}
					// What the partner sends must be blocks this rank keeps.
					for _, blk := range b.SendSet(b.Partner(r, i), i) {
						if !owned[blk] {
							t.Fatalf("%v p=%d r=%d step %d: received block %d not kept", kind, p, r, i, blk)
						}
					}
				}
				if len(owned) != 1 || !owned[r] {
					t.Fatalf("%v p=%d: rank %d ends owning %v, want {%d}", kind, p, r, owned, r)
				}
				if b.FinalBlock(r) != r {
					t.Fatalf("%v p=%d: FinalBlock(%d) = %d", kind, p, r, b.FinalBlock(r))
				}
			}
		}
	}
}

func TestReduceScatterContributionCoverage(t *testing.T) {
	// Dataflow correctness of the butterfly bookkeeping, checked
	// symbolically: simulate the reduce-scatter with contribution *sets*
	// instead of values. After the last step, rank r's block r must hold
	// contributions from every rank exactly once.
	for _, kind := range allBflyKinds {
		for _, p := range []int{2, 4, 8, 16, 32, 128} {
			b := MustButterfly(kind, p)
			// contrib[r][blk] = set of ranks whose contribution to blk is
			// already folded into r's partial (bitmask over ranks).
			contrib := make([][]map[int]int, p)
			for r := 0; r < p; r++ {
				contrib[r] = make([]map[int]int, p)
				for blk := 0; blk < p; blk++ {
					contrib[r][blk] = map[int]int{r: 1}
				}
			}
			for i := 0; i < b.S; i++ {
				// Compute all sends of the step first (synchronous step).
				type msg struct {
					to, blk int
					set     map[int]int
				}
				var msgs []msg
				for r := 0; r < p; r++ {
					q := b.Partner(r, i)
					for _, blk := range b.SendSet(r, i) {
						cp := make(map[int]int, len(contrib[r][blk]))
						for k, v := range contrib[r][blk] {
							cp[k] = v
						}
						msgs = append(msgs, msg{to: q, blk: blk, set: cp})
					}
				}
				for _, m := range msgs {
					for k, v := range m.set {
						contrib[m.to][m.blk][k] += v
					}
				}
			}
			for r := 0; r < p; r++ {
				got := contrib[r][r]
				if len(got) != p {
					t.Fatalf("%v p=%d: rank %d block %d has %d contributions, want %d",
						kind, p, r, r, len(got), p)
				}
				for k, v := range got {
					if v != 1 {
						t.Fatalf("%v p=%d: rank %d block %d counts contribution of %d %d times",
							kind, p, r, r, k, v)
					}
				}
			}
		}
	}
}

func TestSendSetsHalve(t *testing.T) {
	for _, kind := range allBflyKinds {
		b := MustButterfly(kind, 32)
		for r := 0; r < 32; r++ {
			for i := 0; i < b.S; i++ {
				if got, want := len(b.SendSet(r, i)), 32>>(uint(i)+1); got != want {
					t.Fatalf("%v r=%d step %d: send %d blocks, want %d", kind, r, i, got, want)
				}
			}
		}
	}
}

func TestPermutedPositionsContiguousForDD(t *testing.T) {
	// Sec. 4.3.1 "Permute": placing block b at reverse(ν(b)) makes every
	// distance-doubling send set a contiguous (non-wrapping) range of
	// positions.
	for _, kind := range []ButterflyKind{BflyBineDD, BflyBinomialDH} {
		for _, p := range []int{2, 8, 16, 64, 256} {
			b := MustButterfly(kind, p)
			for r := 0; r < p; r++ {
				for i := 0; i < b.S; i++ {
					send := b.SendSet(r, i)
					positions := make([]int, len(send))
					for k, blk := range send {
						positions[k] = b.PermutedPosition(blk)
					}
					runs := CircRuns(positions, p)
					if len(runs) != 1 || runs[0].Start+runs[0].Len > p {
						t.Fatalf("%v p=%d r=%d step %d: permuted positions not linearly contiguous: %v",
							kind, p, r, i, runs)
					}
				}
			}
		}
	}
}

func TestPermuteExamplePaperFigure8(t *testing.T) {
	// Fig. 8: for p=8, at step 0 of the reduce-scatter rank 0 sends blocks
	// 1, 2, 5, 6 (those whose ν has LSB 1), which the permutation places at
	// positions 4–7.
	b := MustButterfly(BflyBineDD, 8)
	send := b.SendSet(0, 0)
	want := []int{1, 2, 5, 6}
	if len(send) != len(want) {
		t.Fatalf("send set %v", send)
	}
	for k := range want {
		if send[k] != want[k] {
			t.Fatalf("send set %v, want %v", send, want)
		}
	}
	pos := map[int]bool{}
	for _, blk := range send {
		pos[b.PermutedPosition(blk)] = true
	}
	for q := 4; q < 8; q++ {
		if !pos[q] {
			t.Errorf("permuted positions %v do not cover 4–7", pos)
		}
	}
	// Fig. 8 destination row: reverse(ν(i)) = [0,4,6,1,3,7,5,2].
	wantPos := []int{0, 4, 6, 1, 3, 7, 5, 2}
	for blk, w := range wantPos {
		if got := b.PermutedPosition(blk); got != w {
			t.Errorf("PermutedPosition(%d) = %d, want %d", blk, got, w)
		}
		if back := b.PermutedInverse(w); back != blk {
			t.Errorf("PermutedInverse(%d) = %d, want %d", w, back, blk)
		}
	}
}

func TestTwoTransmissionsBound(t *testing.T) {
	// Sec. 4.3.1 "Two Transmissions": in the distance-halving butterfly the
	// send sets split into at most two circularly contiguous runs.
	for _, p := range []int{4, 8, 16, 64, 256, 1024} {
		b := MustButterfly(BflyBineDH, p)
		for r := 0; r < p; r++ {
			for i := 0; i < b.S; i++ {
				runs := CircRuns(b.SendSet(r, i), p)
				if len(runs) > 2 {
					t.Fatalf("p=%d r=%d step %d: %d runs", p, r, i, len(runs))
				}
			}
		}
	}
}

func TestButterflyMatchesTreeSubtrees(t *testing.T) {
	// The butterfly is a superposition of trees: rank 0's send set at step i
	// of the distance-doubling butterfly must be exactly the subtree of the
	// step-i child of the distance-doubling Bine tree rooted at 0
	// (Sec. 4.3), and likewise for distance halving.
	cases := []struct {
		bfly ButterflyKind
		tree Kind
	}{
		{BflyBineDD, BineDD},
		{BflyBineDH, BineDH},
	}
	for _, c := range cases {
		for _, p := range []int{4, 8, 32, 128} {
			b := MustButterfly(c.bfly, p)
			tr := MustTree(c.tree, p, 0)
			for _, e := range tr.Children[0] {
				want := tr.Subtree(e.Child)
				got := b.SendSet(0, e.Step)
				if len(got) != len(want) {
					t.Fatalf("%v p=%d step %d: send %v, subtree %v", c.bfly, p, e.Step, got, want)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%v p=%d step %d: send %v, subtree %v", c.bfly, p, e.Step, got, want)
					}
				}
			}
		}
	}
}

func TestButterflyRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewButterfly(BflyBineDD, 6); err == nil {
		t.Error("p=6 should fail")
	}
	if _, err := NewButterfly(BflyBineDD, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewButterfly(ButterflyKind(99), 8); err == nil {
		t.Error("unknown kind should fail")
	}
}
