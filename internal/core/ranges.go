package core

// Closed-form buffer-range arithmetic for Bine gather and scatter
// (Sec. 4.1–4.2). During a distance-halving Bine gather every rank's block
// holding is a circular range [a, b]; even ranks first extend downward,
// odd ranks upward, alternating each step. The paper derives the final
// range by adding/subtracting the alternating bit patterns 0101…01 and
// 1010…10 to the rank identifier. These functions provide that closed form;
// the tree-based collectives compute the same sets by subtree enumeration,
// and TestGatherRangesMatchSubtrees proves the two agree.

// GatherRange returns the circular block range [a, b] rank r of a p-rank
// distance-halving Bine gather holds after the given number of completed
// steps (0 ≤ steps ≤ s), for the tree rooted at 0. After 0 steps the range
// is [r, r]; after s steps rank 0 holds all p blocks.
//
// At gather step t (counting from 0), the rank that is still active merges
// the subtree gathered by its step-t child, of size 2^t. Following the
// paper's closed form, even ranks add 2^0+2^2+… to b and subtract
// 2^1+2^3+… from a (terms in increasing order, so the directions
// alternate starting upward); odd ranks mirror. The result is only
// meaningful while the rank is still active, i.e. steps ≤ s−1−joinStep(r)
// for non-root ranks.
func GatherRange(r, p, steps int) CircRange {
	s := Log2Ceil(p)
	if steps > s {
		steps = s
	}
	a, b := r, r // inclusive circular range
	up := r%2 == 0
	for t := 0; t < steps; t++ {
		grow := 1 << uint(t)
		if up {
			b = Mod(b+grow, p)
		} else {
			a = Mod(a-grow, p)
		}
		up = !up
	}
	return CircRange{Start: a, Len: Mod(b-a, p) + 1}
}

// ScatterRange returns the circular block range rank r still has to
// distribute at the given scatter step of a distance-halving Bine scatter
// rooted at 0 (step 0 = before any send). It is GatherRange run backwards:
// the scatter's starting range equals the gather's final one.
func ScatterRange(r, p, step int) CircRange {
	s := Log2Ceil(p)
	if step > s {
		step = s
	}
	return GatherRange(r, p, s-step)
}

// GatherExtendsUpFirst reports the direction of rank r's first extension:
// even ranks add 2^0 to b (upward) first, odd ranks subtract it from a.
func GatherExtendsUpFirst(r int) bool { return r%2 == 0 }
