package core

import "testing"

func TestTorusCoordRoundTrip(t *testing.T) {
	for _, tor := range []Torus{MustTorus(4), MustTorus(2, 3), MustTorus(4, 4, 4), MustTorus(2, 4, 8, 2)} {
		p := tor.P()
		for r := 0; r < p; r++ {
			if back := tor.Rank(tor.Coord(r)); back != r {
				t.Fatalf("%v: rank %d round trips to %d", tor.Dims, r, back)
			}
		}
	}
}

func TestTorusDisplace(t *testing.T) {
	tor := MustTorus(4, 4)
	if tor.Displace(0, 0, -1) != 12 {
		t.Error("wrap in dim 0")
	}
	if tor.Displace(0, 1, 1) != 1 {
		t.Error("step in dim 1")
	}
	if tor.Displace(15, 1, 1) != 12 {
		t.Error("wrap in dim 1")
	}
}

func TestTorusHopDist(t *testing.T) {
	tor := MustTorus(4, 4)
	// Fig. 16A: ranks 0 and 15 are 2 hops apart on the 4×4 torus even
	// though their 1-D modular distance is 1.
	if d := tor.HopDist(0, 15); d != 2 {
		t.Errorf("HopDist(0,15) = %d, want 2", d)
	}
	if d := tor.HopDist(0, 5); d != 2 {
		t.Errorf("HopDist(0,5) = %d, want 2", d)
	}
	if d := tor.HopDist(3, 3); d != 0 {
		t.Error("self distance")
	}
}

func TestTorusLine(t *testing.T) {
	tor := MustTorus(2, 4)
	line := tor.Line(5, 1) // rank 5 = (1,1); dim-1 line of row 1
	want := []int{4, 5, 6, 7}
	for i, w := range want {
		if line[i] != w {
			t.Fatalf("line %v, want %v", line, want)
		}
	}
	line = tor.Line(5, 0) // dim-0 line of column 1
	if line[0] != 1 || line[1] != 5 {
		t.Fatalf("dim-0 line %v", line)
	}
}

func TestTorusDFSPostorder(t *testing.T) {
	for _, tor := range []Torus{MustTorus(4, 4), MustTorus(2, 4), MustTorus(2, 2, 2), MustTorus(2, 6)} {
		p := tor.P()
		perm, inv, err := tor.DFSPostorder()
		if err != nil {
			t.Fatalf("%v: %v", tor.Dims, err)
		}
		seen := make([]bool, p)
		for r := 0; r < p; r++ {
			if perm[r] < 0 || perm[r] >= p || seen[perm[r]] {
				t.Fatalf("%v: perm not a permutation", tor.Dims)
			}
			seen[perm[r]] = true
			if inv[perm[r]] != r {
				t.Fatalf("%v: inverse mismatch", tor.Dims)
			}
		}
		// Postorder property: the root of the whole composite tree (rank 0)
		// must be visited last.
		if perm[0] != p-1 {
			t.Errorf("%v: root position %d, want %d", tor.Dims, perm[0], p-1)
		}
	}
}

func TestTorusErrors(t *testing.T) {
	if _, err := NewTorus(); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewTorus(4, 0); err == nil {
		t.Error("zero dim accepted")
	}
}
