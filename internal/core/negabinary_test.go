package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKnownValues(t *testing.T) {
	cases := []struct {
		v  int64
		nb uint64
	}{
		{0, 0b0},
		{1, 0b1},
		{2, 0b110},
		{3, 0b111},
		{4, 0b100},
		{5, 0b101},
		{6, 0b11010},
		{-1, 0b11},
		{-2, 0b10},
		{-3, 0b1101},
		{-4, 0b1100},
		{-5, 0b1111},
		{21, 0b010101}, // paper example: m on six bits
	}
	for _, c := range cases {
		if got := EncodeNB(c.v); got != c.nb {
			t.Errorf("EncodeNB(%d) = %b, want %b", c.v, got, c.nb)
		}
		if got := DecodeNB(c.nb); got != c.v {
			t.Errorf("DecodeNB(%b) = %d, want %d", c.nb, got, c.v)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		return DecodeNB(EncodeNB(int64(v))) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIsSumOfPowers(t *testing.T) {
	f := func(raw uint16) bool {
		nb := uint64(raw)
		var want int64
		pow := int64(1)
		for i := 0; i < 16; i++ {
			if nb&(1<<uint(i)) != 0 {
				want += pow
			}
			pow *= -2
		}
		return DecodeNB(nb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPosMinNeg(t *testing.T) {
	cases := []struct {
		s        int
		max, min int64
	}{
		{1, 1, 0},
		{2, 1, -2},
		{3, 5, -2},
		{4, 5, -10},
		{5, 21, -10},
		{6, 21, -42},
	}
	for _, c := range cases {
		if got := MaxPos(c.s); got != c.max {
			t.Errorf("MaxPos(%d) = %d, want %d", c.s, got, c.max)
		}
		if got := MinNeg(c.s); got != c.min {
			t.Errorf("MinNeg(%d) = %d, want %d", c.s, got, c.min)
		}
	}
}

func TestSBitRangeCoversRing(t *testing.T) {
	// The s-bit negabinary range [MinNeg, MaxPos] must contain exactly 2^s
	// consecutive integers, so ranks [0,p) map bijectively onto it mod p.
	for s := 1; s <= 20; s++ {
		if MaxPos(s)-MinNeg(s)+1 != int64(1)<<uint(s) {
			t.Errorf("s=%d: range [%d,%d] does not cover 2^s values", s, MinNeg(s), MaxPos(s))
		}
	}
}

func TestRankToNBPaperExamples(t *testing.T) {
	// Sec. 2.3.1: rank2nb(2,8) = 110, rank2nb(6,8) = 010 (encoding 6−8 = −2).
	if got := RankToNB(2, 8); got != 0b110 {
		t.Errorf("RankToNB(2,8) = %b, want 110", got)
	}
	if got := RankToNB(6, 8); got != 0b010 {
		t.Errorf("RankToNB(6,8) = %b, want 010", got)
	}
	// Fig. 3E: m = 101 = 5 for an 8-node tree.
	if m := MaxPos(3); m != 5 {
		t.Errorf("MaxPos(3) = %d, want 5", m)
	}
}

func TestRankToNBBijection(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 64, 256, 1024} {
		s := Log2Ceil(p)
		seen := make(map[uint64]int, p)
		for r := 0; r < p; r++ {
			nb := RankToNB(r, p)
			if nb >= uint64(1)<<uint(s) {
				t.Fatalf("p=%d: RankToNB(%d) = %b exceeds %d bits", p, r, nb, s)
			}
			if prev, dup := seen[nb]; dup {
				t.Fatalf("p=%d: ranks %d and %d share representation %b", p, prev, r, nb)
			}
			seen[nb] = r
			if back := NBToRank(nb, p); back != r {
				t.Fatalf("p=%d: NBToRank(RankToNB(%d)) = %d", p, r, back)
			}
		}
	}
}

func TestTrailingIdentical(t *testing.T) {
	cases := []struct {
		nb   uint64
		s, u int
	}{
		{0b1000, 4, 3},
		{0b1011, 4, 2},
		{0b0000, 4, 4},
		{0b1111, 4, 4},
		{0b0001, 4, 1},
		{0b10, 2, 1},
		{0b1, 1, 1},
	}
	for _, c := range cases {
		if got := TrailingIdentical(c.nb, c.s); got != c.u {
			t.Errorf("TrailingIdentical(%b, %d) = %d, want %d", c.nb, c.s, got, c.u)
		}
	}
}

func TestReverse(t *testing.T) {
	if got := Reverse(0b001, 3); got != 0b100 {
		t.Errorf("Reverse(001,3) = %b", got)
	}
	if got := Reverse(0b110, 3); got != 0b011 {
		t.Errorf("Reverse(110,3) = %b", got)
	}
	f := func(raw uint16) bool {
		v := uint64(raw) & Ones(16)
		return Reverse(Reverse(v, 16), 16) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNuPaperExample(t *testing.T) {
	// Fig. 6: for p = 8, ν = [000, 001, 011, 100, 110, 111, 101, 010].
	want := []uint64{0b000, 0b001, 0b011, 0b100, 0b110, 0b111, 0b101, 0b010}
	for r, w := range want {
		if got := Nu(r, 8); got != w {
			t.Errorf("Nu(%d,8) = %03b, want %03b", r, got, w)
		}
	}
	// Worked examples from Fig. 6 annotations: ν(1,8) = 001 and ν(6,8) = 101.
	if Nu(1, 8) != 0b001 || Nu(6, 8) != 0b101 {
		t.Error("Fig. 6 worked examples mismatch")
	}
}

func TestNuBijectionAndInverse(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 32, 128, 1024, 4096} {
		seen := make([]bool, p)
		for r := 0; r < p; r++ {
			v := Nu(r, p)
			if v >= uint64(p) {
				t.Fatalf("p=%d: Nu(%d) = %d out of range", p, r, v)
			}
			if seen[v] {
				t.Fatalf("p=%d: Nu not injective at %d", p, r)
			}
			seen[v] = true
			if back := NuInverse(v, p); back != r {
				t.Fatalf("p=%d: NuInverse(Nu(%d)) = %d", p, r, back)
			}
		}
	}
}

func TestNuPermutationConsistent(t *testing.T) {
	for _, p := range []int{4, 16, 256} {
		perm, inv := NuPermutation(p)
		for r := 0; r < p; r++ {
			if perm[r] != int(Nu(r, p)) {
				t.Fatalf("p=%d: perm[%d] mismatch", p, r)
			}
			if inv[perm[r]] != r {
				t.Fatalf("p=%d: inverse mismatch at %d", p, r)
			}
		}
	}
}

func TestBineDelta(t *testing.T) {
	// Σ_{k=0}^{j}(−2)^k: 1, −1, 3, −5, 11, −21, 43.
	want := []int64{1, -1, 3, -5, 11, -21, 43}
	for j, w := range want {
		if got := BineDelta(j); got != w {
			t.Errorf("BineDelta(%d) = %d, want %d", j, got, w)
		}
	}
	for j := 0; j < 30; j++ {
		if BineDelta(j)%2 == 0 {
			t.Errorf("BineDelta(%d) is even; partners must alternate parity", j)
		}
	}
}

func TestDistanceRatioBound(t *testing.T) {
	// Sec. 2.4.1 / Eq. 2: the Bine step distance is ≈ 2/3 of the binomial
	// step distance; exactly, |δbine(i)| = (2^{s−i} ± 1)/3 versus 2^{s−i−1}.
	for s := 2; s <= 16; s++ {
		for i := 0; i < s; i++ {
			bine := BineDeltaDH(i, s)
			if bine < 0 {
				bine = -bine
			}
			binom := BinomialDelta(i, s)
			ratio := float64(bine) / float64(binom)
			if ratio > 0.67*1.5 && s-i > 2 { // generous guard, tight check below
				t.Fatalf("s=%d i=%d ratio %.3f", s, i, ratio)
			}
			// The exact identity: 3·|δbine| differs from 2^{s−i} by exactly 1.
			diff := 3*bine - (int64(1) << uint(s-i))
			if diff != 1 && diff != -1 {
				t.Errorf("s=%d i=%d: 3·|δbine| = %d, want 2^{s-i}±1", s, i, 3*bine)
			}
			_ = ratio
		}
	}
}

func TestModDist(t *testing.T) {
	if ModDist(0, 15, 16) != 1 {
		t.Error("ModDist(0,15,16)")
	}
	if ModDist(0, 8, 16) != 8 {
		t.Error("ModDist(0,8,16)")
	}
	if ModDist(3, 3, 16) != 0 {
		t.Error("ModDist(3,3,16)")
	}
	f := func(a, b uint8) bool {
		p := 251
		x, y := int(a)%p, int(b)%p
		d := ModDist(x, y, p)
		return d == ModDist(y, x, p) && d >= 0 && d <= p/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2Helpers(t *testing.T) {
	if s, ok := Log2(1); !ok || s != 0 {
		t.Error("Log2(1)")
	}
	if s, ok := Log2(1024); !ok || s != 10 {
		t.Error("Log2(1024)")
	}
	if _, ok := Log2(12); ok {
		t.Error("Log2(12) should fail")
	}
	if _, ok := Log2(0); ok {
		t.Error("Log2(0) should fail")
	}
	if Log2Ceil(1) != 0 || Log2Ceil(2) != 1 || Log2Ceil(5) != 3 || Log2Ceil(8) != 3 {
		t.Error("Log2Ceil")
	}
	if Log2Floor(1) != 0 || Log2Floor(9) != 3 || Log2Floor(16) != 4 {
		t.Error("Log2Floor")
	}
}

func TestOnes(t *testing.T) {
	if Ones(0) != 0 || Ones(-3) != 0 {
		t.Error("Ones of non-positive width")
	}
	if Ones(3) != 0b111 {
		t.Error("Ones(3)")
	}
	if Ones(64) != ^uint64(0) || Ones(99) != ^uint64(0) {
		t.Error("Ones wide")
	}
}

func TestCircRuns(t *testing.T) {
	runs := CircRuns([]int{7, 0, 1, 2}, 8)
	if len(runs) != 1 || runs[0].Start != 7 || runs[0].Len != 4 {
		t.Errorf("wrap run: %+v", runs)
	}
	runs = CircRuns([]int{2, 7}, 8)
	if len(runs) != 2 {
		t.Errorf("disjoint: %+v", runs)
	}
	runs = CircRuns([]int{0, 1, 2, 3}, 4)
	if len(runs) != 1 || runs[0].Len != 4 {
		t.Errorf("full ring: %+v", runs)
	}
	// Property: runs partition the input and each run is circularly
	// contiguous.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		p := 2 + rng.Intn(60)
		var vals []int
		for v := 0; v < p; v++ {
			if rng.Intn(2) == 0 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		runs := CircRuns(vals, p)
		covered := map[int]bool{}
		for _, run := range runs {
			for _, m := range run.Members(p) {
				if covered[m] {
					t.Fatalf("value %d covered twice", m)
				}
				covered[m] = true
				if !run.Contains(m, p) {
					t.Fatalf("run %+v does not contain member %d", run, m)
				}
			}
		}
		if len(covered) != len(vals) {
			t.Fatalf("runs cover %d of %d values", len(covered), len(vals))
		}
		for _, v := range vals {
			if !covered[v] {
				t.Fatalf("value %d not covered", v)
			}
		}
	}
}
