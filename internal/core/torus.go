package core

import "fmt"

// Torus describes a k-dimensional torus rank geometry (Appendix D). Ranks
// are laid out row-major: rank = ((c0·d1 + c1)·d2 + c2)·…, so the last
// dimension varies fastest. The paper's Fugaku jobs are 3-D sub-tori of the
// 6-D Tofu-D network; any dimensionality is supported here.
type Torus struct {
	Dims []int
}

// NewTorus validates the dimension sizes and returns the geometry.
func NewTorus(dims ...int) (Torus, error) {
	if len(dims) == 0 {
		return Torus{}, fmt.Errorf("core: torus needs at least one dimension")
	}
	for _, d := range dims {
		if d <= 0 {
			return Torus{}, fmt.Errorf("core: torus dimension %d", d)
		}
	}
	return Torus{Dims: append([]int(nil), dims...)}, nil
}

// MustTorus is NewTorus, panicking on error.
func MustTorus(dims ...int) Torus {
	t, err := NewTorus(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// P returns the total number of ranks of the torus.
func (t Torus) P() int {
	p := 1
	for _, d := range t.Dims {
		p *= d
	}
	return p
}

// NDims returns the number of dimensions.
func (t Torus) NDims() int { return len(t.Dims) }

// Coord returns the coordinates of rank r.
func (t Torus) Coord(r int) []int {
	c := make([]int, len(t.Dims))
	for i := len(t.Dims) - 1; i >= 0; i-- {
		c[i] = r % t.Dims[i]
		r /= t.Dims[i]
	}
	return c
}

// Rank returns the rank at the given coordinates (taken modulo each
// dimension, so out-of-range coordinates wrap around the torus).
func (t Torus) Rank(coord []int) int {
	r := 0
	for i, d := range t.Dims {
		r = r*d + Mod(coord[i], d)
	}
	return r
}

// Displace returns the rank reached from r by moving delta positions along
// dimension dim (wrapping around).
func (t Torus) Displace(r, dim, delta int) int {
	c := t.Coord(r)
	c[dim] = Mod(c[dim]+delta, t.Dims[dim])
	return t.Rank(c)
}

// HopDist returns the minimal hop distance between two ranks under
// dimension-ordered minimal routing: the sum over dimensions of the circular
// distance between coordinates.
func (t Torus) HopDist(a, b int) int {
	ca, cb := t.Coord(a), t.Coord(b)
	h := 0
	for i, d := range t.Dims {
		h += ModDist(ca[i], cb[i], d)
	}
	return h
}

// DimStride returns the rank-id stride of one step along dimension dim.
func (t Torus) DimStride(dim int) int {
	s := 1
	for i := dim + 1; i < len(t.Dims); i++ {
		s *= t.Dims[i]
	}
	return s
}

// Line returns the ranks obtained by sweeping dimension dim while keeping
// the other coordinates of r fixed, starting at coordinate 0 of that
// dimension. The result has length Dims[dim] and Line[i] is the rank at
// coordinate i. This is the 1-D sub-communicator used by the per-dimension
// torus-optimized collectives of Appendix D.
func (t Torus) Line(r, dim int) []int {
	c := t.Coord(r)
	out := make([]int, t.Dims[dim])
	for i := range out {
		c[dim] = i
		out[i] = t.Rank(c)
	}
	return out
}

// DFSPostorder returns the block permutation of Appendix D.2: blocks are
// renumbered according to a depth-first postorder traversal of the
// torus-optimized distance-halving Bine tree rooted at rank 0, so that every
// subtree's blocks become contiguous. perm[block] is the new position of the
// block; inv is the inverse permutation.
//
// The torus-optimized tree visits dimensions in ascending order; within each
// dimension the children follow the 1-D Bine tree of that dimension's size.
func (t Torus) DFSPostorder() (perm, inv []int, err error) {
	p := t.P()
	trees := make([]*Tree, t.NDims())
	for d, size := range t.Dims {
		trees[d], err = NewTree(BineDH, size, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("core: torus dimension %d: %w", d, err)
		}
	}
	perm = make([]int, p)
	inv = make([]int, p)
	next := 0
	// The composite tree: rank r's children are, for each dimension d,
	// the per-dimension tree children of its coordinate c[d] — but only in
	// dimensions ≥ the dimension where r diverged from the root prefix.
	var walk func(coord []int, fromDim int)
	walk = func(coord []int, fromDim int) {
		for d := fromDim; d < t.NDims(); d++ {
			var sub func(cd int, dim int)
			sub = func(cd, dim int) {
				for _, e := range trees[dim].Children[cd] {
					child := append([]int(nil), coord...)
					child[dim] = e.Child
					walk(child, dim)
				}
			}
			sub(coord[d], d)
		}
		r := t.Rank(coord)
		perm[r] = next
		inv[next] = r
		next++
	}
	walk(make([]int, t.NDims()), 0)
	if next != p {
		return nil, nil, fmt.Errorf("core: DFS postorder visited %d of %d ranks", next, p)
	}
	return perm, inv, nil
}
