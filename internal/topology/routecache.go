package topology

import "sync"

// RouteCache memoizes a topology's Route results. Minimal routes depend only
// on the (src, dst) node pair — never on the message — so a cache shared
// across every evaluation cell of a system computes each pair's route once
// and replays it allocation-free forever after: the per-message Route slice
// allocation (and, for tori, the per-hop coordinate walk) disappears from
// the netsim hot path.
//
// Cached routes are appended into flat arena blocks and handed out as
// immutable subslices, so a million cached pairs cost a handful of
// allocations rather than one each. Link IDs are stored as int32 (they index
// Links(), bounded far below 2³¹), matching the columnar trace layout.
//
// Every concrete topology carries one cache, created lazily on first use
// (Topology.Routes), so cached routes live exactly as long as the topology
// that computes them — no global registry to leak instances into.
//
// A RouteCache is safe for concurrent use; lookups take a read lock only.
type RouteCache struct {
	topo Topology

	mu     sync.RWMutex
	routes map[uint64][]int32
	arena  []int32
}

// routeArenaBlock is the arena growth quantum in link IDs. Blocks are never
// reallocated once routes point into them; a full block is simply retired
// and a fresh one started.
const routeArenaBlock = 1 << 14

// NewRouteCache returns an empty cache over topo. Callers replaying traces
// should prefer topo.Routes(), which shares one cache per instance.
func NewRouteCache(topo Topology) *RouteCache {
	return &RouteCache{topo: topo, routes: make(map[uint64][]int32)}
}

// routeCacheHolder lazily attaches one RouteCache to a topology instance
// (embedded via common); the concrete types' Routes methods hand it their
// own interface value.
type routeCacheHolder struct {
	once sync.Once
	rc   *RouteCache
}

func (h *routeCacheHolder) routeCache(t Topology) *RouteCache {
	h.once.Do(func() { h.rc = NewRouteCache(t) })
	return h.rc
}

// Topology returns the wrapped topology.
func (rc *RouteCache) Topology() Topology { return rc.topo }

// Route returns the link IDs a message from src to dst traverses, computing
// and memoizing the underlying Route on first use. The returned slice is
// shared and must not be modified.
func (rc *RouteCache) Route(src, dst int) []int32 {
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	rc.mu.RLock()
	route, ok := rc.routes[key]
	rc.mu.RUnlock()
	if ok {
		return route
	}
	ids := rc.topo.Route(src, dst)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if route, ok := rc.routes[key]; ok { // lost the insert race; keep the winner
		return route
	}
	if cap(rc.arena)-len(rc.arena) < len(ids) {
		block := routeArenaBlock
		if len(ids) > block {
			block = len(ids)
		}
		rc.arena = make([]int32, 0, block)
	}
	start := len(rc.arena)
	for _, id := range ids {
		rc.arena = append(rc.arena, int32(id))
	}
	route = rc.arena[start:len(rc.arena):len(rc.arena)]
	rc.routes[key] = route
	return route
}
