// Package topology models the four network families of the paper's
// evaluation — Dragonfly (LUMI), Dragonfly+ (Leonardo), 2:1-oversubscribed
// fat tree (MareNostrum 5), and multidimensional torus (Fugaku) — at the
// granularity that matters for the paper's analysis: which links a message
// traverses, which of those links are global (inter-group), and how much
// bandwidth each link offers when several messages share it.
//
// Modelling notes (see DESIGN.md): node-to-switch (injection/ejection) links
// carry every message; fully connected intra-group fabrics are assumed
// non-blocking beyond injection; inter-group capacity is modelled either as
// per-group-pair links (Dragonfly) or per-group uplink/downlink bundles
// (Dragonfly+, fat-tree subtrees); torus links are per node, dimension and
// direction. Routing is minimal, matching the paper's lower-bound accounting
// ("we assume packets traverse inter-group connections via minimal paths").
package topology

import "fmt"

// LinkKind classifies links for traffic accounting.
type LinkKind int

const (
	// Injection covers node→network and network→node (NIC) links.
	Injection LinkKind = iota
	// Local links stay within a group (intra-group fabric, local torus
	// links are Global — see Torus).
	Local
	// Global links cross group boundaries; their load is the paper's
	// headline metric.
	Global
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case Injection:
		return "injection"
	case Local:
		return "local"
	case Global:
		return "global"
	}
	return fmt.Sprintf("LinkKind(%d)", int(k))
}

// Link is one shared network resource.
type Link struct {
	ID   int
	Kind LinkKind
	// BW is the capacity in bytes per second.
	BW float64
}

// Topology answers routing and grouping questions about a machine.
type Topology interface {
	Name() string
	// Nodes returns the number of compute nodes.
	Nodes() int
	// NumGroups returns the number of fully connected groups (leaf
	// subtrees for fat trees; 1 for flat networks; the node count for
	// tori, where every hop is considered oversubscribed).
	NumGroups() int
	// GroupOf returns the group of a node.
	GroupOf(node int) int
	// Route returns the link IDs a message from src to dst traverses,
	// under minimal routing. src == dst returns nil.
	Route(src, dst int) []int
	// Routes returns the topology's memoized route cache (replay hot
	// path); its lifetime is the topology instance's.
	Routes() *RouteCache
	// Links enumerates every link; Route results index into it by ID.
	Links() []Link
}

// GbpsToBytes converts gigabits per second to bytes per second.
func GbpsToBytes(gbps float64) float64 { return gbps * 1e9 / 8 }

// common implements injection links (IDs 0..2N-1: node i injects on 2i and
// ejects on 2i+1) and the lazily attached route cache shared by all
// concrete topologies.
type common struct {
	nodes int
	links []Link
	routeCacheHolder
}

func newCommon(nodes int, nicBW float64) *common {
	c := &common{nodes: nodes}
	for i := 0; i < nodes; i++ {
		c.links = append(c.links,
			Link{ID: 2 * i, Kind: Injection, BW: nicBW},
			Link{ID: 2*i + 1, Kind: Injection, BW: nicBW},
		)
	}
	return c
}

func (c *common) inject(node int) int { return 2 * node }
func (c *common) eject(node int) int  { return 2*node + 1 }

func (c *common) addLink(kind LinkKind, bw float64) int {
	id := len(c.links)
	c.links = append(c.links, Link{ID: id, Kind: kind, BW: bw})
	return id
}

func (c *common) Nodes() int    { return c.nodes }
func (c *common) Links() []Link { return c.links }

// Dragonfly is a LUMI-like network: groups are fully connected internally
// and every group pair is joined by a dedicated global-link bundle.
type Dragonfly struct {
	*common
	name          string
	groups        int
	nodesPerGroup int
	global        [][]int // global[ga][gb] = link ID (ga != gb)
}

// DragonflyConfig sizes a Dragonfly.
type DragonflyConfig struct {
	Name          string
	Groups        int
	NodesPerGroup int
	// NICBW is per-node injection bandwidth (bytes/s).
	NICBW float64
	// GlobalBW is the capacity of each group-pair bundle (bytes/s).
	GlobalBW float64
}

// NewDragonfly builds the topology.
func NewDragonfly(cfg DragonflyConfig) (*Dragonfly, error) {
	if cfg.Groups <= 0 || cfg.NodesPerGroup <= 0 {
		return nil, fmt.Errorf("topology: dragonfly %d×%d", cfg.Groups, cfg.NodesPerGroup)
	}
	d := &Dragonfly{
		common:        newCommon(cfg.Groups*cfg.NodesPerGroup, cfg.NICBW),
		name:          cfg.Name,
		groups:        cfg.Groups,
		nodesPerGroup: cfg.NodesPerGroup,
	}
	d.global = make([][]int, cfg.Groups)
	for a := range d.global {
		d.global[a] = make([]int, cfg.Groups)
		for b := range d.global[a] {
			d.global[a][b] = -1
		}
	}
	for a := 0; a < cfg.Groups; a++ {
		for b := 0; b < cfg.Groups; b++ {
			if a != b {
				d.global[a][b] = d.addLink(Global, cfg.GlobalBW)
			}
		}
	}
	return d, nil
}

// Name returns the configured system name.
func (d *Dragonfly) Name() string { return d.name }

// NumGroups returns the group count.
func (d *Dragonfly) NumGroups() int { return d.groups }

// GroupOf maps nodes to groups block-wise (hostnames numbered consecutively
// across groups, as on the paper's systems).
func (d *Dragonfly) GroupOf(node int) int { return node / d.nodesPerGroup }

// Routes returns the memoized route cache.
func (d *Dragonfly) Routes() *RouteCache { return d.routeCache(d) }

// Route returns injection + (for inter-group traffic) the group-pair global
// bundle + ejection.
func (d *Dragonfly) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	ga, gb := d.GroupOf(src), d.GroupOf(dst)
	if ga == gb {
		return []int{d.inject(src), d.eject(dst)}
	}
	return []int{d.inject(src), d.global[ga][gb], d.eject(dst)}
}

// UpDown is the shared shape of Dragonfly+ (Leonardo) and oversubscribed
// fat trees (MareNostrum 5): every group (pod or leaf subtree) reaches the
// rest of the machine through an aggregated uplink/downlink bundle; the
// second-level fabric is assumed non-blocking.
type UpDown struct {
	*common
	name          string
	groups        int
	nodesPerGroup int
	up, down      []int
}

// UpDownConfig sizes an UpDown topology. The uplink/downlink bundle
// capacity is NodesPerGroup·NICBW/Oversub: a 2:1 oversubscribed fat tree
// halves the aggregate bandwidth leaving each subtree.
type UpDownConfig struct {
	Name          string
	Groups        int
	NodesPerGroup int
	NICBW         float64
	Oversub       float64
	// GroupNodeShare optionally scales each group's bundle to the fair
	// share of a job occupying that many of the group's nodes (the rest
	// of the bundle serves other tenants on a busy machine):
	// bundle_g = GroupNodeShare[g]·NICBW/Oversub. Entries of zero keep a
	// one-node share so links never vanish.
	GroupNodeShare []int
}

// NewUpDown builds the topology.
func NewUpDown(cfg UpDownConfig) (*UpDown, error) {
	if cfg.Groups <= 0 || cfg.NodesPerGroup <= 0 || cfg.Oversub <= 0 {
		return nil, fmt.Errorf("topology: updown %d×%d oversub %.1f", cfg.Groups, cfg.NodesPerGroup, cfg.Oversub)
	}
	u := &UpDown{
		common:        newCommon(cfg.Groups*cfg.NodesPerGroup, cfg.NICBW),
		name:          cfg.Name,
		groups:        cfg.Groups,
		nodesPerGroup: cfg.NodesPerGroup,
	}
	for g := 0; g < cfg.Groups; g++ {
		share := cfg.NodesPerGroup
		if cfg.GroupNodeShare != nil {
			share = cfg.GroupNodeShare[g]
			if share < 1 {
				share = 1
			}
		}
		bundle := float64(share) * cfg.NICBW / cfg.Oversub
		u.up = append(u.up, u.addLink(Global, bundle))
		u.down = append(u.down, u.addLink(Global, bundle))
	}
	return u, nil
}

// Name returns the configured system name.
func (u *UpDown) Name() string { return u.name }

// NumGroups returns the group (subtree/pod) count.
func (u *UpDown) NumGroups() int { return u.groups }

// GroupOf maps nodes to groups block-wise.
func (u *UpDown) GroupOf(node int) int { return node / u.nodesPerGroup }

// Routes returns the memoized route cache.
func (u *UpDown) Routes() *RouteCache { return u.routeCache(u) }

// Route crosses the source group's uplink and the destination group's
// downlink for inter-group traffic.
func (u *UpDown) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	ga, gb := u.GroupOf(src), u.GroupOf(dst)
	if ga == gb {
		return []int{u.inject(src), u.eject(dst)}
	}
	return []int{u.inject(src), u.up[ga], u.down[gb], u.eject(dst)}
}

// Flat is a non-blocking crossbar (intra-node GPU fabric, or an idealized
// network): only injection links constrain traffic.
type Flat struct {
	*common
	name string
}

// NewFlat builds a flat crossbar over n nodes.
func NewFlat(name string, n int, nicBW float64) *Flat {
	return &Flat{common: newCommon(n, nicBW), name: name}
}

// Name returns the configured system name.
func (f *Flat) Name() string { return f.name }

// NumGroups is 1: nothing is oversubscribed.
func (f *Flat) NumGroups() int { return 1 }

// GroupOf always returns 0.
func (f *Flat) GroupOf(int) int { return 0 }

// Routes returns the memoized route cache.
func (f *Flat) Routes() *RouteCache { return f.routeCache(f) }

// Route is injection and ejection only.
func (f *Flat) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	return []int{f.inject(src), f.eject(dst)}
}
