package topology

import "testing"

func checkRoutes(t *testing.T, topo Topology) {
	t.Helper()
	links := topo.Links()
	for id, l := range links {
		if l.ID != id {
			t.Fatalf("%s: link %d has ID %d", topo.Name(), id, l.ID)
		}
		if l.BW <= 0 {
			t.Fatalf("%s: link %d has bandwidth %f", topo.Name(), id, l.BW)
		}
	}
	n := topo.Nodes()
	step := n/17 + 1
	for src := 0; src < n; src += step {
		for dst := 0; dst < n; dst += step {
			route := topo.Route(src, dst)
			if src == dst {
				if route != nil {
					t.Fatalf("%s: self route not empty", topo.Name())
				}
				continue
			}
			if len(route) < 2 {
				t.Fatalf("%s: route %d→%d too short: %v", topo.Name(), src, dst, route)
			}
			for _, id := range route {
				if id < 0 || id >= len(links) {
					t.Fatalf("%s: route %d→%d uses unknown link %d", topo.Name(), src, dst, id)
				}
			}
			if links[route[0]].Kind != Injection || links[route[len(route)-1]].Kind != Injection {
				t.Fatalf("%s: route %d→%d does not start/end at NICs", topo.Name(), src, dst)
			}
			// Intra-group routes must avoid global links; inter-group
			// routes must use at least one.
			globals := 0
			for _, id := range route {
				if links[id].Kind == Global {
					globals++
				}
			}
			if topo.GroupOf(src) == topo.GroupOf(dst) && globals != 0 {
				t.Fatalf("%s: intra-group route %d→%d crosses %d global links", topo.Name(), src, dst, globals)
			}
			if topo.GroupOf(src) != topo.GroupOf(dst) && globals == 0 {
				t.Fatalf("%s: inter-group route %d→%d avoids global links", topo.Name(), src, dst)
			}
		}
	}
}

func TestDragonfly(t *testing.T) {
	d, err := NewDragonfly(DragonflyConfig{
		Name: "lumi-like", Groups: 6, NodesPerGroup: 8,
		NICBW: GbpsToBytes(200), GlobalBW: GbpsToBytes(400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != 48 || d.NumGroups() != 6 {
		t.Fatal("shape")
	}
	if d.GroupOf(0) != 0 || d.GroupOf(47) != 5 || d.GroupOf(8) != 1 {
		t.Fatal("grouping")
	}
	checkRoutes(t, d)
	// Distinct group pairs use distinct global links (per-pair bundles).
	r1 := d.Route(0, 8)  // g0 → g1
	r2 := d.Route(0, 16) // g0 → g2
	if r1[1] == r2[1] {
		t.Error("group pairs share a global link")
	}
	if _, err := NewDragonfly(DragonflyConfig{Groups: 0, NodesPerGroup: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestUpDown(t *testing.T) {
	u, err := NewUpDown(UpDownConfig{
		Name: "mn5-like", Groups: 4, NodesPerGroup: 2,
		NICBW: GbpsToBytes(200), Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRoutes(t, u)
	// 2:1 oversubscription: uplink bundle carries half the aggregate NIC
	// bandwidth of its subtree.
	links := u.Links()
	route := u.Route(0, 7)
	up := links[route[1]]
	if up.Kind != Global {
		t.Fatal("expected uplink")
	}
	if want := 2 * GbpsToBytes(200) / 2; up.BW != want {
		t.Errorf("uplink bw %f, want %f", up.BW, want)
	}
	// All traffic leaving one subtree shares its uplink.
	ra, rb := u.Route(0, 2), u.Route(1, 4)
	if ra[1] != rb[1] {
		t.Error("subtree sends use different uplinks")
	}
	if _, err := NewUpDown(UpDownConfig{Groups: 1, NodesPerGroup: 1, Oversub: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFlat(t *testing.T) {
	f := NewFlat("node", 4, GbpsToBytes(900))
	checkRoutes(t, f)
	if f.NumGroups() != 1 {
		t.Error("flat groups")
	}
}

func TestTorusTopology(t *testing.T) {
	tor, err := NewTorus(TorusConfig{
		Name: "fugaku-like", Dims: []int{4, 4},
		NICBW: GbpsToBytes(54), LinkBW: GbpsToBytes(54),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tor.Nodes() != 16 {
		t.Fatal("size")
	}
	// Neighbour route: inject + 1 hop + eject.
	if r := tor.Route(0, 1); len(r) != 3 {
		t.Errorf("neighbour route %v", r)
	}
	// Fig. 16A: (0,0) → (3,3) is 2 hops on a 4×4 torus (wrap both dims).
	if r := tor.Route(0, 15); len(r) != 4 {
		t.Errorf("corner route has %d links, want 4", len(r))
	}
	// Max distance in one dim of size 4 is 2 hops.
	if r := tor.Route(0, 2); len(r) != 4 {
		t.Errorf("antipodal route %v", r)
	}
	// Distinct directions use distinct links.
	fwd, back := tor.Route(0, 1), tor.Route(1, 0)
	if fwd[1] == back[1] {
		t.Error("opposite directions share a link")
	}
	if _, err := NewTorus(TorusConfig{Dims: []int{0}}); err == nil {
		t.Error("invalid config accepted")
	}
}
