package topology

import (
	"fmt"

	"binetrees/internal/core"
)

// Torus is a Fugaku-like k-dimensional torus. Every inter-node hop uses a
// dedicated per-(node, dimension, direction) link; routing is
// dimension-ordered and minimal (ties broken toward the positive
// direction). Following the paper's observation that "on a torus, all links
// can be considered oversubscribed", torus links are classified Global so
// the traffic-reduction metric counts byte·hops.
type Torus struct {
	*common
	name string
	geom core.Torus
	// link id for (node, dim, +1) at dimLinks[node][dim][0], (node, dim,
	// −1) at [1].
	dimLinks [][][2]int
}

// TorusConfig sizes a Torus topology.
type TorusConfig struct {
	Name string
	Dims []int
	// NICBW is the per-direction injection bandwidth (one NIC per
	// direction on Fugaku; the cost model exploits this through the
	// per-direction links, so injection here is per-NIC).
	NICBW float64
	// LinkBW is the capacity of each inter-node torus link.
	LinkBW float64
}

// NewTorus builds the topology.
func NewTorus(cfg TorusConfig) (*Torus, error) {
	geom, err := core.NewTorus(cfg.Dims...)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	n := geom.P()
	t := &Torus{common: newCommon(n, cfg.NICBW), name: cfg.Name, geom: geom}
	t.dimLinks = make([][][2]int, n)
	for node := 0; node < n; node++ {
		t.dimLinks[node] = make([][2]int, geom.NDims())
		for d := 0; d < geom.NDims(); d++ {
			t.dimLinks[node][d][0] = t.addLink(Global, cfg.LinkBW)
			t.dimLinks[node][d][1] = t.addLink(Global, cfg.LinkBW)
		}
	}
	return t, nil
}

// Name returns the configured system name.
func (t *Torus) Name() string { return t.name }

// Geometry exposes the underlying coordinate system.
func (t *Torus) Geometry() core.Torus { return t.geom }

// NumGroups treats every node as its own group: any inter-node hop counts
// as oversubscribed traffic.
func (t *Torus) NumGroups() int { return t.nodes }

// GroupOf is the identity.
func (t *Torus) GroupOf(node int) int { return node }

// Routes returns the memoized route cache.
func (t *Torus) Routes() *RouteCache { return t.routeCache(t) }

// Route walks dimension order, taking the shorter ring direction in each
// dimension and collecting one link per hop.
func (t *Torus) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	route := []int{t.inject(src)}
	cur := src
	cc := t.geom.Coord(src)
	dc := t.geom.Coord(dst)
	for d := 0; d < t.geom.NDims(); d++ {
		size := t.geom.Dims[d]
		fwd := core.Mod(dc[d]-cc[d], size)
		dir, hops := +1, fwd
		if back := size - fwd; fwd != 0 && back < fwd {
			dir, hops = -1, back
		}
		for h := 0; h < hops; h++ {
			idx := 0
			if dir < 0 {
				idx = 1
			}
			route = append(route, t.dimLinks[cur][d][idx])
			cur = t.geom.Displace(cur, d, dir)
		}
	}
	return append(route, t.eject(dst))
}
