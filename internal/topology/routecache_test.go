package topology

import (
	"sync"
	"testing"
)

// testTopologies builds one instance of each topology family at a size
// where every routing case (intra-group, inter-group, multi-hop wraps)
// occurs.
func testTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	df, err := NewDragonfly(DragonflyConfig{
		Name: "df", Groups: 4, NodesPerGroup: 3, NICBW: 25e9, GlobalBW: 50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDown(UpDownConfig{
		Name: "ud", Groups: 3, NodesPerGroup: 4, NICBW: 25e9, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tor, err := NewTorus(TorusConfig{
		Name: "tor", Dims: []int{4, 3, 2}, NICBW: 6.8e9, LinkBW: 6.8e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Topology{
		"dragonfly": df,
		"updown":    ud,
		"flat":      NewFlat("flat", 9, 25e9),
		"torus":     tor,
	}
}

// TestRouteCacheEquivalence checks, for every topology family and every
// (src, dst) pair, that the memoized route equals the directly computed one
// — both on first computation and when served from the cache.
func TestRouteCacheEquivalence(t *testing.T) {
	for name, topo := range testTopologies(t) {
		t.Run(name, func(t *testing.T) {
			rc := topo.Routes()
			if rc.Topology() != topo {
				t.Fatal("cache wraps the wrong topology")
			}
			if topo.Routes() != rc {
				t.Fatal("Routes() not memoized per instance")
			}
			n := topo.Nodes()
			for pass := 0; pass < 2; pass++ { // cold then cached
				for src := 0; src < n; src++ {
					for dst := 0; dst < n; dst++ {
						want := topo.Route(src, dst)
						got := rc.Route(src, dst)
						if len(got) != len(want) {
							t.Fatalf("pass %d: route %d→%d: %v, want %v", pass, src, dst, got, want)
						}
						for i := range want {
							if int(got[i]) != want[i] {
								t.Fatalf("pass %d: route %d→%d: %v, want %v", pass, src, dst, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// TestRouteCacheConcurrent hammers one cache from many goroutines; the race
// detector checks the locking, and every returned route must match the
// direct computation.
func TestRouteCacheConcurrent(t *testing.T) {
	topo, err := NewTorus(TorusConfig{Name: "tor", Dims: []int{4, 4}, NICBW: 1e9, LinkBW: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRouteCache(topo)
	n := topo.Nodes()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 4*n*n; i++ {
				src := (i + seed) % n
				dst := (i * 7) % n
				got := rc.Route(src, dst)
				want := topo.Route(src, dst)
				if len(got) != len(want) {
					errs <- "route length mismatch"
					return
				}
				for j := range want {
					if int(got[j]) != want[j] {
						errs <- "route id mismatch"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
