package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden harness: each analyzer runs over a testdata/src package whose
// files carry trailing "// want `regexp`" comments on every line that must
// produce a finding. The test fails on any unexpected finding and on any
// want comment no finding matched — the analysistest contract, hand-rolled
// on the stdlib.

var (
	goldenOnce sync.Once
	goldenLdr  *Loader
	goldenErr  error
)

// sharedLoader returns one Loader for all golden tests, so the expensive
// source-importer stdlib checks run once per test binary.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	goldenOnce.Do(func() {
		goldenLdr, goldenErr = NewLoader(".")
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenLdr
}

// mustRun wraps Run, failing the test on a driver error (which only
// test-variant loading can produce).
func mustRun(t *testing.T, ldr *Loader, pkgs []*Package, analyzers []*Analyzer) []Finding {
	t.Helper()
	findings, err := Run(ldr, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func loadGolden(t *testing.T, dirs ...string) (*Loader, []*Package) {
	t.Helper()
	ldr := sharedLoader(t)
	pkgs := make([]*Package, len(dirs))
	for i, dir := range dirs {
		p, err := ldr.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs[i] = p
	}
	return ldr, pkgs
}

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants parses the "// want" comments of every file, keyed by
// module-relative file:line (the coordinates findings carry).
func collectWants(t *testing.T, ldr *Loader, pkgs []*Package) map[string][]*wantEntry {
	t.Helper()
	wants := map[string][]*wantEntry{}
	seen := map[*ast.File]bool{} // test variants share the plain files' ASTs
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					rest = strings.TrimSpace(rest)
					var pattern string
					switch {
					case strings.HasPrefix(rest, "`"):
						end := strings.Index(rest[1:], "`")
						if end < 0 {
							t.Fatalf("%s: unterminated want pattern", ldr.Fset.Position(c.Pos()))
						}
						pattern = rest[1 : 1+end]
					case strings.HasPrefix(rest, `"`):
						var err error
						pattern, err = strconv.Unquote(rest)
						if err != nil {
							t.Fatalf("%s: bad want pattern: %v", ldr.Fset.Position(c.Pos()), err)
						}
					default:
						continue // prose mentioning "want", not a pattern
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", ldr.Fset.Position(c.Pos()), err)
					}
					pos := ldr.Fset.Position(c.Pos())
					key := goldenKey(ldr, pos.Filename, pos.Line)
					wants[key] = append(wants[key], &wantEntry{re: re})
				}
			}
		}
	}
	return wants
}

func goldenKey(ldr *Loader, filename string, line int) string {
	if rel, err := filepath.Rel(ldr.ModRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
		filename = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", filename, line)
}

// runGolden runs one analyzer over the given testdata package dirs and
// matches its findings against the want comments.
func runGolden(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	ldr, pkgs := loadGolden(t, dirs...)
	findings := mustRun(t, ldr, pkgs, []*Analyzer{a})
	matchGolden(t, findings, collectWants(t, ldr, pkgs))
}

// runGoldenWithTests is runGolden for Tests analyzers: the want comments
// live in _test.go files, so the test variants join the want scan (their
// shared plain ASTs dedupe inside collectWants).
func runGoldenWithTests(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	ldr, pkgs := loadGolden(t, dirs...)
	findings := mustRun(t, ldr, pkgs, []*Analyzer{a})
	wantPkgs := append([]*Package(nil), pkgs...)
	for _, p := range pkgs {
		tps, err := ldr.LoadTests(p)
		if err != nil {
			t.Fatal(err)
		}
		wantPkgs = append(wantPkgs, tps...)
	}
	matchGolden(t, findings, collectWants(t, ldr, wantPkgs))
}

func matchGolden(t *testing.T, findings []Finding, wants map[string][]*wantEntry) {
	t.Helper()
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", key, f.Rule, f.Message)
		}
	}
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("missing finding at %s: want match for %q", key, w.re)
			}
		}
	}
}

func TestGoArgGolden(t *testing.T) {
	runGolden(t, GoArg, "testdata/src/goarg")
}

func TestCtxFlowGolden(t *testing.T) {
	// The harness package is inside the rule's target set; outside is not —
	// its context.Background() must produce no finding.
	runGolden(t, CtxFlow, "testdata/src/ctxflow/internal/harness", "testdata/src/ctxflow/outside")
}

func TestStageVocabGolden(t *testing.T) {
	runGolden(t, StageVocab, "testdata/src/stagevocab")
}

func TestDetRangeGolden(t *testing.T) {
	runGolden(t, DetRange, "testdata/src/detrange")
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, AtomicMix, "testdata/src/atomicmix")
}

func TestStorePermGolden(t *testing.T) {
	// Inside the store package the permission invariant binds; outside it
	// does not.
	runGolden(t, StorePerm, "testdata/src/storeperm/internal/tracestore", "testdata/src/storeperm/outside")
}

func TestMetricNameGolden(t *testing.T) {
	runGolden(t, MetricName, "testdata/src/metricname",
		"testdata/src/metricname/internal/obs", "testdata/src/metricname/names")
}

func TestTraceColRetGolden(t *testing.T) {
	runGolden(t, TraceColRet, "testdata/src/tracecolret",
		"testdata/src/tracecolret/internal/fabric", "testdata/src/tracecolret/internal/harness")
}

// TestTraceColRetGate pins the arming condition: identical retention shapes,
// but no reachable ResetTraceCache in the analysis set, so no findings (the
// quiet package carries no want comments).
func TestTraceColRetGate(t *testing.T) {
	runGolden(t, TraceColRet, "testdata/src/tracecolretquiet",
		"testdata/src/tracecolretquiet/internal/fabric")
}

func TestParaTestGolden(t *testing.T) {
	runGoldenWithTests(t, ParaTest, "testdata/src/paratest",
		"testdata/src/paratest/internal/harness")
}

// TestCleanPackageNoFindings pins the zero-exit contract: a conforming
// package produces no findings under the full suite.
func TestCleanPackageNoFindings(t *testing.T) {
	ldr, pkgs := loadGolden(t, "testdata/src/clean")
	if findings := mustRun(t, ldr, pkgs, Analyzers()); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("finding on clean package: %s:%d [%s] %s", f.File, f.Line, f.Rule, f.Message)
		}
	}
}

// markerLine locates a "marker:<name>" comment in a loaded package.
func markerLine(t *testing.T, ldr *Loader, pkg *Package, marker string) int {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "marker:"+marker) {
					return ldr.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	t.Fatalf("marker %q not found", marker)
	return 0
}

// TestSuppression pins the //binelint:ignore machinery on the suppress
// golden package: matching directives (standalone-above and trailing forms)
// silence findings, a directive for a different rule does not, malformed
// directives (no reason) and unused directives are reported.
func TestSuppression(t *testing.T) {
	ldr, pkgs := loadGolden(t, "testdata/src/suppress")
	pkg := pkgs[0]
	findings := mustRun(t, ldr, pkgs, []*Analyzer{GoArg})

	at := func(rule string, line int) *Finding {
		for i := range findings {
			if findings[i].Rule == rule && findings[i].Line == line {
				return &findings[i]
			}
		}
		return nil
	}

	if f := at("goarg", markerLine(t, ldr, pkg, "suppressed-above")); f != nil {
		t.Errorf("standalone directive did not suppress: %+v", *f)
	}
	if f := at("goarg", markerLine(t, ldr, pkg, "suppressed-trailing")); f != nil {
		t.Errorf("trailing directive did not suppress: %+v", *f)
	}
	if at("goarg", markerLine(t, ldr, pkg, "unsuppressed")) == nil {
		t.Error("directive for a different rule suppressed a goarg finding")
	}
	malformed := at("binelint", markerLine(t, ldr, pkg, "malformed-above")-1)
	if malformed == nil || !strings.Contains(malformed.Message, "malformed ignore directive") {
		t.Errorf("missing malformed-directive finding, got %+v", malformed)
	}
	for _, marker := range []string{"wrong-rule", "unused-directive"} {
		f := at("binelint", markerLine(t, ldr, pkg, marker))
		if f == nil || !strings.Contains(f.Message, "unused ignore directive") {
			t.Errorf("missing unused-directive finding at %s, got %+v", marker, f)
		}
	}
	// Exactly the asserted findings and no more: 1 goarg + 3 binelint.
	if len(findings) != 4 {
		t.Errorf("got %d findings, want 4: %+v", len(findings), findings)
	}
}
