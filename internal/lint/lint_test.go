package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteTextFormat(t *testing.T) {
	var sb strings.Builder
	WriteText(&sb, []Finding{{Rule: "goarg", File: "internal/x/x.go", Line: 12, Col: 3, Message: "boom"}})
	if got, want := sb.String(), "internal/x/x.go:12: [goarg] boom\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestWriteJSONShape(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Fatalf("empty findings encode as %q, want []", got)
	}

	sb.Reset()
	in := []Finding{{Rule: "ctxflow", File: "a.go", Line: 7, Col: 2, Message: "m"}}
	if err := WriteJSON(&sb, in); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(decoded))
	}
	for _, key := range []string{"rule", "file", "line", "col", "message", "fixed"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON finding missing key %q: %v", key, decoded[0])
		}
	}
}

func TestPathSegments(t *testing.T) {
	cases := []struct {
		path string
		segs []string
		want bool
	}{
		{"binetrees/internal/harness", []string{"internal", "harness"}, true},
		{"binetrees/internal/lint/testdata/src/ctxflow/internal/harness", []string{"internal", "harness"}, true},
		{"binetrees/internal/harnessfoo", []string{"internal", "harness"}, false},
		{"binetrees/internal/obs", []string{"internal", "harness"}, false},
		{"internal/harness", []string{"internal", "harness"}, true},
	}
	for _, c := range cases {
		if got := pathSegments(c.path, c.segs...); got != c.want {
			t.Errorf("pathSegments(%q, %v) = %v, want %v", c.path, c.segs, got, c.want)
		}
	}
}

// TestMainExitCodes pins the CLI contract in-process: 0 on a clean package,
// 1 on findings (text and JSON modes), 2 on usage errors, and -rules
// restricting the suite.
func TestMainExitCodes(t *testing.T) {
	runMain := func(args ...string) (int, string, string) {
		var out, errb strings.Builder
		code := Main(args, &out, &errb)
		return code, out.String(), errb.String()
	}

	if code, out, errb := runMain("testdata/src/clean"); code != ExitClean || out != "" {
		t.Errorf("clean package: code=%d out=%q err=%q, want exit 0 and no output", code, out, errb)
	}

	code, out, _ := runMain("testdata/src/goarg")
	if code != ExitFindings {
		t.Fatalf("goarg package: code=%d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out, "[goarg]") || !strings.Contains(out, "goarg.go:") {
		t.Errorf("text findings missing rule tag or file:line: %q", out)
	}

	code, out, _ = runMain("-json", "testdata/src/goarg")
	if code != ExitFindings {
		t.Fatalf("-json: code=%d, want %d", code, ExitFindings)
	}
	var findings []Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(findings) == 0 || findings[0].Rule != "goarg" {
		t.Errorf("-json findings: %+v", findings)
	}

	// Restricting to a rule the package does not violate exits clean.
	if code, out, _ := runMain("-rules", "ctxflow", "testdata/src/goarg"); code != ExitClean || out != "" {
		t.Errorf("-rules ctxflow on goarg package: code=%d out=%q, want clean", code, out)
	}

	// An unknown rule refuses and names every known rule, so the caller can
	// see the typo without a second invocation.
	code, _, errb := runMain("-rules", "nonesuch", "testdata/src/clean")
	if code != ExitError || !strings.Contains(errb, "unknown rule") {
		t.Errorf("unknown rule: code=%d err=%q, want exit 2", code, errb)
	}
	if !strings.Contains(errb, "known rules:") {
		t.Errorf("unknown-rule error does not list known rules: %q", errb)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(errb, a.Name) {
			t.Errorf("unknown-rule error missing rule %q: %q", a.Name, errb)
		}
	}

	if code, _, errb := runMain("-diff", "testdata/src/clean"); code != ExitError || !strings.Contains(errb, "-diff requires -fix") {
		t.Errorf("-diff without -fix: code=%d err=%q, want exit 2", code, errb)
	}
}
