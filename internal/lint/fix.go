package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The -fix engine: analyzers attach machine-applicable TextEdits to
// findings (Pass.ReportfFix); ApplyFixes splices them into the source,
// gofmt-formats the result, and either writes the files in place or prints
// a unified diff (-fix -diff). Application is idempotent by construction —
// an applied fix removes the finding that carried it, so a second run
// produces zero edits — and conflicting fixes (overlapping edits from two
// findings) are resolved by applying the first and leaving the second
// unfixed for the next run.

// TextEdit replaces the source range [Pos, End) with New. Pos == End
// inserts.
type TextEdit struct {
	Pos, End token.Pos
	New      string
}

// offsetEdit is a TextEdit resolved to byte offsets in one file.
type offsetEdit struct {
	start, end int
	text       string
}

// ApplyFixes applies the suggested edits of findings, marking each finding
// it applies as Fixed. With write set, files are rewritten in place
// (gofmt-formatted); otherwise a unified diff of what would change is
// written to diffOut. It returns the number of findings applied.
func ApplyFixes(ldr *Loader, findings []Finding, write bool, diffOut io.Writer) (int, error) {
	// Group fixable findings by file, preserving finding order.
	type fileFix struct {
		abs      string
		findings []int
	}
	byFile := map[string]*fileFix{}
	var order []string
	for i := range findings {
		if len(findings[i].edits) == 0 {
			continue
		}
		abs := ldr.Fset.Position(findings[i].edits[0].Pos).Filename
		ff := byFile[abs]
		if ff == nil {
			ff = &fileFix{abs: abs}
			byFile[abs] = ff
			order = append(order, abs)
		}
		ff.findings = append(ff.findings, i)
	}
	sort.Strings(order)

	applied := 0
	for _, abs := range order {
		ff := byFile[abs]
		src, err := os.ReadFile(abs)
		if err != nil {
			return applied, err
		}
		var accepted []offsetEdit
		var fixedHere []int
		for _, fi := range ff.findings {
			edits, ok := resolveEdits(ldr.Fset, findings[fi].edits, abs, len(src))
			if ok {
				ok = compatible(accepted, edits)
			}
			if !ok {
				continue // conflicting or malformed fix: leave for the next run
			}
			accepted = mergeEdits(accepted, edits)
			fixedHere = append(fixedHere, fi)
		}
		if len(accepted) == 0 {
			continue
		}
		out := splice(src, accepted)
		formatted, err := format.Source(out)
		if err != nil {
			// A fix that produces unparseable code is a bug in the analyzer;
			// surface it rather than writing a broken file.
			return applied, fmt.Errorf("lint: fix for %s produced invalid Go: %v", abs, err)
		}
		if write {
			info, err := os.Stat(abs)
			if err != nil {
				return applied, err
			}
			if err := os.WriteFile(abs, formatted, info.Mode().Perm()); err != nil {
				return applied, err
			}
		} else if diffOut != nil {
			rel := abs
			if r, err := filepath.Rel(ldr.ModRoot, abs); err == nil && !strings.HasPrefix(r, "..") {
				rel = filepath.ToSlash(r)
			}
			writeUnifiedDiff(diffOut, rel, src, formatted)
		}
		for _, fi := range fixedHere {
			findings[fi].Fixed = true
			applied++
		}
	}
	return applied, nil
}

// resolveEdits converts a finding's edits to sorted byte offsets in file
// abs, rejecting edits outside the file or spanning files.
func resolveEdits(fset *token.FileSet, edits []TextEdit, abs string, size int) ([]offsetEdit, bool) {
	out := make([]offsetEdit, 0, len(edits))
	for _, e := range edits {
		p, q := fset.Position(e.Pos), fset.Position(e.End)
		if p.Filename != abs || q.Filename != abs || p.Offset > q.Offset || q.Offset > size {
			return nil, false
		}
		out = append(out, offsetEdit{start: p.Offset, end: q.Offset, text: e.New})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		return out[i].text < out[j].text
	})
	// A single finding's own edits must not overlap each other.
	for i := 1; i < len(out); i++ {
		if overlaps(out[i-1], out[i]) && out[i-1] != out[i] {
			return nil, false
		}
	}
	return out, true
}

// overlaps reports whether two offset edits collide: ranges intersect, or a
// non-identical insertion coincides with a replacement boundary start.
func overlaps(a, b offsetEdit) bool {
	if a.start > b.start {
		a, b = b, a
	}
	if a == b {
		return false // identical edits merge (duplicate import inserts)
	}
	return b.start < a.end
}

// compatible reports whether edits can join accepted without collisions.
func compatible(accepted, edits []offsetEdit) bool {
	for _, e := range edits {
		for _, a := range accepted {
			if a != e && overlaps(a, e) {
				return false
			}
		}
	}
	return true
}

// mergeEdits unions edits into accepted, dropping exact duplicates, and
// returns the combined sorted list.
func mergeEdits(accepted, edits []offsetEdit) []offsetEdit {
	for _, e := range edits {
		dup := false
		for _, a := range accepted {
			if a == e {
				dup = true
				break
			}
		}
		if !dup {
			accepted = append(accepted, e)
		}
	}
	sort.Slice(accepted, func(i, j int) bool {
		if accepted[i].start != accepted[j].start {
			return accepted[i].start < accepted[j].start
		}
		if accepted[i].end != accepted[j].end {
			return accepted[i].end < accepted[j].end
		}
		return accepted[i].text < accepted[j].text
	})
	return accepted
}

// splice applies sorted non-overlapping edits to src.
func splice(src []byte, edits []offsetEdit) []byte {
	var out []byte
	last := 0
	for _, e := range edits {
		out = append(out, src[last:e.start]...)
		out = append(out, e.text...)
		last = e.end
	}
	return append(out, src[last:]...)
}

// ensureImport returns an edit adding an import of path to f, or no edit if
// f already imports it. The insertion lands inside the first import block
// (or as a new import declaration after the package clause) and relies on
// the post-splice gofmt pass for final layout.
func ensureImport(f *ast.File, path string) (TextEdit, bool) {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return TextEdit{}, false
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			return TextEdit{Pos: gd.Lparen + 1, End: gd.Lparen + 1, New: "\n\t" + strconv.Quote(path)}, true
		}
		// Single-spec form: import "x" → import ("x"; path)
		return TextEdit{Pos: gd.End(), End: gd.End(), New: "\nimport " + strconv.Quote(path)}, true
	}
	// No imports at all: add a declaration right after the package clause.
	return TextEdit{Pos: f.Name.End(), End: f.Name.End(), New: "\n\nimport " + strconv.Quote(path)}, true
}

// writeUnifiedDiff prints a minimal unified diff (3 context lines) between
// a and b under the module-relative name rel.
func writeUnifiedDiff(w io.Writer, rel string, a, b []byte) {
	al, bl := splitLines(a), splitLines(b)
	ops := diffLines(al, bl)
	if len(ops) == 0 {
		return
	}
	fmt.Fprintf(w, "--- a/%s\n+++ b/%s\n", rel, rel)
	const ctx = 3
	for h := 0; h < len(ops); {
		// A hunk spans from ctx lines before the first change to ctx lines
		// after the last change closer than 2*ctx to its neighbor.
		end := h + 1
		for end < len(ops) && ops[end].aLine-ops[end-1].aEnd() <= 2*ctx {
			end++
		}
		aStart := max(0, ops[h].aLine-ctx)
		aEnd := min(len(al), ops[end-1].aEnd()+ctx)
		bStart := max(0, ops[h].bLine-ctx)
		bEnd := min(len(bl), ops[end-1].bEnd()+ctx)
		fmt.Fprintf(w, "@@ -%d,%d +%d,%d @@\n", aStart+1, aEnd-aStart, bStart+1, bEnd-bStart)
		aPos := aStart
		for _, op := range ops[h:end] {
			for ; aPos < op.aLine; aPos++ {
				fmt.Fprintf(w, " %s\n", al[aPos])
			}
			for _, l := range op.del {
				fmt.Fprintf(w, "-%s\n", l)
			}
			for _, l := range op.ins {
				fmt.Fprintf(w, "+%s\n", l)
			}
			aPos = op.aEnd()
		}
		for ; aPos < aEnd; aPos++ {
			fmt.Fprintf(w, " %s\n", al[aPos])
		}
		h = end
	}
}

func splitLines(b []byte) []string {
	s := string(b)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffOp is one contiguous change: del lines removed at aLine, ins lines
// added at bLine.
type diffOp struct {
	aLine, bLine int
	del, ins     []string
}

func (o diffOp) aEnd() int { return o.aLine + len(o.del) }
func (o diffOp) bEnd() int { return o.bLine + len(o.ins) }

// diffLines computes the line-level changes between a and b via a classic
// LCS table — fine at source-file sizes, and dependency-free.
func diffLines(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else {
				lcs[i][j] = max(lcs[i+1][j], lcs[i][j+1])
			}
		}
	}
	var ops []diffOp
	var cur *diffOp
	flush := func() {
		if cur != nil {
			ops = append(ops, *cur)
			cur = nil
		}
	}
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && a[i] == b[j]:
			flush()
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			if cur == nil {
				cur = &diffOp{aLine: i, bLine: j}
			}
			cur.ins = append(cur.ins, b[j])
			j++
		default:
			if cur == nil {
				cur = &diffOp{aLine: i, bLine: j}
			}
			cur.del = append(cur.del, a[i])
			i++
		}
	}
	flush()
	return ops
}
