package lint

import (
	"go/ast"
)

// CtxFlow forbids minting fresh root contexts — context.Background() or
// context.TODO() — in the request-path packages internal/harness,
// internal/service, and internal/pool. PR 7 threaded a context from every
// entry point down to the pool cells so that client disconnects stop cell
// submission and stage timings attribute to the request trace; a root
// context minted mid-path silently detaches everything below it from
// cancellation and tracing (the live finding this rule shipped with:
// sweepCollective building its own context.Background() instead of taking
// the caller's). Entry points that genuinely own a fresh lifetime (a CLI
// main, a server's own lifecycle context) either live outside these
// packages or carry a //binelint:ignore with the reason.
//
// Test files are never loaded by the driver, so tests may use
// context.Background() freely.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-path packages must thread the caller's context, not mint context.Background()/TODO()",
	Run:  runCtxFlow,
}

// ctxFlowTargets are the request-path package trees, matched as consecutive
// import-path segments.
var ctxFlowTargets = [][]string{
	{"internal", "harness"},
	{"internal", "service"},
	{"internal", "pool"},
}

func runCtxFlow(pass *Pass) {
	targeted := false
	for _, segs := range ctxFlowTargets {
		if pathSegments(pass.Pkg.Path, segs...) {
			targeted = true
			break
		}
	}
	if !targeted {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			for _, name := range []string{"Background", "TODO"} {
				if isPkgFunc(fn, name, "context") {
					pass.Reportf(call.Pos(),
						"context.%s() mints a root context inside a request path; thread the caller's ctx instead (accept a context.Context parameter)",
						name)
				}
			}
			return true
		})
	}
}
