package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Facts is the whole-module fact layer computed once per Run and shared by
// every analyzer in the pass: the static call graph (callgraph.go) and a
// constant-value resolver that folds string constants across package
// boundaries. Building it is one walk over the analysis set's files —
// cheaper than any single analyzer's own traversal — so the driver computes
// it unconditionally rather than tracking which analyzers ask.
type Facts struct {
	Graph *CallGraph

	// varInit maps a package-level var to its single initializer expression
	// and owning package, for constant folding through var indirection.
	// Vars that are ever reassigned, or declared with multi-value
	// initializers, are absent: their value is not a static fact.
	varInit map[*types.Var]varInit
}

type varInit struct {
	pkg  *Package
	expr ast.Expr
}

// NewFacts computes the fact layer over pkgs.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Graph:   buildCallGraph(pkgs),
		varInit: map[*types.Var]varInit{},
	}
	reassigned := map[*types.Var]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue // var a, b = f(): not a per-name initializer
					}
					for i, name := range vs.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok && v != nil {
							f.varInit[v] = varInit{pkg: pkg, expr: vs.Values[i]}
						}
					}
				}
			}
			// Any assignment to a package-level var anywhere in the module
			// voids its initializer as a static fact.
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range as.Lhs {
					switch x := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						if v, ok := pkg.Info.ObjectOf(x).(*types.Var); ok && v != nil && v.Parent() == pkg.Pkg.Scope() {
							reassigned[v] = true
						}
					case *ast.SelectorExpr:
						// Qualified assignment to another package's var.
						if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
							reassigned[v] = true
						}
					}
				}
				return true
			})
		}
	}
	for v := range reassigned {
		delete(f.varInit, v)
	}
	return f
}

// StringConst resolves e (an expression in pkg) to its compile-time string
// value, folding across package boundaries: literals and declared constants
// come straight from the type checker; a reference to a package-level var
// with a single never-reassigned initializer resolves through that
// initializer in its own package; string concatenation folds recursively.
// The second result is false when the value is not a static fact.
func (f *Facts) StringConst(pkg *Package, e ast.Expr) (string, bool) {
	return f.stringConst(pkg, e, map[*types.Var]bool{})
}

func (f *Facts) stringConst(pkg *Package, e ast.Expr, visiting map[*types.Var]bool) (string, bool) {
	e = ast.Unparen(e)
	// The type checker already folds constant expressions, including
	// references to constants from other packages.
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		l, ok := f.stringConst(pkg, x.X, visiting)
		if !ok {
			return "", false
		}
		r, ok := f.stringConst(pkg, x.Y, visiting)
		if !ok {
			return "", false
		}
		return l + r, true
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := x.(*ast.Ident); ok {
			obj = pkg.Info.Uses[id]
		} else {
			obj = pkg.Info.Uses[x.(*ast.SelectorExpr).Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || v == nil || visiting[v] {
			return "", false
		}
		init, ok := f.varInit[v]
		if !ok {
			return "", false
		}
		visiting[v] = true
		defer delete(visiting, v)
		return f.stringConst(init.pkg, init.expr, visiting)
	}
	return "", false
}
