package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes for Main. Findings and hard errors are distinct so CI can tell
// "the tree violates an invariant" from "binelint itself could not run".
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Main is the binelint entry point, factored for in-process testing of flag
// handling and exit codes. args are the command-line arguments after the
// program name.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("binelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files (gofmt-clean, idempotent)")
	diff := fs.Bool("diff", false, "with -fix: print the patch to stdout instead of writing files (findings go to stderr)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: binelint [-json] [-fix [-diff]] [-rules rule,...] [./... | dir ...]\n\nrules:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *diff && !*fix {
		fmt.Fprintf(stderr, "binelint: -diff requires -fix\n")
		return ExitError
	}

	analyzers := Analyzers()
	if *rules != "" {
		byName := map[string]*Analyzer{}
		known := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
			known = append(known, a.Name)
		}
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				// A typo must not silently narrow the run: name the known
				// rules and refuse.
				fmt.Fprintf(stderr, "binelint: unknown rule %q (known rules: %s)\n", name, strings.Join(known, ", "))
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "binelint: %v\n", err)
		return ExitError
	}
	ldr, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "binelint: %v\n", err)
		return ExitError
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var pkgs []*Package
	seen := map[string]bool{}
	add := func(ps []*Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, t := range targets {
		if t == "./..." || t == "..." {
			all, err := ldr.LoadAll()
			if err != nil {
				fmt.Fprintf(stderr, "binelint: %v\n", err)
				return ExitError
			}
			add(all)
			continue
		}
		dir := t
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(wd, dir)
		}
		pkg, err := ldr.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "binelint: %v\n", err)
			return ExitError
		}
		add([]*Package{pkg})
	}

	findings, err := Run(ldr, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "binelint: %v\n", err)
		return ExitError
	}
	if *fix {
		// -fix writes files in place; -fix -diff keeps stdout a pure patch
		// (findings move to stderr) so CI can assert patch emptiness.
		if _, err := ApplyFixes(ldr, findings, !*diff, stdout); err != nil {
			fmt.Fprintf(stderr, "binelint: %v\n", err)
			return ExitError
		}
	}
	findingsOut := stdout
	if *fix && *diff {
		findingsOut = stderr
	}
	if *jsonOut {
		if err := WriteJSON(findingsOut, findings); err != nil {
			fmt.Fprintf(stderr, "binelint: %v\n", err)
			return ExitError
		}
	} else {
		WriteText(findingsOut, findings)
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}
