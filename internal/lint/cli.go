package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes for Main. Findings and hard errors are distinct so CI can tell
// "the tree violates an invariant" from "binelint itself could not run".
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Main is the binelint entry point, factored for in-process testing of flag
// handling and exit codes. args are the command-line arguments after the
// program name.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("binelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: binelint [-json] [-rules rule,...] [./... | dir ...]\n\nrules:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers := Analyzers()
	if *rules != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "binelint: unknown rule %q\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "binelint: %v\n", err)
		return ExitError
	}
	ldr, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "binelint: %v\n", err)
		return ExitError
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	var pkgs []*Package
	seen := map[string]bool{}
	add := func(ps []*Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, t := range targets {
		if t == "./..." || t == "..." {
			all, err := ldr.LoadAll()
			if err != nil {
				fmt.Fprintf(stderr, "binelint: %v\n", err)
				return ExitError
			}
			add(all)
			continue
		}
		dir := t
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(wd, dir)
		}
		pkg, err := ldr.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "binelint: %v\n", err)
			return ExitError
		}
		add([]*Package{pkg})
	}

	findings := Run(ldr, pkgs, analyzers)
	if *jsonOut {
		if err := WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "binelint: %v\n", err)
			return ExitError
		}
	} else {
		WriteText(stdout, findings)
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}
