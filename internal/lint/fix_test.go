package lint

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixFixtureSrc violates detrange (map range appending to a rendered slice
// without a sort) and atomicmix (a field accessed atomically on one path and
// bare on four others: store, compound add, increment, read).
const fixFixtureSrc = `package fixme

import "sync/atomic"

type counters struct {
	hits uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) bad(n uint64) uint64 {
	c.hits = n
	c.hits += 2
	c.hits++
	return c.hits
}

func render(m map[string]string) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`

// writeFixModule materializes a throwaway module around fixFixtureSrc.
func writeFixModule(t *testing.T) (dir, file string) {
	t.Helper()
	dir = t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixme\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	file = filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(file, []byte(fixFixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, file
}

// loadAndRun runs the fixable analyzers over the temp module with a fresh
// loader (fresh object space, positions valid against the file on disk).
func loadAndRun(t *testing.T, dir string) (*Loader, []Finding) {
	t.Helper()
	ldr, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	return ldr, mustRun(t, ldr, pkgs, []*Analyzer{DetRange, AtomicMix})
}

// TestApplyFixesIdempotent pins the -fix contract: one application removes
// every fixable finding, the result is gofmt-clean, and a second -fix run is
// a byte-identical no-op.
func TestApplyFixesIdempotent(t *testing.T) {
	dir, file := writeFixModule(t)

	ldr, findings := loadAndRun(t, dir)
	// 1 detrange + 4 atomicmix findings, all carrying fixes.
	if len(findings) != 5 {
		t.Fatalf("got %d findings, want 5: %+v", len(findings), findings)
	}

	// A dry -fix -diff run produces a patch and leaves the file alone.
	var patch bytes.Buffer
	if _, err := ApplyFixes(ldr, findings, false, &patch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(patch.String(), "--- a/fixme.go") || !strings.Contains(patch.String(), "atomic.StoreUint64(&c.hits, n)") {
		t.Errorf("diff output missing expected content:\n%s", patch.String())
	}
	if cur, _ := os.ReadFile(file); string(cur) != fixFixtureSrc {
		t.Fatal("-fix -diff modified the file")
	}

	applied, err := ApplyFixes(ldr, findings, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 5 {
		t.Errorf("applied %d fixes, want 5", applied)
	}
	for _, f := range findings {
		if !f.Fixed {
			t.Errorf("finding not marked fixed: %+v", f)
		}
	}

	once, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if formatted, err := format.Source(once); err != nil || !bytes.Equal(formatted, once) {
		t.Errorf("fixed file is not gofmt-clean (err=%v):\n%s", err, once)
	}
	for _, want := range []string{
		"atomic.StoreUint64(&c.hits, n)",
		"atomic.AddUint64(&c.hits, 2)",
		"atomic.AddUint64(&c.hits, 1)",
		"return atomic.LoadUint64(&c.hits)",
		"sort.Strings(keys)",
		`"sort"`,
	} {
		if !bytes.Contains(once, []byte(want)) {
			t.Errorf("fixed file missing %q:\n%s", want, once)
		}
	}

	// Second run: the fixes removed their findings, so nothing applies and
	// the bytes do not move.
	ldr2, findings2 := loadAndRun(t, dir)
	if len(findings2) != 0 {
		t.Errorf("findings survived -fix: %+v", findings2)
	}
	if applied, err := ApplyFixes(ldr2, findings2, true, nil); err != nil || applied != 0 {
		t.Errorf("second ApplyFixes = (%d, %v), want (0, nil)", applied, err)
	}
	twice, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(once, twice) {
		t.Error("-fix applied twice is not byte-identical to once")
	}
}

// TestMainFixDiff drives the CLI end to end the way the CI gate does:
// -fix -diff prints a pure patch on stdout (findings on stderr), -fix writes
// the tree clean, and a final -fix -diff on the fixed tree is empty.
func TestMainFixDiff(t *testing.T) {
	dir, file := writeFixModule(t)
	t.Chdir(dir)

	runMain := func(args ...string) (int, string, string) {
		var out, errb strings.Builder
		code := Main(args, &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, errb := runMain("-fix", "-diff", "./...")
	if code != ExitFindings {
		t.Fatalf("-fix -diff on violating tree: code=%d err=%q, want %d", code, errb, ExitFindings)
	}
	if !strings.HasPrefix(out, "--- a/fixme.go") {
		t.Errorf("stdout is not a pure patch:\n%s", out)
	}
	if !strings.Contains(errb, "[detrange]") || !strings.Contains(errb, "[atomicmix]") {
		t.Errorf("findings did not go to stderr: %q", errb)
	}
	if cur, _ := os.ReadFile(file); string(cur) != fixFixtureSrc {
		t.Fatal("-fix -diff modified the file")
	}

	if code, out, errb := runMain("-fix", "./..."); code != ExitFindings || !strings.Contains(out, "(fixed)") {
		t.Fatalf("-fix: code=%d out=%q err=%q, want findings marked (fixed)", code, out, errb)
	}

	if code, out, errb := runMain("./..."); code != ExitClean {
		t.Fatalf("fixed tree not clean: code=%d out=%q err=%q", code, out, errb)
	}
	if code, out, _ := runMain("-fix", "-diff", "./..."); code != ExitClean || out != "" {
		t.Errorf("-fix -diff on fixed tree: code=%d out=%q, want clean and empty", code, out)
	}
}
