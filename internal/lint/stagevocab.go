package lint

import (
	"go/ast"
	"go/types"
)

// StageVocab keeps stage and origin names in lockstep with the exported
// internal/obs vocabulary. CI's metrics-scrape gate asserts that every
// binebench_stage_seconds / binebench_resolve_seconds series carries one of
// the known stage/origin labels; a call site passing a raw string literal
// ("evaluate", "my-stage") compiles fine, silently mints a new series, and
// only fails at the CI scrape — or worse, never fails and just fragments
// the dashboards. Outside internal/obs, the stage/origin argument of the
// obs timing entry points must therefore be one of the exported constants
// (obs.Stage*, obs.Origin*). Non-constant expressions (ranging over
// obs.Stages(), a parameter) are allowed — the vocabulary functions already
// enumerate only exported names.
var StageVocab = &Analyzer{
	Name: "stagevocab",
	Doc:  "stage/origin arguments to obs timing calls must be the exported obs constants",
	Run:  runStageVocab,
}

// stageArgIndex maps each obs timing entry point to the position of its
// stage/origin argument.
var stageArgIndex = map[string]int{
	"TimeStage":       1,
	"StartSpan":       1,
	"ObserveStage":    0,
	"ObserveStageCtx": 1,
	"ObserveResolve":  1,
}

func runStageVocab(pass *Pass) {
	if pathSegments(pass.Pkg.Path, "internal", "obs") {
		return // the defining package owns the vocabulary
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !pathSegments(fn.Pkg().Path(), "internal", "obs") {
				return true
			}
			idx, ok := stageArgIndex[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil {
				return true // not a compile-time constant: can't verify, don't guess
			}
			if obj := constObject(info, arg); obj != nil && obj.Pkg() != nil && pathSegments(obj.Pkg().Path(), "internal", "obs") {
				return true // one of the exported obs constants
			}
			what := "constant"
			if _, isLit := ast.Unparen(arg).(*ast.BasicLit); isLit {
				what = "string literal"
			}
			pass.Reportf(arg.Pos(),
				"raw %s %s passed as the stage/origin argument of obs.%s; use the exported obs vocabulary constants (obs.Stage*, obs.Origin*) so the CI metrics-scrape gate knows the series",
				what, types.ExprString(arg), fn.Name())
			return true
		})
	}
}

// constObject resolves a constant expression to the declared constant it
// uses (obs.StageEvaluate → the obs package's Const), or nil for literals
// and computed constants.
func constObject(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}
