package lint

import (
	"go/ast"
	"go/types"
)

// GoArg flags function-call arguments inside go and defer statements: Go
// evaluates the call's arguments (and the function expression itself) in
// the calling goroutine, at the go/defer statement — only the call runs
// later. That is exactly the PR 7 production bug, where
//
//	go log.Printf("binebenchd: %v", srv.Prewarm())
//
// blocked the daemon's listener on the whole prewarm pass in the caller,
// defeating the liveness/readiness split. The fix — and the suggestion this
// rule makes — is to wrap the work in a closure so it runs in the spawned
// goroutine (or at defer time): go func() { log.Printf(..., srv.Prewarm()) }().
//
// Two deliberate idioms are exempt:
//   - time.Now() as a defer argument (defer h.ObserveSince(time.Now()))
//     depends on caller-time evaluation to capture the start time;
//   - a call in function position (defer obs.TimeStage(ctx, stage)())
//     is the standard pattern for building the deferred closure up front.
//
// Builtins (len, cap, make, ...) and type conversions cannot block or have
// side effects and are not flagged; their operands are still inspected.
var GoArg = &Analyzer{
	Name: "goarg",
	Doc:  "function-call arguments of go/defer statements are evaluated in the caller",
	Run:  runGoArg,
}

func runGoArg(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var kw string
			switch s := n.(type) {
			case *ast.GoStmt:
				call, kw = s.Call, "go"
			case *ast.DeferStmt:
				call, kw = s.Call, "defer"
			default:
				return true
			}
			for _, arg := range call.Args {
				flagCallsIn(pass, info, arg, kw)
			}
			return true
		})
	}
}

// flagCallsIn reports every function call inside arg that the kw statement
// evaluates in the caller. Closures are not descended into (their bodies
// run later); a reported call's own arguments are not re-reported.
func flagCallsIn(pass *Pass, info *types.Info, arg ast.Expr, kw string) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if tv, ok := info.Types[c.Fun]; ok && tv.IsType() {
				return true // conversion, not a call; inspect its operand
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					return true // len/cap/make/...: pure, inspect operands
				}
			}
			if kw == "defer" && isPkgFunc(calleeFunc(info, c), "Now", "time") {
				return false // defer f(time.Now()) captures the start deliberately
			}
			pass.Reportf(c.Pos(),
				"%s is evaluated now, in the caller, not when the %s statement's call runs; wrap it in a closure (%s func() { ... }()) if it must run later",
				types.ExprString(c), kw, kw)
			return false
		}
		return true
	})
}
