package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// MetricName enforces the metrics-vocabulary invariant at its root: every
// (name, labels) pair reaching obs.Registry's registration methods —
// Counter, Gauge, GaugeFunc, Histogram — must be registered at exactly one
// call site module-wide, and a name must keep one metric kind everywhere.
// The registry panics on a kind collision, but only at init of the package
// that loses the race, and only on the code path that actually runs; two
// sites silently sharing one (name, labels) counter is worse — each owner
// double-counts the other's increments and no test sees it. The CI scrape
// gate pins the exposition's series, but it can only check names it knows
// about; this rule checks the registration side for all of them.
//
// Names and label values are resolved through the fact layer's constant
// folder, so a name spelled as a cross-package constant or a package-level
// `var` with a literal initializer still participates. A site whose name
// doesn't fold to a constant is skipped (the wrapper-function pattern:
// per-path request counters take the label value as a parameter); a site
// whose labels don't fold is kind-checked but exempt from the
// exactly-once check.
var MetricName = &Analyzer{
	Name:   "metricname",
	Doc:    "every obs.Registry metric (name, labels) is registered exactly once module-wide, with one kind per name",
	Global: true,
	Run:    runMetricName,
}

// metricRegMethods maps each Registry registration method to its metric
// kind and the argument index where the variadic label pairs start.
var metricRegMethods = map[string]struct {
	kind       string
	labelStart int
}{
	"Counter":   {"counter", 2},
	"Gauge":     {"gauge", 2},
	"GaugeFunc": {"gauge", 3},
	"Histogram": {"histogram", 3},
}

func isRegistryMethod(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathSegments(fn.Pkg().Path(), "internal", "obs") {
		return false
	}
	if _, ok := metricRegMethods[fn.Name()]; !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedRecvType(sig) == "Registry"
}

// namedRecvType returns the bare name of a method's receiver type
// (dereferencing one pointer), or "".
func namedRecvType(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// metricSite is one resolved registration call.
type metricSite struct {
	site     CallSite
	kind     string
	labels   string // canonical sorted `k="v",...`; valid only if labelsOK
	labelsOK bool
}

func runMetricName(pass *Pass) {
	sites := pass.Facts.Graph.SitesMatching(isRegistryMethod)
	byName := map[string][]metricSite{}
	var names []string
	for _, site := range sites {
		fn := calleeFunc(site.Pkg.Info, site.Call)
		m := metricRegMethods[fn.Name()]
		if len(site.Call.Args) == 0 {
			continue
		}
		name, ok := pass.Facts.StringConst(site.Pkg, site.Call.Args[0])
		if !ok {
			continue // runtime-built name: not statically checkable
		}
		ms := metricSite{site: site, kind: m.kind}
		ms.labels, ms.labelsOK = foldLabels(pass, site, m.labelStart)
		if len(byName[name]) == 0 {
			names = append(names, name)
		}
		byName[name] = append(byName[name], ms)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		first := group[0]
		seen := map[string]metricSite{}
		for i, ms := range group {
			if ms.kind != first.kind {
				pass.Reportf(ms.site.Call.Pos(),
					"metric %q is registered as a %s here but as a %s at %s; a name keeps one kind module-wide (the registry panics at init of whichever package loses)",
					name, ms.kind, first.kind, pass.Position(first.site.Call.Pos()))
				continue
			}
			if !ms.labelsOK {
				continue
			}
			if prev, dup := seen[ms.labels]; dup {
				pass.Reportf(ms.site.Call.Pos(),
					"metric %q%s is already registered at %s; every (name, labels) pair is registered exactly once module-wide — two owners of one series double-count each other",
					name, describeLabels(ms.labels), pass.Position(prev.site.Call.Pos()))
				continue
			}
			seen[ms.labels] = group[i]
		}
	}
}

// foldLabels resolves a registration call's variadic label pairs to the
// canonical sorted `k="v",...` string; ok is false when any label is not a
// compile-time constant (or the pairs come in via `labels...`).
func foldLabels(pass *Pass, site CallSite, start int) (string, bool) {
	call := site.Call
	if call.Ellipsis.IsValid() {
		return "", false
	}
	if len(call.Args) <= start {
		return "", true // no labels
	}
	raw := call.Args[start:]
	if len(raw)%2 != 0 {
		return "", false // odd pair list panics at runtime; not this rule's finding
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(raw)/2)
	for i := 0; i < len(raw); i += 2 {
		k, ok := pass.Facts.StringConst(site.Pkg, raw[i])
		if !ok {
			return "", false
		}
		v, ok := pass.Facts.StringConst(site.Pkg, raw[i+1])
		if !ok {
			return "", false
		}
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String(), true
}

func describeLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return fmt.Sprintf(" {%s}", labels)
}
