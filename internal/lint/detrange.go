package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetRange guards the byte-identical-artifact invariant: every rendered
// artifact must be the same byte sequence at any pool width, on any run
// (pinned since PR 1 by the equivalence suites and CI's cold/warm diffs).
// Go randomizes map iteration order, so a map range whose body writes to an
// io.Writer / strings.Builder, or appends to a slice that is then rendered
// without being sorted first, produces a different byte stream on every
// run. The safe shape — used everywhere in the render paths — is: collect
// the keys, sort them, then iterate the sorted slice.
//
// Flagged:
//   - a map range whose body calls fmt.Fprint*/fmt.Print* or a Write*
//     method (Write, WriteString, WriteByte, WriteRune, WriteTo);
//   - a map range whose body appends to a variable declared outside the
//     loop, unless the first later statement in the same block that
//     mentions the variable is a sort.* / slices.* call on it.
//
// Writes into other maps (order-independent folds) are fine and not
// flagged.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "map iteration feeding rendered output must go through a sort",
	Run:  runDetRange,
}

// writeMethods are method names treated as writer writes inside a map range.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

func runDetRange(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.Pkg.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, f, rs, stmts[i+1:])
			}
			return true
		})
	}
}

// checkMapRange inspects one map-range body; later is the tail of the
// enclosing block after the range statement (where a redeeming sort call
// would live). f is the enclosing file, for the suggested fix's import
// insertion.
func checkMapRange(pass *Pass, f *ast.File, rs *ast.RangeStmt, later []ast.Stmt) {
	info := pass.Pkg.Info
	reported := false
	appends := map[*types.Var]bool{} // outside-declared append targets, deduped
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if reported {
				return true
			}
			if fn := calleeFunc(info, x); fn != nil {
				isPrint := fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(len(fn.Name()) > 5 && fn.Name()[:5] == "Fprin" || len(fn.Name()) > 4 && fn.Name()[:4] == "Prin")
				sig, _ := fn.Type().(*types.Signature)
				isWrite := sig != nil && sig.Recv() != nil && writeMethods[fn.Name()]
				if isPrint || isWrite {
					reported = true
					pass.Reportf(rs.For,
						"map iteration order is nondeterministic: this range over %s calls %s inside the loop, so the rendered bytes differ run to run; iterate sorted keys instead",
						types.ExprString(rs.X), fn.Name())
				}
			}
		case *ast.AssignStmt:
			for li, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || li >= len(x.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if _, isAppend := info.Uses[id].(*types.Builtin); !isAppend || id.Name != "append" {
					continue
				}
				lhs, ok := ast.Unparen(x.Lhs[li]).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.ObjectOf(lhs).(*types.Var)
				if !ok || v == nil {
					continue
				}
				if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
					continue // loop-local accumulator: scoped to one iteration
				}
				appends[v] = true
			}
		}
		return true
	})
	for v := range appends {
		if !sortedBeforeUse(info, v, later) {
			pass.ReportfFix(rs.For, sortFix(f, rs, v),
				"map iteration order is nondeterministic: this range over %s appends to %s without a later sort before use; sort %s (sort.Strings/Ints/Slice) before rendering from it",
				types.ExprString(rs.X), v.Name(), v.Name())
		}
	}
}

// sortFix builds the machine-applicable fix for the append case: insert the
// missing sort call for v right after the map range, plus the "sort" import
// if the file lacks it. Only element types with a dedicated sort helper
// (string, int, float64) are auto-fixable; for anything else a sort.Slice
// needs a human-written less function, so no fix is attached.
func sortFix(f *ast.File, rs *ast.RangeStmt, v *types.Var) []TextEdit {
	slice, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var helper string
	switch basic.Kind() {
	case types.String:
		helper = "Strings"
	case types.Int:
		helper = "Ints"
	case types.Float64:
		helper = "Float64s"
	default:
		return nil
	}
	call := importedName(f, "sort", "sort") + "." + helper + "(" + v.Name() + ")"
	edits := []TextEdit{{Pos: rs.End(), End: rs.End(), New: "\n" + call}}
	if imp, ok := ensureImport(f, "sort"); ok {
		edits = append(edits, imp)
	}
	return edits
}

// importedName returns the local name path is imported under in f (aliased
// imports keep their alias), or fallback when the import is absent and the
// fix will add it under its default name.
func importedName(f *ast.File, path, fallback string) string {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			if imp.Name != nil && imp.Name.Name != "" && imp.Name.Name != "_" {
				return imp.Name.Name
			}
			return fallback
		}
	}
	return fallback
}

// sortedBeforeUse reports whether the first statement in later that
// mentions v is a sort.* / slices.* call taking v — the collect-then-sort
// idiom.
func sortedBeforeUse(info *types.Info, v *types.Var, later []ast.Stmt) bool {
	for _, s := range later {
		if !mentions(info, s, v) {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return false
		}
		for _, arg := range call.Args {
			if mentionsExpr(info, arg, v) {
				return true
			}
		}
		return false
	}
	return false // never mentioned again in this block: used in outer scope, unsorted
}

func mentions(info *types.Info, s ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

func mentionsExpr(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}
