package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces all-or-nothing atomicity per struct field: a field
// accessed through sync/atomic anywhere in the module must never be read or
// written with a plain load/store elsewhere. Mixing the two is a data race
// the race detector only catches if a test happens to exercise both paths
// concurrently — the metrics-accuracy fixes after PR 7 were exactly this
// class (counters read bare in Snapshot while incremented atomically on the
// hot path). The modern escape hatch is the atomic.Uint64-style wrapper
// types, whose methods are the only access path; this rule only tracks
// fields passed by address to the sync/atomic package-level functions
// (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.done), ...).
//
// AtomicMix is global: the atomic access and the bare access are usually in
// different files or packages, so it correlates across the whole load set.
var AtomicMix = &Analyzer{
	Name:   "atomicmix",
	Doc:    "a field accessed via sync/atomic must never be accessed non-atomically",
	Global: true,
	Run:    runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass A: every field passed as &x.f to a sync/atomic package function,
	// with one representative site for the message.
	atomicFields := map[*types.Var]token.Pos{}
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // atomic.Uint64-style method: wrapper types are self-contained
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := fieldVar(info, sel)
					if v == nil {
						continue
					}
					atomicSites[sel] = true
					if _, seen := atomicFields[v]; !seen {
						atomicFields[v] = sel.Pos()
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass B: any other selector resolving to one of those fields is a bare
	// access. Taking the address for another atomic call was collected in
	// pass A; everything else — reads, writes, &x.f handed elsewhere — mixes.
	// A parent stack classifies each bare access so the mechanical ones
	// carry a suggested fix: plain reads become atomic.Load*, sole-target
	// stores become atomic.Store*, x.f += d / x.f++ become atomic.Add*.
	// Compound shapes (&x.f escaping, multi-assignments) stay fix-less.
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSites[sel] {
					return true
				}
				v := fieldVar(info, sel)
				if v == nil {
					return true
				}
				atomicPos, ok := atomicFields[v]
				if !ok {
					return true
				}
				pass.ReportfFix(sel.Pos(), atomicFix(f, info, stack, sel, v),
					"field %s is accessed atomically at %s but non-atomically here; every access must go through sync/atomic (or migrate the field to an atomic.%s-style type)",
					v.Name(), pass.Position(atomicPos), atomicTypeName(v.Type()))
				return true
			})
		}
	}
}

// atomicFuncSuffix maps a field's basic type to the sync/atomic function
// suffix ("" when sync/atomic has no Load/Store/Add family for it).
func atomicFuncSuffix(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	}
	return ""
}

// atomicFix builds the suggested rewrite for one bare access of field v at
// sel, classified by its parent nodes, or nil when no mechanical rewrite is
// safe. Note a fixed `x.f = x.f + 1` becomes Store(..., Load(...)+1) — each
// access atomic, but not one atomic increment; write x.f += 1 to get Add.
func atomicFix(f *ast.File, info *types.Info, stack []ast.Node, sel *ast.SelectorExpr, v *types.Var) []TextEdit {
	suffix := atomicFuncSuffix(v.Type())
	if suffix == "" {
		return nil
	}
	pkgName := importedName(f, "sync/atomic", "atomic")
	addr := "&" + types.ExprString(sel)
	withImport := func(edits []TextEdit) []TextEdit {
		if imp, ok := ensureImport(f, "sync/atomic"); ok {
			edits = append(edits, imp)
		}
		return edits
	}
	// parent skips interposed ParenExprs: (x.f) reads still classify.
	var parent ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	signed := strings.HasPrefix(suffix, "Int")
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return nil // &x.f escaping to non-atomic code: not mechanical
		}
	case *ast.IncDecStmt:
		delta := "1"
		if p.Tok == token.DEC {
			if !signed {
				return nil // -1 has no literal spelling for unsigned Add
			}
			delta = "-1"
		}
		return withImport([]TextEdit{{
			Pos: p.Pos(), End: p.End(),
			New: pkgName + ".Add" + suffix + "(" + addr + ", " + delta + ")",
		}})
	case *ast.AssignStmt:
		// Only the sole-target forms rewrite mechanically.
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && ast.Unparen(p.Lhs[0]) == sel {
			rhs := p.Rhs[0]
			switch p.Tok {
			case token.ASSIGN:
				return withImport([]TextEdit{
					{Pos: p.Pos(), End: rhs.Pos(), New: pkgName + ".Store" + suffix + "(" + addr + ", "},
					{Pos: p.End(), End: p.End(), New: ")"},
				})
			case token.ADD_ASSIGN:
				return withImport([]TextEdit{
					{Pos: p.Pos(), End: rhs.Pos(), New: pkgName + ".Add" + suffix + "(" + addr + ", "},
					{Pos: p.End(), End: p.End(), New: ")"},
				})
			case token.SUB_ASSIGN:
				if !signed {
					return nil
				}
				return withImport([]TextEdit{
					{Pos: p.Pos(), End: rhs.Pos(), New: pkgName + ".Add" + suffix + "(" + addr + ", -("},
					{Pos: p.End(), End: p.End(), New: "))"},
				})
			}
			return nil
		}
		// sel on the left of a multi-assignment: not mechanical. On the
		// right it is a plain read, handled below.
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				return nil
			}
		}
	}
	// Default: a value read.
	return withImport([]TextEdit{{
		Pos: sel.Pos(), End: sel.End(),
		New: pkgName + ".Load" + suffix + "(" + addr + ")",
	}})
}

// fieldVar resolves a selector to the struct field it names, or nil for
// package selectors, methods, and non-field variables.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// atomicTypeName suggests the sync/atomic wrapper type matching t, for the
// migration hint in the finding message.
func atomicTypeName(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
