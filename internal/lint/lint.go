// The binelint driver: repo-specific analyzers over type-checked packages,
// with //binelint:ignore suppression and text/JSON findings output. Each
// analyzer codifies an invariant a past PR's review had to catch by hand;
// the catalog lives in EXPERIMENTS.md ("Static analysis").
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one rule. Per-package analyzers run once per package with
// Pass.Pkg set; Global analyzers run once over the whole analysis set with
// Pass.Pkg nil (atomicmix correlates accesses across packages). Tests
// analyzers (implies Global) run over the test-augmented package set —
// every package re-checked with its _test.go files plus the external _test
// packages — because their subject is the tests themselves (paratest).
type Analyzer struct {
	Name   string
	Doc    string
	Global bool
	Tests  bool
	Run    func(*Pass)
}

// Pass is one analyzer execution: the package under analysis (nil for
// Global analyzers), the full analysis set, the shared fact layer
// (facts.go: call graph + constant resolver over that set), and the report
// sink.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	Pkgs []*Package
	// Facts is the fact layer over Pkgs. For a Tests analyzer it covers the
	// union of the plain set and the test variants, so reachability can
	// cross from a test into plain-package helpers and onward.
	Facts *Facts

	modRoot string
	rule    string
	out     *[]Finding
}

// Reportf files one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix files one finding at pos carrying a machine-applicable fix:
// edits that -fix applies (or -fix -diff prints). A nil or empty edits
// slice degrades to a plain finding.
func (p *Pass) ReportfFix(pos token.Pos, edits []TextEdit, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.out = append(*p.out, Finding{
		Rule:    p.rule,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		edits:   edits,
	})
}

// Position renders pos as a module-relative file:line string (for messages
// that cite a second location, like atomicmix's atomic-site reference).
func (p *Pass) Position(pos token.Pos) string {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, position.Line)
}

// Finding is one diagnostic.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Fixed reports that -fix applied this finding's suggested edits (CI
	// reads it from -json to tell applied edits from residual findings).
	Fixed bool `json:"fixed"`

	// edits is the suggested fix, applied by ApplyFixes under -fix.
	edits []TextEdit
}

// Analyzers returns the full rule suite in catalog order.
func Analyzers() []*Analyzer {
	return []*Analyzer{GoArg, CtxFlow, StageVocab, DetRange, AtomicMix, StorePerm, MetricName, TraceColRet, ParaTest}
}

// ignoreDirective is one parsed //binelint:ignore comment.
type ignoreDirective struct {
	rules  []string
	reason string
	pos    token.Pos
	used   bool
}

const ignorePrefix = "binelint:ignore"

// collectIgnores scans a package's comments for //binelint:ignore
// directives, keyed by (file, line). A directive suppresses matching
// findings on its own line (trailing comment) and on the following line
// (standalone comment above the statement). Malformed directives — no rule
// or no reason — are themselves findings: a suppression without a recorded
// why is exactly the reviewer-memory problem binelint exists to fix.
func collectIgnores(modRoot string, fset *token.FileSet, pkgs []*Package, out *[]Finding) map[string]map[int]*ignoreDirective {
	ignores := map[string]map[int]*ignoreDirective{}
	pass := &Pass{Fset: fset, modRoot: modRoot, rule: "binelint", out: out}
	seen := map[*ast.File]bool{} // test variants share the plain files' ASTs
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, ignorePrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						pass.Reportf(c.Pos(), "malformed ignore directive: want //binelint:ignore <rule[,rule]> <reason>")
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := ignores[pos.Filename]
					if byLine == nil {
						byLine = map[int]*ignoreDirective{}
						ignores[pos.Filename] = byLine
					}
					byLine[pos.Line] = &ignoreDirective{
						rules:  strings.Split(fields[0], ","),
						reason: strings.Join(fields[1:], " "),
						pos:    c.Pos(),
					}
				}
			}
		}
	}
	return ignores
}

func (d *ignoreDirective) matches(rule string) bool {
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// Run executes the analyzers over pkgs and returns the surviving findings,
// sorted by file, line, column, rule. Findings matched by an ignore
// directive are dropped; unused directives are reported (a stale ignore
// hides nothing but misleads every future reader).
//
// The fact layer (call graph + constant resolver) is computed once over
// pkgs and shared by every analyzer through Pass.Facts. If any analyzer is
// a Tests analyzer, the test variants of every package are loaded and
// type-checked too, and those analyzers get the union set with its own
// fact layer; loading or checking a test file failing is an analysis error
// (the tree doesn't compile), not a finding.
func Run(ldr *Loader, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := NewFacts(pkgs)
	var testPkgs []*Package
	var testFacts *Facts
	for _, a := range analyzers {
		if !a.Tests {
			continue
		}
		testPkgs = append(testPkgs, pkgs...)
		for _, p := range pkgs {
			tps, err := ldr.LoadTests(p)
			if err != nil {
				return nil, err
			}
			testPkgs = append(testPkgs, tps...)
		}
		testFacts = NewFacts(testPkgs)
		break
	}

	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{Fset: ldr.Fset, Pkgs: pkgs, Facts: facts, modRoot: ldr.ModRoot, rule: a.Name, out: &raw}
		if a.Tests {
			pass.Pkgs, pass.Facts = testPkgs, testFacts
			a.Run(pass)
			continue
		}
		if a.Global {
			a.Run(pass)
			continue
		}
		for _, pkg := range pkgs {
			pass.Pkg = pkg
			a.Run(pass)
		}
	}

	var diag []Finding
	ignorePkgs := pkgs
	if testPkgs != nil {
		ignorePkgs = testPkgs // superset; shared ASTs dedupe inside
	}
	ignores := collectIgnores(ldr.ModRoot, ldr.Fset, ignorePkgs, &diag)
	var out []Finding
	for _, f := range raw {
		abs := f.File
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(ldr.ModRoot, filepath.FromSlash(f.File))
		}
		if byLine := ignores[abs]; byLine != nil {
			if d := byLine[f.Line]; d != nil && d.matches(f.Rule) {
				d.used = true
				continue
			}
			if d := byLine[f.Line-1]; d != nil && d.matches(f.Rule) {
				d.used = true
				continue
			}
		}
		out = append(out, f)
	}
	pass := &Pass{Fset: ldr.Fset, modRoot: ldr.ModRoot, rule: "binelint", out: &diag}
	var files []string
	for file := range ignores {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, d := range ignores[file] {
			if !d.used {
				pass.Reportf(d.pos, "unused ignore directive for %s: nothing to suppress here", strings.Join(d.rules, ","))
			}
		}
	}
	out = append(out, diag...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

// WriteText renders findings one per line: file:line: [rule] message, with
// a trailing "(fixed)" marker on findings -fix applied.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		suffix := ""
		if f.Fixed {
			suffix = " (fixed)"
		}
		fmt.Fprintf(w, "%s:%d: [%s] %s%s\n", f.File, f.Line, f.Rule, f.Message, suffix)
	}
}

// WriteJSON renders findings as a JSON array (never null: an empty run
// emits []).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// ---- shared type/AST helpers used by the analyzers ----

// pathSegments reports whether the slash-separated import path contains
// segs as consecutive segments — "binetrees/internal/harness" and the
// golden package ".../testdata/src/ctxflow/internal/harness" both contain
// {"internal", "harness"}, while "internal/harnessfoo" does not.
func pathSegments(path string, segs ...string) bool {
	parts := strings.Split(path, "/")
	for i := 0; i+len(segs) <= len(parts); i++ {
		match := true
		for j, s := range segs {
			if parts[i+j] != s {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression's callee to the *types.Func it
// invokes (function or method), or nil for builtins, conversions, and calls
// of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgSegs.name
// (receiver-less; pkgSegs matched as consecutive import path segments, so
// both std paths and module-local paths work).
func isPkgFunc(fn *types.Func, name string, pkgSegs ...string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return pathSegments(fn.Pkg().Path(), pkgSegs...)
}
