// Golden package for the storeperm analyzer: the import path ends in
// internal/tracestore, so every permission-taking os call is checked against
// the shared-store invariant (0644 files, 0755 directories).
package tracestore

import "os"

func create(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // fine: the directory invariant
		return err
	}
	return os.MkdirAll(dir, 0o700) // want `permission 0o700 passed to os\.MkdirAll`
}

func write(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // fine: the file invariant
		return err
	}
	return os.WriteFile(path, data, 0o600) // want `permission 0o600 passed to os\.WriteFile`
}

func open(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o640) // want `permission 0o640 passed to os\.OpenFile`
}

func chmod(path string, f *os.File) error {
	if err := f.Chmod(0o644); err != nil { // fine: Save's world-readable chmod
		return err
	}
	if err := f.Chmod(0o600); err != nil { // want `permission 0o600 passed to os\.Chmod`
		return err
	}
	return os.Chmod(path, 0o777) // want `permission 0o777 passed to os\.Chmod`
}

func dynamic(path string, mode os.FileMode) error {
	return os.Chmod(path, mode) // fine: not a compile-time constant, can't verify
}
