// Golden package for the storeperm analyzer: not under internal/tracestore,
// so permission choices are this package's own business.
package outside

import "os"

func privateFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // fine: the invariant only binds the shared store
}
