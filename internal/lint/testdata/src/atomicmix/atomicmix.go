// Golden package for the atomicmix analyzer: a field accessed via
// sync/atomic anywhere must never be accessed non-atomically elsewhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64 // mixed: atomic in Record, bare in Snapshot
	total int64 // consistently atomic
	name  string
	v     atomic.Int64 // wrapper type: methods are the only access path
}

func (c *counters) Record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
	c.v.Add(1)
}

func (c *counters) Snapshot() (int64, int64) {
	h := c.hits // want `field hits is accessed atomically at .* but non-atomically here`
	t := atomic.LoadInt64(&c.total)
	return h, t
}

func (c *counters) Reset() {
	c.hits = 0 // want `field hits is accessed atomically at .* but non-atomically here`
	atomic.StoreInt64(&c.total, 0)
	c.v.Store(0)
}

func (c *counters) Name() string {
	// Fields never touched by sync/atomic are unconstrained.
	return c.name
}
