// Golden package for the tracecolret analyzer: accessor results stored into
// targets that outlive the frame are flagged, because the analysis set
// contains a call that can reach harness.ResetTraceCache (see cycle below).
package tracecolret

import (
	"binetrees/internal/lint/testdata/src/tracecolret/internal/fabric"
	"binetrees/internal/lint/testdata/src/tracecolret/internal/harness"
)

// cycle arms the rule: something in the analysis set drops the cache.
func cycle() {
	harness.ResetTraceCache()
}

type holder struct {
	recs []int32
}

// A package-level initializer retains by construction.
var cachedInit = fabric.New().Records() // want `retained in package variable cachedInit`

var cached []int32

var cells = map[string][]int32{}

func retain(h *holder, tr *fabric.Trace) {
	h.recs = tr.Records()     // want `\(\*fabric\.Trace\)\.Records result is retained in field recs`
	cached = tr.Records()     // want `retained in package variable cached`
	cells["a"] = tr.Records() // want `retained in an element of package variable cells`

	// Appending accessor output to a retained slice is the same leak.
	h.recs = append(h.recs, tr.At(0)) // want `\(\*fabric\.Trace\)\.At result is retained in field recs`

	// Frame-local storage dies with the frame that resolved the trace.
	local := tr.Records()
	_ = local
	var decl []int32 = tr.Records()
	_ = decl
}
