// Fake trace for the tracecolret golden package: the import path ends in
// internal/fabric and the accessor methods hang off a type named Trace, the
// two facts the analyzer matches on.
package fabric

type Trace struct {
	from []int32
}

func New() *Trace { return &Trace{from: []int32{1, 2, 3}} }

func (t *Trace) Records() []int32 {
	out := make([]int32, len(t.from))
	copy(out, t.from)
	return out
}

func (t *Trace) At(i int) int32 { return t.from[i] }
