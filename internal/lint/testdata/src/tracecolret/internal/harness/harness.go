// Fake harness for the tracecolret golden package: supplies the cache-reset
// entry point whose presence arms the rule.
package harness

func ResetTraceCache() {}
