// Golden package for the metricname analyzer: every (name, labels) pair
// reaching the registry is registered exactly once module-wide, one kind per
// name. The fake internal/obs package supplies the Registry shape.
package metricname

import (
	"binetrees/internal/lint/testdata/src/metricname/internal/obs"
	"binetrees/internal/lint/testdata/src/metricname/names"
)

var reg = obs.Default()

// Two owners of one unlabeled series.
var dupFirst = reg.Counter("golden_dup_total", "first owner")
var dupSecond = reg.Counter("golden_dup_total", "second owner") // want `metric "golden_dup_total" is already registered`

// Same name with distinct constant label values is the per-decision pattern
// (admission accept/reject counters) and must not be flagged...
var labeledAccept = reg.Counter("golden_labeled_total", "h", "decision", "accept")
var labeledReject = reg.Counter("golden_labeled_total", "h", "decision", "reject")

// ...but repeating one of the pairs is two owners of one series again.
var labeledDup = reg.Counter("golden_labeled_total", "h", "decision", "accept") // want `is already registered`

// One name, two kinds: the registry panics at init of whichever package
// loses; the analyzer reports it against the first registration.
var kindFirst = reg.Counter("golden_kind_total", "h")
var kindSecond = reg.Gauge("golden_kind_total", "h") // want `registered as a gauge here but as a counter`

// A name spelled as a cross-package constant still participates.
var sharedFirst = reg.Gauge(names.Shared, "h")
var sharedSecond = reg.Gauge(names.Shared, "h") // want `metric "golden_shared_total" is already registered`

// A package-level var with a literal initializer folds like a constant.
var varName = "golden_var_total"

var viaVarFirst = reg.Counter(varName, "h")
var viaVarSecond = reg.Counter("golden_var_total", "h") // want `metric "golden_var_total" is already registered`

// GaugeFunc and Histogram put the variadic labels after an extra argument;
// the per-method label-start index must skip it.
var gfFirst = reg.GaugeFunc(names.Joined, "h", func() float64 { return 0 }, "shard", "0")
var gfSecond = reg.GaugeFunc(names.Joined, "h", func() float64 { return 0 }, "shard", "0") // want `metric "golden_joined_total" \{shard="0"\} is already registered`

var histFirst = reg.Histogram("golden_lat_seconds", "h", []float64{1, 2}, "stage", "pack")
var histSecond = reg.Histogram("golden_lat_seconds", "h", []float64{1, 2}, "stage", "pack") // want `metric "golden_lat_seconds" \{stage="pack"\} is already registered`

// A runtime-built name is not statically checkable: skipped, not guessed.
func dynamicName(name string) *obs.Counter {
	return reg.Counter(name, "per-path counter: name arrives as a parameter")
}

// Non-constant labels exempt a site from the exactly-once check (it is
// still kind-checked).
func dynamicLabel(v string) *obs.Counter {
	return reg.Counter("golden_labeled_total", "h", "decision", v)
}
