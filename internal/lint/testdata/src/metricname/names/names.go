// Cross-package constants for the metricname golden package: the analyzer's
// constant folder must resolve names through an import.
package names

const Shared = "golden_shared_total"

const prefix = "golden_"

// Joined exercises constant folding of a concatenation.
const Joined = prefix + "joined_total"
