// Fake registry for the metricname golden package: the import path ends in
// internal/obs and the method names and signatures mirror the real registry,
// so the analyzer's per-method label-start indices line up.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func Default() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return nil }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return nil }

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) func() {
	return nil
}

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return nil
}
