// Golden package for the suppression machinery, asserted programmatically
// (TestSuppression): well-formed directives silence matching findings,
// malformed and unused directives are themselves findings. Line positions
// are located by the marker comments, not hard-coded.
package suppress

import (
	"fmt"
	"log"
)

func expensive() int { return 7 }

func suppressed() {
	//binelint:ignore goarg the caller-time evaluation is deliberate here
	go log.Printf("v=%d", expensive()) // marker:suppressed-above
	go fmt.Println(expensive())        //binelint:ignore goarg marker:suppressed-trailing
}

func notSuppressed() {
	//binelint:ignore ctxflow marker:wrong-rule
	go fmt.Println(expensive()) // marker:unsuppressed
}

func malformed() {
	//binelint:ignore goarg
	go func() { fmt.Println(expensive()) }() // marker:malformed-above
}

func unused() {
	//binelint:ignore goarg marker:unused-directive
	fmt.Println(expensive())
}
