// Golden package with no findings under any analyzer: the driver must exit
// zero here.
package clean

import (
	"fmt"
	"io"
	"sort"
)

type stats struct {
	counts map[string]int
}

func (s *stats) render(w io.Writer) {
	var names []string
	for name := range s.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, s.counts[name])
	}
}

func spawn(work func()) {
	go func() {
		work()
	}()
}
