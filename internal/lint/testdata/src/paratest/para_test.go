package paratest

import (
	"testing"

	"binetrees/internal/lint/testdata/src/paratest/internal/harness"
)

// Direct t.Parallel plus a mutation through the non-test helper.
func TestParallelMutator(t *testing.T) { // want `TestParallelMutator calls t\.Parallel but mutates process-wide harness state \(TestParallelMutator → mutate → SetSynthesis\)`
	t.Parallel()
	mutate()
}

// The t.Parallel hides inside a t.Run closure (attributed to the enclosing
// test) and the mutation behind a test-file helper.
func TestParallelDeep(t *testing.T) { // want `TestParallelDeep calls t\.Parallel but mutates process-wide harness state`
	t.Run("sub", func(t *testing.T) {
		t.Parallel()
	})
	resetViaHelper()
}

func resetViaHelper() {
	harness.ResetTraceCache()
}

// Capturing a mutator as a function value counts as reach: the stored value
// may be invoked after the test goes parallel.
func TestParallelCapture(t *testing.T) { // want `TestParallelCapture calls t\.Parallel but mutates process-wide harness state`
	t.Parallel()
	restore := harness.SetTraceStore
	defer restore("")
}

// Parallel without mutation is fine.
func TestParallelOnly(t *testing.T) {
	t.Parallel()
}

// Mutation without t.Parallel is the safe serialized idiom.
func TestMutatorOnly(t *testing.T) {
	mutate()
}
