// Golden package for the paratest analyzer. The findings live in the
// _test.go files next to this one — the rule runs over the test-augmented
// load set — and the mutation helper lives here, in the non-test half of the
// package, so the golden also pins that the in-package test variant shares
// object identities with the plain files.
package paratest

import "binetrees/internal/lint/testdata/src/paratest/internal/harness"

// mutate hides the harness mutation one call deep: the shape the rule's
// transitive call-graph reach exists for.
func mutate() {
	harness.SetSynthesis("golden")
}
