// External test package: the rule must cover the foo_test variant too.
package paratest_test

import (
	"testing"

	"binetrees/internal/lint/testdata/src/paratest/internal/harness"
)

func TestExternalParallel(t *testing.T) { // want `TestExternalParallel calls t\.Parallel but mutates process-wide harness state`
	t.Parallel()
	harness.SetSynthesis("ext")
}

func TestExternalSerial(t *testing.T) {
	harness.SetSynthesis("ext")
}
