// Fake harness for the paratest golden package: the process-wide mutators
// the rule guards, under an import path ending in internal/harness.
package harness

func SetSynthesis(mode string) {}

func SetTraceStore(dir string) {}

func ResetTraceCache() {}
