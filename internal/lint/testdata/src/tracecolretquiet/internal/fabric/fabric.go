// Fake trace for the tracecolretquiet golden package (see quiet.go).
package fabric

type Trace struct {
	from []int32
}

func New() *Trace { return &Trace{from: []int32{1}} }

func (t *Trace) Records() []int32 {
	out := make([]int32, len(t.from))
	copy(out, t.from)
	return out
}
