// Golden package pinning the tracecolret gate: the same retention shapes as
// the tracecolret package, but nothing in this analysis set can reach
// harness.ResetTraceCache — so nothing outlives a reset, and the analyzer
// must stay silent. No want comments on purpose.
package tracecolretquiet

import "binetrees/internal/lint/testdata/src/tracecolretquiet/internal/fabric"

var cachedInit = fabric.New().Records()

var cached []int32

func retain(tr *fabric.Trace) {
	cached = tr.Records()
}
