// Golden package for the stagevocab analyzer: stage/origin arguments to the
// obs timing entry points must be the exported obs constants.
package stagevocab

import (
	"context"
	"time"

	"binetrees/internal/obs"
)

const localStage = "my-stage"

func bad(ctx context.Context) {
	obs.ObserveStage("evaluate", time.Second) // want `raw string literal "evaluate" passed as the stage/origin argument of obs\.ObserveStage`

	defer obs.TimeStage(ctx, "render")() // want `raw string literal "render" passed as the stage/origin argument of obs\.TimeStage`

	_, end := obs.StartSpan(ctx, localStage) // want `raw constant localStage passed as the stage/origin argument of obs\.StartSpan`
	end()

	obs.ObserveResolve(ctx, "memory", time.Second) // want `raw string literal "memory" passed as the stage/origin argument of obs\.ObserveResolve`
}

func good(ctx context.Context) {
	obs.ObserveStage(obs.StageCompile, time.Second)
	defer obs.TimeStage(ctx, obs.StageRender)()
	_, end := obs.StartSpan(ctx, obs.StageExecute)
	end()
	obs.ObserveResolve(ctx, obs.OriginMemory, time.Second)

	// Non-constant stages (enumerating the vocabulary) are allowed.
	for _, stage := range obs.Stages() {
		obs.ObserveStage(stage, 0)
	}
}
