// Golden package for the ctxflow analyzer: not under internal/harness,
// internal/service, or internal/pool, so root contexts are allowed here.
package outside

import "context"

func mintFreely() context.Context {
	return context.Background() // fine: entry points outside the request path own fresh lifetimes
}
