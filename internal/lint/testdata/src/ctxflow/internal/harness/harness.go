// Golden package for the ctxflow analyzer: the import path ends in
// internal/harness, so it is inside the rule's target set.
package harness

import "context"

func mint() context.Context {
	return context.Background() // want `context\.Background\(\) mints a root context`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) mints a root context`
}

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	// Deriving from the caller's context is the point of the rule.
	return context.WithCancel(ctx)
}
