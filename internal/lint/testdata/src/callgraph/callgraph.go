// Driver-test package for the fact layer: the call-graph construction test
// (facts_test.go) asserts the edge kinds over these declarations, and the
// constant-resolver test folds the strings reaching sink.
package callgraph

// Direct and transitive call edges: A → B → C.
func A() { B() }

func B() { C() }

func C() {}

type S struct{}

func (s S) M() {}

// A method value is an edge without a call expression.
func UsesMethodValue() {
	var s S
	f := s.M
	_ = f
}

// A func literal's body is attributed to the enclosing declared function.
func UsesLiteral() {
	f := func() { C() }
	f()
}

// Package-level initializers get a synthetic per-package init node.
var initCall = seed()

func seed() int { return 1 }

// ---- constant-resolver shapes ----

const prefix = "golden_"

const full = prefix + "name"

// A var with a single literal-ish initializer folds like a constant...
var indirect = full

// ...unless it is assigned anywhere in the module.
var reassigned = "first"

func clobber() { reassigned = "second" }

func sink(vals ...string) {}

func uses() {
	sink(full, indirect, reassigned, prefix+"suffix")
}
