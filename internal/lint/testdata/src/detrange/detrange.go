// Golden package for the detrange analyzer: map iteration feeding rendered
// output must go through a sort.
package detrange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badDirectWrite(w io.Writer, cells map[string]int) {
	for name, v := range cells { // want `map iteration order is nondeterministic: this range over cells calls Fprintf`
		fmt.Fprintf(w, "%s=%d\n", name, v)
	}
}

func badBuilderWrite(cells map[string]int) string {
	var sb strings.Builder
	for name := range cells { // want `map iteration order is nondeterministic: this range over cells calls WriteString`
		sb.WriteString(name)
	}
	return sb.String()
}

func badUnsortedAppend(cells map[string]int) []string {
	var names []string
	for name := range cells { // want `appends to names without a later sort`
		names = append(names, name)
	}
	return names
}

func goodCollectThenSort(w io.Writer, cells map[string]int) {
	var names []string
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s=%d\n", name, cells[name])
	}
}

func goodMapFold(cells map[string]int) map[string]int {
	// Folding into another map is order-independent.
	out := map[string]int{}
	for name, v := range cells {
		out[name] += v
	}
	return out
}

func goodLoopLocalAppend(cells map[string][]int) int {
	n := 0
	for _, vs := range cells {
		// The accumulator is scoped to one iteration; order cannot leak.
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}
