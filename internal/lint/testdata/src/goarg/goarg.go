// Golden package for the goarg analyzer: call arguments of go/defer
// statements are evaluated in the caller.
package goarg

import (
	"fmt"
	"log"
	"time"
)

type server struct{}

func (s *server) Prewarm() error { return nil }

func expensive() int { return 42 }

func bad(srv *server) {
	// The PR 7 bug shape: Prewarm runs in the caller, blocking it.
	go log.Printf("ready: %v", srv.Prewarm()) // want `srv\.Prewarm\(\) is evaluated now`

	defer fmt.Println(expensive()) // want `expensive\(\) is evaluated now`

	// Nested inside an operand, still caller-evaluated.
	go fmt.Println(1 + expensive()) // want `expensive\(\) is evaluated now`

	// A defer that formats an elapsed time measures ~0: Since runs now.
	t0 := time.Now()
	defer log.Printf("took %v", time.Since(t0)) // want `time\.Since\(t0\) is evaluated now`
}

func good(srv *server) {
	// The suggested fix: the work moves into the spawned goroutine.
	go func() { log.Printf("ready: %v", srv.Prewarm()) }()

	// Capturing the start time at defer time is the deliberate idiom.
	defer observeSince(time.Now())

	// A call in function position builds the deferred closure up front.
	defer timer("stage")()

	// Builtins and conversions are pure.
	s := []int{1, 2, 3}
	defer fmt.Println(len(s))
	defer fmt.Println(int64(cap(s)))
}

func observeSince(time.Time) {}
func timer(string) func()    { return func() {} }
