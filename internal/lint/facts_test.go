package lint

import (
	"go/types"
	"testing"
)

// factsFixture loads the callgraph driver-test package and builds its fact
// layer.
func factsFixture(t *testing.T) (*Package, *Facts) {
	t.Helper()
	_, pkgs := loadGolden(t, "testdata/src/callgraph")
	return pkgs[0], NewFacts(pkgs)
}

// pkgFunc resolves a package-level function of the fixture by name.
func pkgFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, _ := pkg.Pkg.Scope().Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("function %s not found in %s", name, pkg.Path)
	}
	return fn
}

func TestCallGraphEdges(t *testing.T) {
	pkg, facts := factsFixture(t)
	g := facts.Graph
	a, b, c := pkgFunc(t, pkg, "A"), pkgFunc(t, pkg, "B"), pkgFunc(t, pkg, "C")

	// Direct edge.
	if !g.Reaches(a, b) {
		t.Error("missing direct edge A → B")
	}
	// Transitive closure, and its direction.
	if !g.Reaches(a, c) {
		t.Error("missing transitive reach A → C")
	}
	if g.Reaches(c, a) {
		t.Error("reverse reach C → A must not exist")
	}
	// FindReachable returns the shortest chain, source first.
	chain := g.FindReachable(a, func(fn *types.Func) bool { return fn == c })
	if len(chain) != 3 || chain[0] != a || chain[1] != b || chain[2] != c {
		t.Errorf("FindReachable(A, C) = %v, want [A B C]", chain)
	}

	// Method value: mentioning s.M without calling it is a may-call edge.
	s, _ := pkg.Pkg.Scope().Lookup("S").(*types.TypeName)
	if s == nil {
		t.Fatal("type S not found")
	}
	var m *types.Func
	named := s.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "M" {
			m = named.Method(i)
		}
	}
	if m == nil {
		t.Fatal("method S.M not found")
	}
	if !g.Reaches(pkgFunc(t, pkg, "UsesMethodValue"), m) {
		t.Error("missing method-value edge UsesMethodValue → S.M")
	}

	// Func literal: the literal's body belongs to the enclosing function.
	if !g.Reaches(pkgFunc(t, pkg, "UsesLiteral"), c) {
		t.Error("missing func-literal edge UsesLiteral → C")
	}

	// Package-level initializer calls hang off the synthetic init node.
	seed := pkgFunc(t, pkg, "seed")
	sites := g.Sites(seed)
	if len(sites) != 1 {
		t.Fatalf("seed has %d call sites, want 1", len(sites))
	}
	if got := sites[0].Caller.Name(); got != "init#binelint" {
		t.Errorf("initializer call attributed to %q, want init#binelint", got)
	}
}

func TestStringConstResolver(t *testing.T) {
	pkg, facts := factsFixture(t)
	sink := pkgFunc(t, pkg, "sink")
	sites := facts.Graph.Sites(sink)
	if len(sites) != 1 {
		t.Fatalf("sink has %d call sites, want 1", len(sites))
	}
	args := sites[0].Call.Args
	if len(args) != 4 {
		t.Fatalf("sink call has %d args, want 4", len(args))
	}
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{"const via concatenation", "golden_name", true},
		{"var with constant initializer", "golden_name", true},
		{"var reassigned elsewhere", "", false},
		{"inline concatenation", "golden_suffix", true},
	}
	for i, c := range cases {
		got, ok := facts.StringConst(pkg, args[i])
		if ok != c.ok || got != c.want {
			t.Errorf("%s: StringConst = (%q, %v), want (%q, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}
