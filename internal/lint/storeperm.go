package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// StorePerm enforces the shared-store permission invariant in
// internal/tracestore: 0644 for files, 0755 for directories. The store
// directory is shared across service replicas, users, and CI cache restores
// — binebenchd's docs promise traces are written world-readable — and a
// single call site creating a file 0600 (os.CreateTemp's default, which is
// why Save chmods) or a directory 0700 silently produces a store only its
// creator can read: every other replica's Load then misses, re-records, and
// re-saves the same traces forever. The failure is invisible on a
// single-user dev box and only bites in shared deployments, which is
// exactly the kind of invariant a compile-time check should carry. The rule
// inspects the permission argument of os.OpenFile / os.WriteFile /
// os.MkdirAll / os.Chmod and the (*os.File).Chmod method inside
// internal/tracestore; non-constant permissions can't be verified and are
// left alone.
var StorePerm = &Analyzer{
	Name: "storeperm",
	Doc:  "internal/tracestore must create files 0644 and directories 0755 (the shared-store invariant)",
	Run:  runStorePerm,
}

// storePermArg maps each os entry point that takes a permission to the
// argument position of that permission (package-function form).
var storePermArg = map[string]int{
	"OpenFile":  2,
	"WriteFile": 2,
	"MkdirAll":  1,
	"Chmod":     1,
}

// storePermAllowed are the only permission bits the shared store may use:
// world-readable files, world-listable directories.
var storePermAllowed = map[int64]bool{0o644: true, 0o755: true}

func runStorePerm(pass *Pass) {
	if !pathSegments(pass.Pkg.Path, "internal", "tracestore") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			idx, ok := storePermArg[fn.Name()]
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				idx = 0 // method form: (*os.File).Chmod(mode)
			}
			if idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil {
				return true // not a compile-time constant: can't verify, don't guess
			}
			perm, ok := constant.Int64Val(constant.ToInt(tv.Value))
			if !ok || storePermAllowed[perm] {
				return true
			}
			pass.Reportf(arg.Pos(),
				"permission %O passed to os.%s in internal/tracestore; the shared store invariant is 0644 for files and 0755 for directories, so replicas, other users, and CI cache restores can read each other's traces",
				perm, fn.Name())
			return true
		})
	}
}
