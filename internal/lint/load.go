// Package loading for the binelint driver: a dependency-free (stdlib-only)
// replacement for golang.org/x/tools/go/packages, matching the repo's
// no-deps ethos. The Loader walks the module tree, parses each package
// directory with go/parser, and type-checks it with go/types; module-local
// imports resolve recursively through the Loader's own cache (so every
// package in one analysis run shares one object identity space — the
// atomicmix analyzer depends on this), and standard-library imports resolve
// through go/importer's source importer, which reads GOROOT/src.
//
// Test files (_test.go) are not loaded: binelint checks the invariants of
// shipped code, and tests legitimately use context.Background(), ad-hoc
// stage names, and other patterns the analyzers forbid in request paths.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path ("binetrees/internal/harness"). Test variants
	// (LoadTests) carry a " [tests]" or "_test" suffix so messages can tell
	// them apart; they are never importable.
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the package's non-test files, sorted by file name — plus,
	// for test variants, the _test.go files.
	Files []*ast.File
	// Pkg and Info are the go/types check results.
	Pkg  *types.Package
	Info *types.Info
	// Test marks a package produced by LoadTests.
	Test bool
}

// Loader loads and caches the module's packages. It doubles as the
// types.Importer for module-local import paths, so a package graph checked
// through one Loader shares one set of types.Object identities.
type Loader struct {
	Fset *token.FileSet
	// ModRoot is the directory containing go.mod; Module its module path.
	ModRoot string
	Module  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the enclosing module of dir (walking up to go.mod) and
// returns a Loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		Module:  mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// skipDir reports whether a directory is excluded from LoadAll: testdata
// trees (the golden-diagnostics packages deliberately violate the rules),
// VCS/hidden directories, and underscore-prefixed directories, matching the
// go tool's ./... expansion.
func skipDir(name string) bool {
	return name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll loads every package under the module root (the binelint ./...
// set), in deterministic directory order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != l.ModRoot && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the package in one directory (non-test
// files only), loading its module-local imports first. Results are cached
// by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadTests builds the test variants of an already-loaded package: the
// in-package variant (the package's non-test files re-checked together with
// its `package foo` test files) and the external `package foo_test`
// package, whichever exist. The result is nil when the directory has no
// test files.
//
// The driver's normal load set deliberately excludes tests (see the package
// comment) — the per-package invariant rules would drown in legitimate test
// idioms. The test variants exist for the analyzers that are *about* tests
// (paratest: a t.Parallel test must not mutate process-wide harness
// globals), which opt in via Analyzer.Tests. Both variants type-check
// through the same Loader importer, so every cross-package object — the
// harness mutators a test reaches through a helper in another package —
// keeps the identity the rest of the analysis set uses. Neither variant is
// registered in the import cache: nothing may import a test package.
func (l *Loader) LoadTests(p *Package) ([]*Package, error) {
	ents, err := os.ReadDir(p.Dir)
	if err != nil {
		return nil, err
	}
	var inPkg, external []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if f.Name.Name == p.Pkg.Name()+"_test" {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var out []*Package
	check := func(path string, files []*ast.File) (*Package, error) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path, l.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		return &Package{Path: path, Dir: p.Dir, Files: files, Pkg: tpkg, Info: info, Test: true}, nil
	}
	if len(inPkg) > 0 {
		// Re-checking the shared non-test ASTs is safe: go/parser ran with
		// SkipObjectResolution and go/types writes only into its own Info.
		tp, err := check(p.Path+" [tests]", append(append([]*ast.File(nil), p.Files...), inPkg...))
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	if len(external) > 0 {
		tp, err := check(p.Path+"_test", external)
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}

// Import implements types.Importer: module-local paths load through the
// Loader (sharing its cache and object identities), everything else — the
// standard library — through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.load(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
