package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParaTest guards the process-wide harness globals against parallel tests.
// SetSynthesis, SetTraceStore, SetTraceStoreProbeInterval and
// ResetTraceCache mutate state shared by every test in the binary; tests in
// one package are serialized by default, so mutate-then-defer-restore is
// safe — until someone adds t.Parallel(), at which point two tests race on
// the resolver chain's configuration and fail (or worse, pass) depending on
// interleaving. The reach is inherently transitive and cross-package: the
// mutation usually hides inside a helper (often in another package), and
// the t.Parallel call inside a t.Run closure — so the rule walks the fact
// layer's call graph, which attributes func-literal bodies to the enclosing
// test and follows method values, from every Test function.
//
// This is a Tests analyzer: it runs over the test-augmented package set the
// driver's normal load deliberately excludes.
var ParaTest = &Analyzer{
	Name:   "paratest",
	Doc:    "a test that (transitively) mutates the process-wide harness globals must not call t.Parallel",
	Global: true,
	Tests:  true,
	Run:    runParaTest,
}

// paraTestMutators are the process-wide harness globals' mutators.
var paraTestMutators = map[string]bool{
	"SetSynthesis":               true,
	"SetTraceStore":              true,
	"SetTraceStoreProbeInterval": true,
	"ResetTraceCache":            true,
}

func isHarnessMutator(fn *types.Func) bool {
	return fn != nil && paraTestMutators[fn.Name()] &&
		isPkgFunc(fn, fn.Name(), "internal", "harness")
}

// isTParallel matches (*testing.T).Parallel.
func isTParallel(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Parallel" || fn.Pkg() == nil || fn.Pkg().Path() != "testing" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedRecvType(sig) == "T"
}

func runParaTest(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if !pkg.Test {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !isTestFuncName(fd.Name.Name) {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil || !isTestingTFunc(fn) {
					continue
				}
				par := pass.Facts.Graph.FindReachable(fn, isTParallel)
				if par == nil {
					continue
				}
				mut := pass.Facts.Graph.FindReachable(fn, isHarnessMutator)
				if mut == nil {
					continue
				}
				pass.Reportf(fd.Name.Pos(),
					"%s calls t.Parallel but mutates process-wide harness state (%s): a parallel test racing the resolver-chain globals corrupts every sibling test; drop t.Parallel or keep the mutation out of its reach",
					fd.Name.Name, renderChain(mut))
			}
		}
	}
}

// isTestFuncName matches the go test harness's Test function naming: "Test"
// followed by nothing or a non-lowercase rune.
func isTestFuncName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Test")
	if !ok {
		return false
	}
	if rest == "" {
		return true
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return !unicode.IsLower(r)
}

// isTestingTFunc reports whether fn takes exactly one *testing.T.
func isTestingTFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "T" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "testing"
}

// renderChain prints a call chain as "a → b → c".
func renderChain(chain []*types.Func) string {
	names := make([]string, len(chain))
	for i, fn := range chain {
		names[i] = fn.Name()
	}
	return strings.Join(names, " → ")
}
