package lint

import (
	"go/ast"
	"go/types"
)

// TraceColRet guards against retaining views of a fabric.Trace's columnar
// storage across the trace-cache lifecycle. A *fabric.Trace reaches callers
// through the harness cache, and harness.ResetTraceCache drops every cached
// entry — after which a re-resolved schedule rebuilds its columns from
// scratch. Data pulled out of a trace through its accessor methods (At,
// Records, Steps, the per-column From/To/Step/Sub/Elems, the construction
// totals) is only coherent with the trace it came from: stash it in a
// struct field or a package-level variable and it silently outlives the
// reset, and whatever renders from it next mixes stale column data into an
// artifact — byte-level corruption no equivalence suite catches, because
// both runs read the same stale value.
//
// The rule is cross-package by nature: the store happens in one package,
// the reset call in another. It fires only when the analysis set contains
// an actual call that can reach harness.ResetTraceCache (the fact layer's
// call graph answers that); flagged shapes are accessor results assigned to
// struct fields, package-level variables, elements of either, or appended
// to slices held in either. Locals are fine — they die with the frame that
// resolved the trace.
var TraceColRet = &Analyzer{
	Name:   "tracecolret",
	Doc:    "fabric.Trace accessor results must not be retained in fields or package vars across a ResetTraceCache boundary",
	Global: true,
	Run:    runTraceColRet,
}

// isTraceAccessor reports whether fn is a method on fabric.Trace.
func isTraceAccessor(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !pathSegments(fn.Pkg().Path(), "internal", "fabric") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedRecvType(sig) == "Trace"
}

func isResetTraceCache(fn *types.Func) bool {
	return isPkgFunc(fn, "ResetTraceCache", "internal", "harness")
}

func runTraceColRet(pass *Pass) {
	resets := pass.Facts.Graph.SitesMatching(isResetTraceCache)
	if len(resets) == 0 {
		return // nothing in the analysis set can drop the cached columns
	}
	resetAt := pass.Position(resets[0].Call.Pos())

	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i, rhs := range x.Rhs {
						fn := accessorIn(info, rhs)
						if fn == nil {
							continue
						}
						if target := escapingTarget(pkg, info, x.Lhs[i]); target != "" {
							pass.Reportf(rhs.Pos(),
								"(*fabric.Trace).%s result is retained in %s, which outlives the trace cache: harness.ResetTraceCache (called at %s) drops the columns it reflects, leaving a stale view that corrupts whatever renders from it; keep accessor results frame-local",
								fn.Name(), target, resetAt)
						}
					}
				case *ast.ValueSpec:
					// Package-level `var recs = tr.Records()` retains by
					// construction; local specs arrive as DeclStmt-wrapped
					// and are fine (handled by scope check below).
					for _, v := range x.Values {
						fn := accessorIn(info, v)
						if fn == nil {
							continue
						}
						for _, name := range x.Names {
							if obj, ok := info.Defs[name].(*types.Var); ok && obj != nil && obj.Parent() == pkg.Pkg.Scope() {
								pass.Reportf(v.Pos(),
									"(*fabric.Trace).%s result is retained in package variable %s, which outlives the trace cache: harness.ResetTraceCache (called at %s) drops the columns it reflects; keep accessor results frame-local",
									fn.Name(), name.Name, resetAt)
							}
						}
					}
				}
				return true
			})
		}
	}
}

// accessorIn reports the Trace accessor a stored value originates from:
// either the call itself, or an append whose added elements include one.
func accessorIn(info *types.Info, e ast.Expr) *types.Func {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if isTraceAccessor(fn) {
		return fn
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args[1:] {
				if inner := accessorIn(info, arg); inner != nil {
					return inner
				}
			}
		}
	}
	return nil
}

// escapingTarget classifies an assignment target that outlives the frame:
// a struct field, a package-level var, or an element of either (one index
// deep). It returns a human-readable description, or "" for frame-local
// targets.
func escapingTarget(pkg *Package, info *types.Info, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v := fieldVar(info, x); v != nil {
			return "field " + v.Name()
		}
		// Qualified package var: pkg.Var = ...
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package variable " + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && v != nil && v.Parent() == pkg.Pkg.Scope() {
			return "package variable " + v.Name()
		}
	case *ast.IndexExpr:
		if inner := escapingTarget(pkg, info, x.X); inner != "" {
			return "an element of " + inner
		}
	}
	return ""
}
