package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// The module-wide static call graph, the first half of the fact layer
// (facts.go holds the constant resolver). Nodes are *types.Func objects —
// the Loader checks every package in one shared object space, so a function
// is one node no matter how many packages call it. Edges are collected from
// one walk over every file in the analysis set:
//
//   - direct calls: f() and x.M() add an edge to the resolved callee;
//   - method values and function values: mentioning a function as a value
//     (handler := s.serve, go run(worker), sort.Slice(x, less)) adds an
//     edge to it — the graph over-approximates "may call", which is the
//     right direction for the invariants built on it (a test that captures
//     harness.ResetTraceCache in a closure can call it);
//   - func literals: a literal's body is attributed to the enclosing
//     declared function, so calls made inside t.Run(..., func(t *testing.T)
//     {...}) are edges out of the enclosing test;
//   - package-level initializers: calls in var declarations are attributed
//     to a per-package init node, so "registered at init" call sites still
//     have a caller.
//
// Dynamic dispatch through interfaces and stored function values is not
// resolved; analyzers that need soundness there (paratest) pair the graph
// with the value-reference edges above, which catch the capture site.
type CallGraph struct {
	// edges maps caller → callee set, callees in deterministic order.
	edges map[*types.Func][]*types.Func
	// sites indexes every static call expression by its resolved callee.
	sites map[*types.Func][]CallSite
	// reach memoizes ReachableFrom closures.
	reach map[*types.Func]map[*types.Func]bool
}

// CallSite is one static call of a resolved function.
type CallSite struct {
	// Pkg is the package the call appears in; Call the expression.
	Pkg  *Package
	Call *ast.CallExpr
	// Caller is the enclosing declared function, or the package's synthetic
	// init node for calls in package-level initializers.
	Caller *types.Func
}

// buildCallGraph walks every file of pkgs once and assembles the graph.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		edges: map[*types.Func][]*types.Func{},
		sites: map[*types.Func][]CallSite{},
		reach: map[*types.Func]map[*types.Func]bool{},
	}
	edgeSet := map[*types.Func]map[*types.Func]bool{}
	addEdge := func(from, to *types.Func) {
		if from == nil || to == nil {
			return
		}
		s := edgeSet[from]
		if s == nil {
			s = map[*types.Func]bool{}
			edgeSet[from] = s
		}
		s[to] = true
	}
	for _, pkg := range pkgs {
		// initNode anchors package-level initializer calls. types.Signature
		// must be non-nil for a *types.Func; an empty one is fine.
		initNode := types.NewFunc(0, pkg.Pkg, "init#binelint", types.NewSignatureType(nil, nil, nil, nil, nil, false))
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil || d.Body == nil {
						continue
					}
					g.walkBody(pkg, fn, d.Body, addEdge)
				case *ast.GenDecl:
					g.walkBody(pkg, initNode, d, addEdge)
				}
			}
		}
	}
	for from, set := range edgeSet {
		out := make([]*types.Func, 0, len(set))
		for to := range set {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Pos() != out[j].Pos() {
				return out[i].Pos() < out[j].Pos()
			}
			return out[i].Id() < out[j].Id()
		})
		g.edges[from] = out
	}
	return g
}

// walkBody collects edges and call sites out of one declared function (or a
// package's init node) into the graph.
func (g *CallGraph) walkBody(pkg *Package, caller *types.Func, root ast.Node, addEdge func(from, to *types.Func)) {
	info := pkg.Info
	// calleeIdents marks identifiers consumed as the callee of a direct
	// call, so the value-reference pass below doesn't double-count them.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, x); fn != nil {
				addEdge(caller, fn)
				g.sites[fn] = append(g.sites[fn], CallSite{Pkg: pkg, Call: x, Caller: caller})
				switch fun := ast.Unparen(x.Fun).(type) {
				case *ast.Ident:
					calleeIdents[fun] = true
				case *ast.SelectorExpr:
					calleeIdents[fun.Sel] = true
				}
			}
		case *ast.Ident:
			if calleeIdents[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				// Method value, function value, or conversion argument:
				// referencing the function may invoke it later.
				addEdge(caller, fn)
			}
		}
		return true
	})
}

// Callees returns fn's direct callees in deterministic order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.edges[fn] }

// Sites returns every static call site of fn across the analysis set.
func (g *CallGraph) Sites(fn *types.Func) []CallSite { return g.sites[fn] }

// SitesMatching returns the call sites of every function match reports true
// for, in deterministic position order — how analyzers find "all calls to
// obs.(*Registry).Counter" without holding the object handle.
func (g *CallGraph) SitesMatching(match func(*types.Func) bool) []CallSite {
	var out []CallSite
	for fn, sites := range g.sites {
		if match(fn) {
			out = append(out, sites...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Call.Pos() < out[j].Call.Pos() })
	return out
}

// ReachableFrom returns the transitive callee closure of fn (fn excluded
// unless it reaches itself), memoized across queries.
func (g *CallGraph) ReachableFrom(fn *types.Func) map[*types.Func]bool {
	if r, ok := g.reach[fn]; ok {
		return r
	}
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), g.edges[fn]...)
	for len(stack) > 0 {
		next := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[next] {
			continue
		}
		seen[next] = true
		stack = append(stack, g.edges[next]...)
	}
	g.reach[fn] = seen
	return seen
}

// Reaches reports whether from can transitively call to.
func (g *CallGraph) Reaches(from, to *types.Func) bool {
	return g.ReachableFrom(from)[to]
}

// FindReachable searches fn's callee closure breadth-first for a function
// match reports true for, returning the call chain from fn to it (fn first,
// match last), or nil. Breadth-first, so the chain is a shortest one and
// deterministic given the ordered edge lists.
func (g *CallGraph) FindReachable(fn *types.Func, match func(*types.Func) bool) []*types.Func {
	type hop struct {
		fn   *types.Func
		prev *hop
	}
	seen := map[*types.Func]bool{fn: true}
	queue := []*hop{{fn: fn}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, next := range g.edges[h.fn] {
			if seen[next] {
				continue
			}
			seen[next] = true
			nh := &hop{fn: next, prev: h}
			if match(next) {
				var chain []*types.Func
				for cur := nh; cur != nil; cur = cur.prev {
					chain = append(chain, cur.fn)
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				return chain
			}
			queue = append(queue, nh)
		}
	}
	return nil
}
