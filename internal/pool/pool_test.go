package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]int32
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopsDispatchingAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran [10]bool
	err := ForEach(1, 10, func(i int) error {
		ran[i] = true
		if i == 4 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v", err)
	}
	for i, r := range ran {
		if want := i <= 4; r != want {
			t.Fatalf("index %d ran=%v, want %v", i, r, want)
		}
	}
}

// TestForEachClaimedIndicesAlwaysRun pins the determinism argument: an
// index claimed before a failure must run even if a higher index fails
// while it is in flight, so the lowest failing index always records its
// error. Index 0 blocks until index 9 has failed, then fails itself; the
// returned error must be index 0's.
func TestForEachClaimedIndicesAlwaysRun(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	highFailed := make(chan struct{})
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 0:
			<-highFailed
			return errLow
		case 9:
			defer close(highFailed)
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the in-flight lower index's error", err)
	}
}

func TestCollect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		outs, err := Collect(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range outs {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	boom := errors.New("boom")
	if _, err := Collect(4, 20, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}); err != boom {
		t.Fatalf("got %v", err)
	}
}
