package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]int32
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachStopsDispatchingAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran [10]bool
	err := ForEach(1, 10, func(i int) error {
		ran[i] = true
		if i == 4 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v", err)
	}
	for i, r := range ran {
		if want := i <= 4; r != want {
			t.Fatalf("index %d ran=%v, want %v", i, r, want)
		}
	}
}

// TestForEachClaimedIndicesAlwaysRun pins the determinism argument: an
// index claimed before a failure must run even if a higher index fails
// while it is in flight, so the lowest failing index always records its
// error. Index 0 blocks until index 9 has failed, then fails itself; the
// returned error must be index 0's.
func TestForEachClaimedIndicesAlwaysRun(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	highFailed := make(chan struct{})
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 0:
			<-highFailed
			return errLow
		case 9:
			defer close(highFailed)
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the in-flight lower index's error", err)
	}
}

func TestRunnerRunsEveryIndexAcrossBatches(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		r := NewRunner(workers)
		if r.Workers() != workers {
			t.Fatalf("width %d, want %d", r.Workers(), workers)
		}
		const n = 57
		var hits [n]int32
		// Two sequential batches and the residue of a third share the
		// same workers.
		for batch := 0; batch < 3; batch++ {
			err := r.ForEach(n, func(i int) error {
				atomic.AddInt32(&hits[i], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d batch %d: %v", workers, batch, err)
			}
		}
		r.Close()
		for i, h := range hits {
			if h != 3 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunnerConcurrentBatches(t *testing.T) {
	r := NewRunner(4)
	defer r.Close()
	const batches, n = 6, 40
	var total atomic.Int64
	errc := make(chan error, batches)
	for b := 0; b < batches; b++ {
		go func() {
			errc <- r.ForEach(n, func(i int) error {
				total.Add(int64(i))
				return nil
			})
		}()
	}
	for b := 0; b < batches; b++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if want := int64(batches * n * (n - 1) / 2); total.Load() != want {
		t.Fatalf("total %d, want %d", total.Load(), want)
	}
}

func TestRunnerReturnsLowestIndexErrorAndStops(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		r := NewRunner(workers)
		var submitted atomic.Int64
		err := r.ForEach(200, func(i int) error {
			submitted.Add(1)
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		r.Close()
		if err != errA {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
		if submitted.Load() == 200 {
			t.Fatalf("workers=%d: failure did not stop submission", workers)
		}
	}
}

func TestRunnerZeroJobs(t *testing.T) {
	r := NewRunner(2)
	defer r.Close()
	if err := r.ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestCollect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		outs, err := Collect(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range outs {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	boom := errors.New("boom")
	if _, err := Collect(4, 20, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}); err != boom {
		t.Fatalf("got %v", err)
	}
}

// TestRunnerStats pins the observability counters: after a drained batch
// the queue and in-flight gauges are back to zero, every job is counted
// done, and the wait/busy accumulators moved.
func TestRunnerStats(t *testing.T) {
	r := NewRunner(2)
	defer r.Close()
	const n = 50
	if err := r.ForEach(n, func(i int) error {
		if s := r.Stats(); s.InFlight < 1 || s.InFlight > 2 {
			t.Errorf("in-flight %d outside pool width", s.InFlight)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Workers != 2 || s.QueueDepth != 0 || s.InFlight != 0 || s.JobsDone != n {
		t.Fatalf("stats after drain: %+v", s)
	}
	if s.WaitSeconds < 0 || s.BusySeconds <= 0 {
		t.Fatalf("time accumulators: %+v", s)
	}
}

// TestRunnerPressure pins the admission-control contract: Pressure counts
// queued plus in-flight work, is positive while a batch runs, and returns to
// zero once the pool drains.
func TestRunnerPressure(t *testing.T) {
	r := NewRunner(2)
	defer r.Close()
	if p := r.Pressure(); p != 0 {
		t.Fatalf("idle pressure = %d, want 0", p)
	}
	var sawPositive atomic.Bool
	if err := r.ForEach(20, func(i int) error {
		if r.Pressure() >= 1 {
			sawPositive.Store(true)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawPositive.Load() {
		t.Fatal("pressure never observed positive during a running batch")
	}
	if p := r.Pressure(); p != 0 {
		t.Fatalf("drained pressure = %d, want 0", p)
	}
}

// TestForEachCtxPreCancelled pins the cancellation cut-off at both the
// serial and the pooled width: a context cancelled before the call runs
// nothing and returns ctx.Err().
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 50, func(i int) error {
			ran.Add(1)
			return nil
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d indices ran under a pre-cancelled context", workers, ran.Load())
		}
	}
}

// TestForEachCtxStopsDispatchingOnCancel cancels mid-drain: index 3 cancels
// the context, after which no further indices may be dispatched (in-flight
// ones complete), and the batch reports ctx.Err().
func TestForEachCtxStopsDispatchingOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 200, func(i int) error {
			ran.Add(1)
			if i == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 200 {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (all %d ran)", workers, n)
		} else if n < 4 {
			t.Fatalf("workers=%d: only %d indices ran before the cancelling index finished", workers, n)
		}
	}
}

// TestForEachCtxErrorBeatsCancel pins the error-selection order: when a
// dispatched index fails and the context is also cancelled, the index error
// wins — cancellation is the less specific signal.
func TestForEachCtxErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			if i == 2 {
				cancel()
				return boom
			}
			return nil
		})
		cancel()
		if err != boom {
			t.Fatalf("workers=%d: got %v, want the index error over ctx.Err()", workers, err)
		}
	}
}

// TestRunnerForEachCtxCancelKeepsRunnerUsable pins that a cancelled batch
// leaves the shared Runner fit for the next request — the service's resident
// pool must survive aborted requests.
func TestRunnerForEachCtxCancelKeepsRunnerUsable(t *testing.T) {
	r := NewRunner(3)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.ForEachCtx(ctx, 50, func(int) error { return nil }); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var ran atomic.Int64
	if err := r.ForEach(50, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("follow-up batch ran %d/50 indices", ran.Load())
	}
	if s := r.Stats(); s.QueueDepth != 0 || s.InFlight != 0 {
		t.Fatalf("gauges after drain: %+v", s)
	}
}
