// Package pool is the bounded worker pool shared by the experiment harness
// and the CLIs: index-addressed fan-out with deterministic error selection.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool width used when the caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers). Indices are dispatched in
// ascending order and a claimed index always runs to completion; after a
// failure no further indices are claimed. Because every failure observed
// at claim time comes from a lower index, the lowest failing index always
// runs, and its error is returned — the same error a serial loop would
// stop on. With workers == 1 the indices run strictly in order on the
// calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next, failed int64
	next = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// The failure check precedes the claim: once an index is
				// claimed it runs unconditionally, so a flag raised by a
				// (necessarily lower) index can only stop higher ones.
				if atomic.LoadInt64(&failed) != 0 {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					atomic.StoreInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect is ForEach with a result slot per index: fn(i)'s value lands in
// slot i of the returned slice, giving callers an index-addressed result
// set that a serial pass can merge in deterministic order.
func Collect[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	outs := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		outs[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}
