// Package pool is the bounded worker pool shared by the experiment harness
// and the CLIs: index-addressed fan-out with deterministic error selection.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkers is the pool width used when the caller passes workers <= 0:
// one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers). Indices are dispatched in
// ascending order and a dispatched index always runs to completion; after
// a failure no further indices are dispatched. Because every failure
// observed at dispatch time comes from a lower index, the lowest failing
// index always runs, and its error is returned — the same error a serial
// loop would stop on. With workers == 1 the indices run strictly in order
// on the calling goroutine; the parallel path delegates to a one-shot
// Runner, the single implementation of those guarantees.
func ForEach(workers, n int, fn func(i int) error) error {
	// Compatibility wrapper for context-free batch callers (CLI paths that
	// own the whole process lifetime); everything request-scoped goes through
	// ForEachCtx.
	//binelint:ignore ctxflow ForEach is the documented context-free entry point; request paths use ForEachCtx
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach bounded by a context: once ctx is cancelled no
// further indices are dispatched (already-dispatched indices run to
// completion, keeping shared state consistent) and ctx.Err() is returned —
// unless a dispatched index failed first, in which case the usual
// lowest-failing-index error wins. The serial workers <= 1 path checks the
// context between indices, so cancellation has the same cut-off semantics at
// any pool width.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	r := NewRunner(workers)
	defer r.Close()
	return r.ForEachCtx(ctx, n, fn)
}

// Collect is ForEach with a result slot per index: fn(i)'s value lands in
// slot i of the returned slice, giving callers an index-addressed result
// set that a serial pass can merge in deterministic order.
func Collect[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	outs := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		outs[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// Runner is a reusable fixed-width pool: every batch submitted through its
// ForEach shares the same long-lived workers, so one process-wide instance
// can drain the cells of many experiments — across systems — at once,
// instead of each experiment spinning up and tearing down its own
// goroutines. Batches may be submitted from different goroutines
// concurrently; their jobs interleave on the shared workers. A batch's fn
// must not call back into the same Runner (the nested submit would wait on
// workers the caller occupies).
type Runner struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int

	// Observability counters, maintained with atomics on the job path so a
	// resident service Runner can expose queue depth, in-flight work, and
	// cumulative wait/busy time without locks (see Stats).
	queued   atomic.Int64
	inFlight atomic.Int64
	done     atomic.Uint64
	waitNs   atomic.Int64
	busyNs   atomic.Int64
}

// RunnerStats is a point-in-time view of a Runner's job flow.
type RunnerStats struct {
	// Workers is the fixed pool width.
	Workers int `json:"workers"`
	// QueueDepth counts jobs submitted but not yet picked up by a worker.
	QueueDepth int64 `json:"queue_depth"`
	// InFlight counts jobs currently executing.
	InFlight int64 `json:"in_flight"`
	// JobsDone counts completed jobs over the Runner's lifetime.
	JobsDone uint64 `json:"jobs_done"`
	// WaitSeconds totals submit-to-start latency across all jobs — the
	// queue pressure signal.
	WaitSeconds float64 `json:"wait_seconds"`
	// BusySeconds totals execution time — worker utilization is
	// BusySeconds / (uptime × Workers).
	BusySeconds float64 `json:"busy_seconds"`
}

// Stats snapshots the runner's observability counters.
func (r *Runner) Stats() RunnerStats {
	return RunnerStats{
		Workers:     r.workers,
		QueueDepth:  r.queued.Load(),
		InFlight:    r.inFlight.Load(),
		JobsDone:    r.done.Load(),
		WaitSeconds: float64(r.waitNs.Load()) / 1e9,
		BusySeconds: float64(r.busyNs.Load()) / 1e9,
	}
}

// NewRunner starts a pool of the given width (<= 0 selects DefaultWorkers).
// Close it when no more batches will be submitted.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	r := &Runner{jobs: make(chan func()), workers: workers}
	r.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer r.wg.Done()
			for f := range r.jobs {
				f()
			}
		}()
	}
	return r
}

// Workers returns the pool width.
func (r *Runner) Workers() int { return r.workers }

// Pressure reports how much work the pool currently holds: cells waiting in
// the queue plus cells running on workers. Admission control reads this to
// size its wait budget — a pressure of zero means a disconnect storm has
// fully drained (every aborted flight's cells finished or were never
// dispatched), so new flights can be admitted immediately.
func (r *Runner) Pressure() int64 { return r.queued.Load() + r.inFlight.Load() }

// Close stops the workers once every submitted job has run.
func (r *Runner) Close() {
	close(r.jobs)
	r.wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) on the runner's shared workers
// with the package-level ForEach guarantees: indices are submitted in
// ascending order and a submitted index always runs; after an observed
// failure no further indices are submitted, so the lowest failing index
// always runs and its error is returned — the same error a serial loop
// would stop on.
func (r *Runner) ForEach(n int, fn func(i int) error) error {
	//binelint:ignore ctxflow ForEach is the documented context-free entry point; request paths use ForEachCtx
	return r.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEach bounded by a context — the request-scoped form used
// by the artifact service, whose resident Runner outlives any one request:
// once ctx is cancelled no further indices are submitted (already-submitted
// indices still run to completion, so shared state stays consistent), and
// ctx.Err() is returned unless a submitted index failed first, in which case
// the usual lowest-failing-index error wins.
func (r *Runner) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	cancelled := false
	for i := 0; i < n; i++ {
		// As in the package-level ForEach, the failure check precedes the
		// claim (here: the submission), so a raised flag necessarily comes
		// from an already-submitted, lower index.
		if failed.Load() {
			break
		}
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		i := i
		wg.Add(1)
		submitted := time.Now()
		r.queued.Add(1)
		r.jobs <- func() {
			started := time.Now()
			r.queued.Add(-1)
			r.inFlight.Add(1)
			r.waitNs.Add(started.Sub(submitted).Nanoseconds())
			defer func() {
				r.busyNs.Add(time.Since(started).Nanoseconds())
				r.inFlight.Add(-1)
				r.done.Add(1)
				wg.Done()
			}()
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}
