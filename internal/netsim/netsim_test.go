package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

func testParams() Params {
	return Params{
		AlphaLocal:  1e-6,
		AlphaGlobal: 2e-6,
		MsgOverhead: 5e-7,
		Gamma:       1e-10,
		MemBW:       20e9,
	}
}

// bcastTrace records a broadcast of n unit elements over the given tree
// kind on p ranks.
func bcastTrace(t *testing.T, kind core.Kind, p, n int) *fabric.Trace {
	t.Helper()
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	tree := core.MustTree(kind, p, 0)
	if err := fabric.Run(rec, func(c fabric.Comm) error {
		return coll.Bcast(c, tree, make([]int32, n))
	}); err != nil {
		t.Fatal(err)
	}
	return rec.Trace()
}

func identity(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFigure1BroadcastTraffic(t *testing.T) {
	// Fig. 1: on eight nodes with two nodes per leaf switch, a
	// distance-doubling broadcast of n bytes forwards 6n bytes across
	// subtree boundaries while the distance-halving variant forwards 3n.
	const n = 100
	groupOf := []int{0, 0, 1, 1, 2, 2, 3, 3}
	dd, _ := GlobalTraffic(bcastTrace(t, core.BinomialDD, 8, n), groupOf)
	dh, _ := GlobalTraffic(bcastTrace(t, core.BinomialDH, 8, n), groupOf)
	if dd != 6*n {
		t.Errorf("distance-doubling global traffic %d, want %d", dd, 6*n)
	}
	if dh != 3*n {
		t.Errorf("distance-halving global traffic %d, want %d", dh, 3*n)
	}
	// The Bine tree does no worse than distance halving here.
	bine, _ := GlobalTraffic(bcastTrace(t, core.BineDH, 8, n), groupOf)
	if bine > dh {
		t.Errorf("bine global traffic %d exceeds distance-halving %d", bine, dh)
	}
}

func TestEvaluateBasicProperties(t *testing.T) {
	p := 16
	tr := bcastTrace(t, core.BineDH, p, 64)
	topo, err := topology.NewUpDown(topology.UpDownConfig{
		Name: "t", Groups: 4, NodesPerGroup: 4, NICBW: 25e9, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(tr, topo, testParams(), Eval{Placement: identity(p), ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Messages != p-1 || res.Steps != 4 {
		t.Fatalf("result %+v", res)
	}
	if res.TotalBytes != float64(64*4*(p-1)) {
		t.Fatalf("total bytes %f", res.TotalBytes)
	}
	// Byte metrics scale exactly linearly with ElemBytes.
	res2, err := Evaluate(tr, topo, testParams(), Eval{Placement: identity(p), ElemBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.GlobalBytes-2*res.GlobalBytes) > 1e-9 {
		t.Fatalf("global bytes did not scale: %f vs %f", res2.GlobalBytes, res.GlobalBytes)
	}
	if res2.Time <= res.Time {
		t.Fatal("time not monotone in message size")
	}
	// Placement shorter than the trace fails.
	if _, err := Evaluate(tr, topo, testParams(), Eval{Placement: identity(2), ElemBytes: 4}); err == nil {
		t.Fatal("short placement accepted")
	}
}

func TestContentionSerializesSharedLinks(t *testing.T) {
	// Two concurrent messages leaving the same subtree share its uplink
	// and take twice as long as one; two messages on distinct uplinks do
	// not.
	mk := func(fromA, toA, fromB, toB int) *fabric.Trace {
		return fabric.NewTrace(8, []fabric.Record{
			{From: fromA, To: toA, Step: 0, Elems: 1 << 20},
			{From: fromB, To: toB, Step: 0, Elems: 1 << 20},
		})
	}
	topo, err := topology.NewUpDown(topology.UpDownConfig{
		Name: "t", Groups: 4, NodesPerGroup: 2, NICBW: 10e9, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := identity(8)
	shared, err := Evaluate(mk(0, 2, 1, 3), topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	separate, err := Evaluate(mk(0, 2, 3, 1), topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Time <= 1.8*separate.Time {
		t.Fatalf("shared uplink %.3g not ≈2× separate %.3g", shared.Time, separate.Time)
	}
}

func TestStepsSerializeAndMessagesOverlap(t *testing.T) {
	// Same two messages: in one step they overlap, in two steps they pay
	// alpha twice and serialize.
	one := fabric.NewTrace(4, []fabric.Record{
		{From: 0, To: 1, Step: 0, Elems: 1000},
		{From: 2, To: 3, Step: 0, Elems: 1000},
	})
	two := fabric.NewTrace(4, []fabric.Record{
		{From: 0, To: 1, Step: 0, Elems: 1000},
		{From: 2, To: 3, Step: 1, Elems: 1000},
	})
	topo := topology.NewFlat("f", 4, 10e9)
	pl := identity(4)
	a, err := Evaluate(one, topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(two, topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Time <= a.Time || b.Steps != 2 || a.Steps != 1 {
		t.Fatalf("steps: one=%+v two=%+v", a, b)
	}
}

func TestPerMessageOverheadCharged(t *testing.T) {
	bulk := fabric.NewTrace(2, []fabric.Record{
		{From: 0, To: 1, Step: 0, Elems: 1000},
	})
	var recs []fabric.Record
	for sub := 0; sub < 10; sub++ {
		recs = append(recs, fabric.Record{From: 0, To: 1, Step: 0, Sub: sub, Elems: 100})
	}
	segmented := fabric.NewTrace(2, recs)
	topo := topology.NewFlat("f", 2, 10e9)
	pl := identity(2)
	a, _ := Evaluate(bulk, topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	b, _ := Evaluate(segmented, topo, testParams(), Eval{Placement: pl, ElemBytes: 4})
	want := a.Time + 9*testParams().MsgOverhead
	if math.Abs(b.Time-want) > 1e-12 {
		t.Fatalf("segmented %.9g, want %.9g", b.Time, want)
	}
}

func TestReductionComputeAndOverlap(t *testing.T) {
	tr := fabric.NewTrace(2, []fabric.Record{
		{From: 0, To: 1, Step: 0, Elems: 1 << 20},
	})
	topo := topology.NewFlat("f", 2, 10e9)
	pl := identity(2)
	p := testParams()
	plain, _ := Evaluate(tr, topo, p, Eval{Placement: pl, ElemBytes: 4})
	reduced, _ := Evaluate(tr, topo, p, Eval{Placement: pl, ElemBytes: 4, Reduces: true})
	overlapped, _ := Evaluate(tr, topo, p, Eval{Placement: pl, ElemBytes: 4, Reduces: true, Overlap: 0.8})
	if !(plain.Time < overlapped.Time && overlapped.Time < reduced.Time) {
		t.Fatalf("ordering: plain %.3g overlapped %.3g reduced %.3g",
			plain.Time, overlapped.Time, reduced.Time)
	}
	copied, _ := Evaluate(tr, topo, p, Eval{Placement: pl, ElemBytes: 4, CopyBytes: 1e9})
	if copied.Time <= plain.Time {
		t.Fatal("copy bytes not charged")
	}
}

func TestTraceScalingExact(t *testing.T) {
	// The methodology cornerstone: executing a collective at block size k
	// produces exactly k× the per-message elements of the unit-block
	// trace, so rescaling unit traces is exact.
	p := 16
	b := core.MustButterfly(core.BflyBineDD, p)
	trace := func(bs int) *fabric.Trace {
		rec := fabric.NewRecorder(fabric.NewMem(p))
		defer rec.Close()
		if err := fabric.Run(rec, func(c fabric.Comm) error {
			out := make([]int32, bs)
			return coll.ReduceScatter(c, b, coll.Permute, make([]int32, p*bs), out, coll.OpSum)
		}); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	t1, t3 := trace(1), trace(3)
	if t1.NumRecords() != t3.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", t1.NumRecords(), t3.NumRecords())
	}
	for i := 0; i < t1.NumRecords(); i++ {
		a, b := t1.At(i), t3.At(i)
		if a.From != b.From || a.To != b.To || a.Step != b.Step || a.Sub != b.Sub {
			t.Fatalf("record %d shape differs: %+v vs %+v", i, a, b)
		}
		if b.Elems != 3*a.Elems {
			t.Fatalf("record %d: %d elems vs %d (want exact 3×)", i, a.Elems, b.Elems)
		}
	}
}

func TestBineReducesGlobalTrafficAtScale(t *testing.T) {
	// End-to-end check of the headline claim. The Eq. 2 analysis compares
	// schedules with the same step ordering (distance doubling vs distance
	// doubling), and the Bine advantage appears on *fragmented*
	// allocations, where group runs have irregular lengths and the
	// XOR-aligned binomial pairs lose their alignment luck — exactly the
	// real-system situation the paper's Fig. 5 measures with Slurm data.
	p := 256
	groupOf := make([]int, p)
	rng := rand.New(rand.NewSource(7))
	g, left := 0, 0
	for i := range groupOf {
		if left == 0 {
			g++
			left = 5 + rng.Intn(30) // irregular per-group run lengths
		}
		groupOf[i] = g
		left--
	}
	trace := func(kind core.ButterflyKind) *fabric.Trace {
		rec := fabric.NewRecorder(fabric.NewMem(p))
		defer rec.Close()
		b := core.MustButterfly(kind, p)
		if err := fabric.Run(rec, func(c fabric.Comm) error {
			return coll.AllreduceRsAg(c, b, make([]int32, p), coll.OpSum)
		}); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	bine, totB := GlobalTraffic(trace(core.BflyBineDD), groupOf)
	binom, totN := GlobalTraffic(trace(core.BflyBinomialDD), groupOf)
	if totB != totN {
		t.Fatalf("total volumes differ: %d vs %d", totB, totN)
	}
	if bine >= binom {
		t.Fatalf("bine global traffic %d not below binomial %d", bine, binom)
	}
	red := 1 - float64(bine)/float64(binom)
	if red > 0.34 {
		t.Fatalf("reduction %.3f exceeds the 33%% theoretical bound", red)
	}
	t.Logf("global traffic: bine=%d binomial=%d reduction=%.1f%%", bine, binom, 100*red)
}

func ExampleGlobalTraffic() {
	tr := fabric.NewTrace(4, []fabric.Record{
		{From: 0, To: 1, Elems: 10},
		{From: 0, To: 2, Elems: 10},
	})
	groupOf := []int{0, 0, 1, 1}
	global, total := GlobalTraffic(tr, groupOf)
	fmt.Println(global, total)
	// Output: 10 20
}
