package netsim

import (
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

// algoTrace records a registry algorithm at unit block granularity (n = p
// elements), the way the harness does.
func algoTrace(t *testing.T, algo coll.Algorithm, p int) *fabric.Trace {
	t.Helper()
	run, err := algo.Make(p, 0)
	if err != nil {
		t.Fatalf("%v/%s: %v", algo.Coll, algo.Name, err)
	}
	rec := fabric.NewRecorder(fabric.NewMem(p))
	defer rec.Close()
	err = fabric.Run(rec, func(c fabric.Comm) error {
		inLen, outLen := algo.Coll.InOutLens(p, p)
		in := make([]int32, inLen)
		var out []int32
		if outLen > 0 {
			out = make([]int32, outLen)
		}
		return run(c, 0, in, out, coll.OpSum)
	})
	if err != nil {
		t.Fatalf("%v/%s: %v", algo.Coll, algo.Name, err)
	}
	return rec.Trace()
}

func testTopologies(t *testing.T, p int) map[string]topology.Topology {
	t.Helper()
	updown, err := topology.NewUpDown(topology.UpDownConfig{
		Name: "updown", Groups: 4, NodesPerGroup: p / 4, NICBW: 25e9, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dfly, err := topology.NewDragonfly(topology.DragonflyConfig{
		Name: "dfly", Groups: 4, NodesPerGroup: p / 4, NICBW: 25e9, GlobalBW: 50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.NewTorus(topology.TorusConfig{
		Name: "torus", Dims: []int{4, p / 4}, NICBW: 6.8e9, LinkBW: 6.8e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]topology.Topology{
		"flat":      topology.NewFlat("flat", p, 25e9),
		"updown":    updown,
		"dragonfly": dfly,
		"torus":     torus,
	}
}

// TestEvaluateSizesMatchesEvaluate pins the batched evaluator's exactness
// guarantee: for every registry algorithm (all collectives) on every
// topology family, EvaluateSizes returns bit-for-bit the Result of a
// per-size Evaluate call — with == on every field, no epsilon — including
// non-dyadic element scales like the torus recordings produce and the
// per-size copy costs of the permute strategies.
func TestEvaluateSizesMatchesEvaluate(t *testing.T) {
	const p = 16
	// Dyadic scales (the flat sweeps), awkward rationals (torus recordings
	// divide by p·2·ndims), and arbitrary decimals.
	elemBytes := []float64{0.25, 4, 4096, 1024.0 / 48.0, 1e6 / 384.0, 7.3, 123456.789}
	copyBytes := make([]float64, len(elemBytes))
	for i, eb := range elemBytes {
		copyBytes[i] = 0.5 * eb * p
	}
	topos := testTopologies(t, p)
	params := testParams()
	params.PerHopLatency = 3e-7
	checked := 0
	for _, algo := range coll.Registry() {
		tr := algoTrace(t, algo, p)
		for name, topo := range topos {
			ev := Eval{
				Placement:   identity(p),
				Reduces:     algo.Coll.Reduces(),
				Overlap:     algo.Overlap,
				CopyBytesAt: copyBytes,
			}
			batched, err := EvaluateSizes(tr, topo, params, ev, elemBytes)
			if err != nil {
				t.Fatalf("%v/%s on %s: %v", algo.Coll, algo.Name, name, err)
			}
			if len(batched) != len(elemBytes) {
				t.Fatalf("%v/%s on %s: %d results for %d sizes", algo.Coll, algo.Name, name, len(batched), len(elemBytes))
			}
			for i, eb := range elemBytes {
				single, err := Evaluate(tr, topo, params, Eval{
					Placement: ev.Placement,
					ElemBytes: eb,
					Reduces:   ev.Reduces,
					Overlap:   ev.Overlap,
					CopyBytes: copyBytes[i],
				})
				if err != nil {
					t.Fatalf("%v/%s on %s: %v", algo.Coll, algo.Name, name, err)
				}
				if batched[i] != single {
					t.Fatalf("%v/%s on %s, elemBytes=%v:\n batched %+v\n  single %+v",
						algo.Coll, algo.Name, name, eb, batched[i], single)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no configurations checked")
	}
	t.Logf("%d (algorithm, topology, size) configurations bit-identical", checked)
}

func TestEvaluateSizesErrors(t *testing.T) {
	tr := fabric.NewTrace(4, []fabric.Record{{From: 0, To: 1, Elems: 1}})
	topo := topology.NewFlat("f", 4, 10e9)
	// Short placement fails like Evaluate.
	if _, err := EvaluateSizes(tr, topo, testParams(), Eval{Placement: identity(2)}, []float64{1}); err == nil {
		t.Fatal("short placement accepted")
	}
	// Mismatched per-size copy costs fail.
	if _, err := EvaluateSizes(tr, topo, testParams(), Eval{
		Placement: identity(4), CopyBytesAt: []float64{1, 2, 3},
	}, []float64{1}); err == nil {
		t.Fatal("mismatched CopyBytesAt accepted")
	}
	// Without CopyBytesAt the shared CopyBytes applies to every size.
	p := testParams()
	rs, err := EvaluateSizes(tr, topo, p, Eval{Placement: identity(4), CopyBytes: 1e9}, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, eb := range []float64{4, 8} {
		single, err := Evaluate(tr, topo, p, Eval{Placement: identity(4), ElemBytes: eb, CopyBytes: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		if rs[i] != single {
			t.Fatalf("size %d: batched %+v != single %+v", i, rs[i], single)
		}
	}
}
