package netsim

import (
	"fmt"
	"testing"

	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

// ringTrace builds the fig11b hot spot in miniature: a p-rank ring
// reduce-scatter + allgather schedule, 2(p−1) steps of p unit messages.
func ringTrace(p int) *fabric.Trace {
	steps := 2 * (p - 1)
	recs := make([]fabric.Record, 0, p*steps)
	for s := 0; s < steps; s++ {
		for r := 0; r < p; r++ {
			recs = append(recs, fabric.Record{From: r, To: (r + 1) % p, Step: s, Elems: 1})
		}
	}
	return fabric.NewTrace(p, recs)
}

// BenchmarkProfileRing measures the structural replay (profile) of a ring
// schedule — the netsim hot path of every sweep cell — on a torus and a
// flat model. The replay reuses dense scratch and cached routes, so
// allocs/op stays flat in the message count.
func BenchmarkProfileRing(b *testing.B) {
	const p = 256
	tr := ringTrace(p)
	placement := make([]int, p)
	for i := range placement {
		placement[i] = i
	}
	params := testParams()
	tor, err := topology.NewTorus(topology.TorusConfig{
		Name: "tor", Dims: []int{16, 16}, NICBW: 6.8e9, LinkBW: 6.8e9,
	})
	if err != nil {
		b.Fatal(err)
	}
	topos := map[string]topology.Topology{
		"torus": tor,
		"flat":  topology.NewFlat("flat", p, 25e9),
	}
	for _, name := range []string{"torus", "flat"} {
		topo := topos[name]
		b.Run(fmt.Sprintf("%s-p%d", name, p), func(b *testing.B) {
			b.SetBytes(int64(tr.NumRecords()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Evaluate(tr, topo, params, Eval{
					Placement: placement, ElemBytes: 4, Reduces: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
