package netsim

import (
	"math"
	"testing"

	"binetrees/internal/coll"
	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

// referenceEvaluate is the seed repository's Evaluate, verbatim: per-message
// floating-point accumulation of link loads, received volumes and byte
// totals. It anchors the profile/derive refactor against the original
// semantics non-circularly — Evaluate and EvaluateSizes share their
// arithmetic, so testing them against each other alone could not detect the
// pair drifting together.
func referenceEvaluate(tr *fabric.Trace, topo topology.Topology, p Params, ev Eval) Result {
	links := topo.Links()
	loads := make([]float64, len(links))
	var res Result
	for _, step := range tr.Steps() {
		if len(step) == 0 {
			continue
		}
		res.Steps++
		for i := range loads {
			loads[i] = 0
		}
		alpha := 0.0
		var maxRecv float64
		recvPer := map[int]float64{}
		sendCnt := map[int]int{}
		maxMsgs := 0
		for _, m := range step {
			src, dst := ev.Placement[m.From], ev.Placement[m.To]
			bytes := float64(m.Elems) * ev.ElemBytes
			res.TotalBytes += bytes
			res.Messages++
			route := topo.Route(src, dst)
			a := p.AlphaLocal
			hops := 0
			for _, id := range route {
				loads[id] += bytes
				if links[id].Kind == topology.Global {
					a = p.AlphaGlobal
					res.GlobalBytes += bytes
					hops++
				}
			}
			if hops > 1 {
				a += float64(hops-1) * p.PerHopLatency
			}
			if a > alpha {
				alpha = a
			}
			if ev.Reduces {
				recvPer[m.To] += bytes
				if recvPer[m.To] > maxRecv {
					maxRecv = recvPer[m.To]
				}
			}
			sendCnt[m.From]++
			if sendCnt[m.From] > maxMsgs {
				maxMsgs = sendCnt[m.From]
			}
		}
		worst := 0.0
		for i, load := range loads {
			if load == 0 {
				continue
			}
			if t := load / links[i].BW; t > worst {
				worst = t
			}
		}
		stepTime := alpha + worst
		if maxMsgs > 1 {
			stepTime += float64(maxMsgs-1) * p.MsgOverhead
		}
		if ev.Reduces && maxRecv > 0 {
			stepTime += maxRecv * p.Gamma * (1 - ev.Overlap)
		}
		res.Time += stepTime
	}
	if ev.CopyBytes > 0 && p.MemBW > 0 {
		res.Time += ev.CopyBytes / p.MemBW
	}
	return res
}

// TestEvaluateMatchesSeedReference pins the refactored evaluator to the
// seed's per-message replay. At dyadic element scales — every scale the flat
// sweeps use: power-of-two sizes over power-of-two rank counts — each
// per-message product is exact, so the integer-accumulating profile must
// reproduce the reference bit for bit. At non-dyadic scales (torus
// recordings) the two accumulation orders legitimately differ: the reference
// accumulates one rounding per message (error up to ~messages·ε relative),
// the profile rounds once per quantity — the gap must stay within that
// accumulation bound, orders of magnitude below anything a rendered
// artifact can observe.
func TestEvaluateMatchesSeedReference(t *testing.T) {
	const p = 16
	topos := testTopologies(t, p)
	params := testParams()
	params.PerHopLatency = 3e-7
	closeTo := func(a, b float64, msgs int) bool {
		if a == b {
			return true
		}
		tol := float64(msgs) * 4 * 2.22e-16 * math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= tol
	}
	for _, algo := range coll.Registry() {
		tr := algoTrace(t, algo, p)
		for name, topo := range topos {
			for _, tc := range []struct {
				elemBytes float64
				dyadic    bool
			}{
				{0.25, true}, {4, true}, {1 << 16, true},
				{1024.0 / 48.0, false}, {1e6 / 384.0, false}, {7.3, false},
			} {
				ev := Eval{
					Placement: identity(p),
					ElemBytes: tc.elemBytes,
					Reduces:   algo.Coll.Reduces(),
					Overlap:   algo.Overlap,
					CopyBytes: algo.CopyFactor * tc.elemBytes * p,
				}
				want := referenceEvaluate(tr, topo, params, ev)
				got, err := Evaluate(tr, topo, params, ev)
				if err != nil {
					t.Fatalf("%v/%s on %s: %v", algo.Coll, algo.Name, name, err)
				}
				if got.Steps != want.Steps || got.Messages != want.Messages {
					t.Fatalf("%v/%s on %s: counts %+v, reference %+v", algo.Coll, algo.Name, name, got, want)
				}
				if tc.dyadic {
					if got != want {
						t.Fatalf("%v/%s on %s, dyadic elemBytes=%v:\n     got %+v\nseed ref %+v",
							algo.Coll, algo.Name, name, tc.elemBytes, got, want)
					}
				} else if !closeTo(got.Time, want.Time, want.Messages) || !closeTo(got.GlobalBytes, want.GlobalBytes, want.Messages) || !closeTo(got.TotalBytes, want.TotalBytes, want.Messages) {
					t.Fatalf("%v/%s on %s, elemBytes=%v: drift beyond ulps:\n     got %+v\nseed ref %+v",
						algo.Coll, algo.Name, name, tc.elemBytes, got, want)
				}
			}
		}
	}
}
