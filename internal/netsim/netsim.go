// Package netsim replays recorded communication traces (fabric.Trace)
// against topology models to estimate completion time and to account
// global-link traffic — the substitute for the paper's wall-clock
// measurements on LUMI, Leonardo, MareNostrum 5 and Fugaku.
//
// The model is LogGP-flavoured with link contention: messages that share a
// step are concurrent; each link serializes the bytes routed through it; the
// step's duration is the worst latency plus the worst per-sender message
// overhead plus the most-loaded link's transfer time; steps are summed.
// Because every message's size in these collectives is exactly linear in the
// block size, a trace recorded at unit block granularity can be rescaled to
// any vector size without re-running the collective (validated by
// TestTraceScalingExact).
package netsim

import (
	"fmt"

	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

// Params are the machine constants of the cost model.
type Params struct {
	// AlphaLocal and AlphaGlobal are per-step base latencies (seconds)
	// for intra-group and inter-group messages; global links are longer
	// and slower to start on (Sec. 1 of the paper).
	AlphaLocal, AlphaGlobal float64
	// PerHopLatency is added per traversed link beyond injection/ejection
	// (relevant for tori).
	PerHopLatency float64
	// MsgOverhead is the sender-side cost of each additional message
	// within a step (block-by-block transmissions pay it).
	MsgOverhead float64
	// Gamma is the per-byte reduction compute cost (seconds/byte).
	Gamma float64
	// MemBW is the local copy bandwidth (bytes/s) charged for
	// permute-strategy buffer shuffles.
	MemBW float64
}

// Eval describes one evaluation of a recorded trace.
type Eval struct {
	// Placement maps rank → node.
	Placement []int
	// ElemBytes scales every recorded element to bytes: evaluating a
	// trace recorded with b₀ blocks of one element at vector size n bytes
	// uses ElemBytes = n / (number of recorded elements per vector).
	ElemBytes float64
	// Reduces marks collectives that fold incoming data (reduce,
	// reduce-scatter, allreduce): received bytes are charged Gamma.
	Reduces bool
	// Overlap in [0,1] discounts reduction compute that hides behind
	// communication (segmented/block-by-block variants overlap well).
	Overlap float64
	// CopyBytes charges extra local data movement (permute strategies),
	// already scaled to bytes.
	CopyBytes float64
}

// Result summarizes one evaluation.
type Result struct {
	// Time is the modelled completion time in seconds.
	Time float64
	// GlobalBytes is the total traffic crossing global links (the
	// paper's headline metric); for tori it is byte·hops.
	GlobalBytes float64
	// TotalBytes is the total payload volume sent by all ranks.
	TotalBytes float64
	// Steps is the number of synchronous steps.
	Steps int
	// Messages is the total message count.
	Messages int
}

// Evaluate replays the trace on the topology.
func Evaluate(tr *fabric.Trace, topo topology.Topology, p Params, ev Eval) (Result, error) {
	if len(ev.Placement) < tr.P {
		return Result{}, fmt.Errorf("netsim: placement covers %d of %d ranks", len(ev.Placement), tr.P)
	}
	links := topo.Links()
	loads := make([]float64, len(links))
	var res Result
	for _, step := range tr.Steps() {
		if len(step) == 0 {
			continue
		}
		res.Steps++
		for i := range loads {
			loads[i] = 0
		}
		alpha := 0.0
		var maxRecv float64
		recvPer := map[int]float64{}
		sendCnt := map[int]int{}
		maxMsgs := 0
		for _, m := range step {
			src, dst := ev.Placement[m.From], ev.Placement[m.To]
			bytes := float64(m.Elems) * ev.ElemBytes
			res.TotalBytes += bytes
			res.Messages++
			route := topo.Route(src, dst)
			a := p.AlphaLocal
			hops := 0
			for _, id := range route {
				loads[id] += bytes
				if links[id].Kind == topology.Global {
					a = p.AlphaGlobal
					res.GlobalBytes += bytes
					hops++
				}
			}
			if hops > 1 {
				a += float64(hops-1) * p.PerHopLatency
			}
			if a > alpha {
				alpha = a
			}
			if ev.Reduces {
				recvPer[m.To] += bytes
				if recvPer[m.To] > maxRecv {
					maxRecv = recvPer[m.To]
				}
			}
			sendCnt[m.From]++
			if sendCnt[m.From] > maxMsgs {
				maxMsgs = sendCnt[m.From]
			}
		}
		worst := 0.0
		for i, load := range loads {
			if load == 0 {
				continue
			}
			if t := load / links[i].BW; t > worst {
				worst = t
			}
		}
		stepTime := alpha + worst
		if maxMsgs > 1 {
			stepTime += float64(maxMsgs-1) * p.MsgOverhead
		}
		if ev.Reduces && maxRecv > 0 {
			stepTime += maxRecv * p.Gamma * (1 - ev.Overlap)
		}
		res.Time += stepTime
	}
	if ev.CopyBytes > 0 && p.MemBW > 0 {
		res.Time += ev.CopyBytes / p.MemBW
	}
	return res, nil
}

// GlobalTraffic is the traffic-only fast path used by the Fig. 5 allocation
// study: it returns the bytes crossing group boundaries (unit element size)
// given a rank → group map, with no link model at all.
func GlobalTraffic(tr *fabric.Trace, groupOf []int) (global, total int64) {
	for _, m := range tr.Records {
		total += int64(m.Elems)
		if groupOf[m.From] != groupOf[m.To] {
			global += int64(m.Elems)
		}
	}
	return global, total
}
