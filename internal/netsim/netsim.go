// Package netsim replays recorded communication traces (fabric.Trace)
// against topology models to estimate completion time and to account
// global-link traffic — the substitute for the paper's wall-clock
// measurements on LUMI, Leonardo, MareNostrum 5 and Fugaku.
//
// The model is LogGP-flavoured with link contention: messages that share a
// step are concurrent; each link serializes the bytes routed through it; the
// step's duration is the worst latency plus the worst per-sender message
// overhead plus the most-loaded link's transfer time; steps are summed.
// Because every message's size in these collectives is exactly linear in the
// block size, a trace recorded at unit block granularity can be rescaled to
// any vector size without re-running the collective (validated by
// TestTraceScalingExact).
//
// The replay is allocation-free per message: traces are iterated straight
// off their columnar step index, routes come from the topology instance's
// own memoized cache — shared across every evaluation cell replaying
// against it, and living exactly as long as it (see topology.RouteCache) —
// and the per-step aggregates use dense generation-stamped scratch slices
// reused across steps instead of maps.
package netsim

import (
	"fmt"

	"binetrees/internal/fabric"
	"binetrees/internal/topology"
)

// Params are the machine constants of the cost model.
type Params struct {
	// AlphaLocal and AlphaGlobal are per-step base latencies (seconds)
	// for intra-group and inter-group messages; global links are longer
	// and slower to start on (Sec. 1 of the paper).
	AlphaLocal, AlphaGlobal float64
	// PerHopLatency is added per traversed link beyond injection/ejection
	// (relevant for tori).
	PerHopLatency float64
	// MsgOverhead is the sender-side cost of each additional message
	// within a step (block-by-block transmissions pay it).
	MsgOverhead float64
	// Gamma is the per-byte reduction compute cost (seconds/byte).
	Gamma float64
	// MemBW is the local copy bandwidth (bytes/s) charged for
	// permute-strategy buffer shuffles.
	MemBW float64
}

// Eval describes one evaluation of a recorded trace.
type Eval struct {
	// Placement maps rank → node.
	Placement []int
	// ElemBytes scales every recorded element to bytes: evaluating a
	// trace recorded with b₀ blocks of one element at vector size n bytes
	// uses ElemBytes = n / (number of recorded elements per vector).
	ElemBytes float64
	// Reduces marks collectives that fold incoming data (reduce,
	// reduce-scatter, allreduce): received bytes are charged Gamma.
	Reduces bool
	// Overlap in [0,1] discounts reduction compute that hides behind
	// communication (segmented/block-by-block variants overlap well).
	Overlap float64
	// CopyBytes charges extra local data movement (permute strategies),
	// already scaled to bytes.
	CopyBytes float64
	// CopyBytesAt optionally gives EvaluateSizes a per-size copy cost,
	// index-paired with its elemBytes argument (CopyBytes covers every
	// size otherwise). Evaluate ignores it.
	CopyBytesAt []float64
}

// Result summarizes one evaluation.
type Result struct {
	// Time is the modelled completion time in seconds.
	Time float64
	// GlobalBytes is the total traffic crossing global links (the
	// paper's headline metric); for tori it is byte·hops.
	GlobalBytes float64
	// TotalBytes is the total payload volume sent by all ranks.
	TotalBytes float64
	// Steps is the number of synchronous steps.
	Steps int
	// Messages is the total message count.
	Messages int
}

// loadClass is the heaviest per-step link load within one bandwidth class,
// in recorded elements. Loads in elems scale to any ElemBytes, and — because
// IEEE multiplication and division are correctly rounded, hence monotone —
// the most-loaded link of a class at unit scale stays the most loaded at
// every scale, so one (elems, bw) pair per class reproduces the per-link
// maximum exactly.
type loadClass struct {
	elems int64
	bw    float64
}

// stepProfile captures everything a trace step contributes to the cost model
// except the element scale: structural integer quantities plus the bandwidth
// classes of its link loads.
type stepProfile struct {
	// hasLocal records a message whose route crosses no global link;
	// maxHops is the most global links any message traverses. Together
	// they determine the step's base latency for any Params.
	hasLocal bool
	maxHops  int
	// maxMsgs is the most messages any single sender emits.
	maxMsgs int
	// maxRecvElems is the most elements any single rank receives (charged
	// Gamma when the collective reduces).
	maxRecvElems int64
	loads        []loadClass
}

// traceProfile is the element-scale-independent replay of a trace on a
// topology under a placement: one pass over routes and link loads from which
// every vector size's Result derives arithmetically.
type traceProfile struct {
	steps                   []stepProfile
	totalElems, globalElems int64
	messages                int
}

// profile replays the trace once, accumulating link loads and received
// volumes as exact integer element counts. The per-step aggregates —
// link loads, per-receiver volumes, per-sender message counts — live in
// dense scratch slices stamped with the step's generation, so advancing a
// step resets nothing and the whole replay allocates only the profile it
// returns.
func profile(tr *fabric.Trace, topo topology.Topology, ev Eval) (*traceProfile, error) {
	if len(ev.Placement) < tr.P {
		return nil, fmt.Errorf("netsim: placement covers %d of %d ranks", len(ev.Placement), tr.P)
	}
	links := topo.Links()
	routes := topo.Routes()
	// Generation-stamped scratch: entry i is live for the current step iff
	// its stamp equals the step's generation, so clearing between steps is
	// free and only touched entries are ever visited.
	loadVal := make([]int64, len(links))
	loadGen := make([]int32, len(links))
	touched := make([]int32, 0, 256) // link IDs loaded in the current step
	var recvVal []int64
	var recvGen []int32
	if ev.Reduces {
		recvVal = make([]int64, tr.P)
		recvGen = make([]int32, tr.P)
	}
	sendCnt := make([]int32, tr.P)
	sendGen := make([]int32, tr.P)

	numSteps := tr.NumSteps()
	pf := &traceProfile{}
	lastSrc, lastDst := -1, -1
	var route []int32
	for s := 0; s < numSteps; s++ {
		lo, hi := tr.StepBounds(s)
		if lo == hi {
			continue
		}
		gen := int32(s) + 1
		touched = touched[:0]
		sp := stepProfile{maxHops: -1}
		for i := lo; i < hi; i++ {
			from, to := tr.From(i), tr.To(i)
			src, dst := ev.Placement[from], ev.Placement[to]
			elems := int64(tr.Elems(i))
			pf.totalElems += elems
			pf.messages++
			// Consecutive records very often repeat a pair (sub-message
			// runs); skip even the cache lookup for those.
			if src != lastSrc || dst != lastDst {
				route = routes.Route(src, dst)
				lastSrc, lastDst = src, dst
			}
			hops := 0
			for _, id := range route {
				if loadGen[id] != gen {
					loadGen[id] = gen
					loadVal[id] = 0
					touched = append(touched, id)
				}
				loadVal[id] += elems
				if links[id].Kind == topology.Global {
					pf.globalElems += elems
					hops++
				}
			}
			if hops == 0 {
				sp.hasLocal = true
			}
			if hops > sp.maxHops {
				sp.maxHops = hops
			}
			if ev.Reduces {
				if recvGen[to] != gen {
					recvGen[to] = gen
					recvVal[to] = 0
				}
				recvVal[to] += elems
				if recvVal[to] > sp.maxRecvElems {
					sp.maxRecvElems = recvVal[to]
				}
			}
			if sendGen[from] != gen {
				sendGen[from] = gen
				sendCnt[from] = 0
			}
			sendCnt[from]++
			if int(sendCnt[from]) > sp.maxMsgs {
				sp.maxMsgs = int(sendCnt[from])
			}
		}
		// Collapse the per-link loads to one heaviest load per bandwidth
		// class; topologies have a handful of classes, so the per-size
		// derivation touches a few pairs instead of every link.
		for _, id := range touched {
			load := loadVal[id]
			if load == 0 {
				continue
			}
			found := false
			for ci := range sp.loads {
				if sp.loads[ci].bw == links[id].BW {
					if load > sp.loads[ci].elems {
						sp.loads[ci].elems = load
					}
					found = true
					break
				}
			}
			if !found {
				sp.loads = append(sp.loads, loadClass{elems: load, bw: links[id].BW})
			}
		}
		pf.steps = append(pf.steps, sp)
	}
	return pf, nil
}

// result derives one element scale's Result from the profile, mirroring the
// replaying evaluator's arithmetic step by step.
func (pf *traceProfile) result(p Params, ev Eval, elemBytes, copyBytes float64) Result {
	res := Result{
		Steps:       len(pf.steps),
		Messages:    pf.messages,
		TotalBytes:  float64(pf.totalElems) * elemBytes,
		GlobalBytes: float64(pf.globalElems) * elemBytes,
	}
	for _, sp := range pf.steps {
		alpha := 0.0
		if sp.hasLocal {
			alpha = p.AlphaLocal
		}
		if sp.maxHops >= 1 {
			a := p.AlphaGlobal
			if sp.maxHops > 1 {
				a += float64(sp.maxHops-1) * p.PerHopLatency
			}
			if a > alpha {
				alpha = a
			}
		}
		worst := 0.0
		for _, lc := range sp.loads {
			if t := float64(lc.elems) * elemBytes / lc.bw; t > worst {
				worst = t
			}
		}
		stepTime := alpha + worst
		if sp.maxMsgs > 1 {
			stepTime += float64(sp.maxMsgs-1) * p.MsgOverhead
		}
		if ev.Reduces && sp.maxRecvElems > 0 {
			stepTime += float64(sp.maxRecvElems) * elemBytes * p.Gamma * (1 - ev.Overlap)
		}
		res.Time += stepTime
	}
	if copyBytes > 0 && p.MemBW > 0 {
		res.Time += copyBytes / p.MemBW
	}
	return res
}

// Evaluate replays the trace on the topology.
func Evaluate(tr *fabric.Trace, topo topology.Topology, p Params, ev Eval) (Result, error) {
	pf, err := profile(tr, topo, ev)
	if err != nil {
		return Result{}, err
	}
	return pf.result(p, ev, ev.ElemBytes, ev.CopyBytes), nil
}

// EvaluateSizes evaluates one trace at every element scale of elemBytes in a
// single topology replay: the structural pass over routes and link loads
// runs once, and each size's Result is derived arithmetically — exactly the
// Result Evaluate returns for that scale, not an approximation, because the
// two share the profile and the derivation. Per-size copy costs come from
// ev.CopyBytesAt (index-paired with elemBytes) when set, ev.CopyBytes
// otherwise; ev.ElemBytes is ignored.
func EvaluateSizes(tr *fabric.Trace, topo topology.Topology, p Params, ev Eval, elemBytes []float64) ([]Result, error) {
	if ev.CopyBytesAt != nil && len(ev.CopyBytesAt) != len(elemBytes) {
		return nil, fmt.Errorf("netsim: %d copy costs for %d sizes", len(ev.CopyBytesAt), len(elemBytes))
	}
	pf, err := profile(tr, topo, ev)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(elemBytes))
	for i, eb := range elemBytes {
		copyBytes := ev.CopyBytes
		if ev.CopyBytesAt != nil {
			copyBytes = ev.CopyBytesAt[i]
		}
		out[i] = pf.result(p, ev, eb, copyBytes)
	}
	return out, nil
}

// GlobalTraffic is the traffic-only fast path used by the Fig. 5 allocation
// study: it returns the bytes crossing group boundaries (unit element size)
// given a rank → group map, with no link model at all.
func GlobalTraffic(tr *fabric.Trace, groupOf []int) (global, total int64) {
	n := tr.NumRecords()
	for i := 0; i < n; i++ {
		elems := int64(tr.Elems(i))
		total += elems
		if groupOf[tr.From(i)] != groupOf[tr.To(i)] {
			global += elems
		}
	}
	return global, total
}
