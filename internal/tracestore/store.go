// Package tracestore is a disk-backed, content-addressed store for recorded
// communication traces (fabric.Trace). A trace depends only on its schedule
// identity — (collective, algorithm, rank count, root), plus geometry for
// torus schedules — so the store keys each file by a hash of that identity
// together with the codec and schedule versions: repeated sweeps and CI runs
// load every schedule instead of re-executing it, and any change to the
// format or to an algorithm's schedule simply hashes to fresh addresses,
// leaving stale files unreferenced rather than wrongly reused.
//
// The store is tolerant by design: a missing, truncated or garbled file is a
// miss (counted, and the corrupt file evicted) — callers re-record and
// re-save, so a damaged cache directory can never fail or corrupt a sweep.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"binetrees/internal/fabric"
	"binetrees/internal/obs"
)

// Store-tier metrics in the process-wide obs registry; the lifetime Stats
// counters below remain the /statsz source, these add bytes and latency
// under the /metrics vocabulary.
var (
	obsLoadHits = obs.Default.Counter("binebench_tracestore_loads_total",
		"Trace store lookups, by result.", "result", "hit")
	obsLoadMisses = obs.Default.Counter("binebench_tracestore_loads_total",
		"Trace store lookups, by result.", "result", "miss")
	obsLoadSeconds = obs.Default.Histogram("binebench_tracestore_load_seconds",
		"Trace store load latency (open, read, decode).", nil)
	obsLoadBytes = obs.Default.Counter("binebench_tracestore_load_bytes_total",
		"Encoded bytes read from the trace store on hits.")
	obsSaves = obs.Default.Counter("binebench_tracestore_saves_total",
		"Traces written through to the store.")
	obsSaveSeconds = obs.Default.Histogram("binebench_tracestore_save_seconds",
		"Trace store save latency (encode, chmod, rename).", nil)
	obsSaveBytes = obs.Default.Counter("binebench_tracestore_save_bytes_total",
		"Encoded bytes written to the trace store.")
	obsEvictions = obs.Default.Counter("binebench_tracestore_corrupt_evictions_total",
		"Store files that failed to decode and were removed.")
)

// Key is the schedule identity a stored trace is addressed by. Fields are
// hashed, not parsed back; they only need to uniquely name the schedule.
type Key struct {
	// Kind separates key namespaces (e.g. "flat", "torus").
	Kind string
	// Collective and Algo name the schedule.
	Collective, Algo string
	// Shape is the geometry: the rank count for flat schedules, the torus
	// dims (and recorded element count) for torus ones.
	Shape string
	// Root is the collective's root rank.
	Root int
	// SchedVersion tags the generation of the schedule constructions;
	// callers bump it when an algorithm's schedule changes so stale traces
	// are never reused.
	SchedVersion int
}

// addr returns the content address: a hash over every identity field and the
// codec version.
func (k Key) addr() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("codec=%d|sched=%d|kind=%s|coll=%s|algo=%s|shape=%s|root=%d",
		fabric.CodecVersion, k.SchedVersion, k.Kind, k.Collective, k.Algo, k.Shape, k.Root)))
	return hex.EncodeToString(h[:16])
}

// Origin records how a stored trace was produced: synthesized from schedule
// math or recorded on the goroutine fabric. It is stamped in a sidecar file
// next to the trace — never inside the encoded trace or its content address
// — so stores written before provenance existed (or with a sidecar lost)
// stay warm and simply report OriginUnknown.
type Origin string

const (
	// OriginUnknown marks a trace with no sidecar (pre-provenance stores).
	OriginUnknown Origin = ""
	// OriginRecorded marks a trace captured from a goroutine-fabric run.
	OriginRecorded Origin = "recorded"
	// OriginSynthesized marks a trace emitted by internal/synth.
	OriginSynthesized Origin = "synthesized"
)

// Stats are the store's lifetime counters.
type Stats struct {
	// Hits and Misses count Load outcomes (a corrupt file counts as a miss).
	Hits, Misses uint64
	// Saves counts successfully written traces.
	Saves uint64
	// CorruptEvictions counts files that failed to decode and were removed.
	CorruptEvictions uint64
	// SaveSkips counts saves dropped while the store was degraded.
	SaveSkips uint64
	// Degraded reports the store is serving read-only after an environmental
	// write failure (see degrade.go); DegradedReason is the triggering error.
	Degraded       bool
	DegradedReason string
}

// Store is a directory of encoded traces. The zero value is a disabled
// store: every Load misses, every Save is dropped. Methods are safe for
// concurrent use.
type Store struct {
	dir string

	hits, misses, saves, corrupt atomic.Uint64

	// Degraded read-only mode (degrade.go): flipped by environmental write
	// failures, cleared by a successful recovery probe.
	saveSkips      atomic.Uint64
	degraded       atomic.Bool
	degradedReason atomic.Value // string: the error that degraded the store
	lastProbe      atomic.Int64 // unixnano of the last recovery probe
	probeEvery     atomic.Int64 // nanoseconds between recovery probes
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{dir: dir}
	s.probeEvery.Store(int64(5 * time.Second))
	return s, nil
}

// Enabled reports whether the store is backed by a directory.
func (s *Store) Enabled() bool { return s != nil && s.dir != "" }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.addr()+".trace")
}

// originPath is the provenance sidecar next to a trace file. The ".origin"
// suffix keeps it invisible to Prewarm's ".trace" filter, so provenance
// rides along without changing the store format or the content addresses.
func originPath(tracePath string) string { return tracePath + ".origin" }

// statFile fingerprints an open store file for Load's eviction compare. A
// package variable so tests can force the no-fingerprint fallback, which is
// otherwise unreachable on a healthy filesystem.
var statFile = (*os.File).Stat

// Load returns the stored trace for the key, or ok=false on any miss: no
// file, unreadable file, or a file that fails to decode (stale codec,
// truncation, corruption). Undecodable files are evicted so the slot is
// cleanly re-recorded and re-saved by the caller.
func (s *Store) Load(k Key) (tr *fabric.Trace, ok bool) {
	if !s.Enabled() {
		return nil, false
	}
	defer obsLoadSeconds.ObserveSince(time.Now())
	f, err := os.Open(s.path(k))
	if err != nil {
		s.misses.Add(1)
		obsLoadMisses.Inc()
		return nil, false
	}
	fi, statErr := statFile(f)
	// Read the whole file into an exactly sized buffer and decode in place:
	// full-scale traces run to hundreds of megabytes, and a growing
	// io.ReadAll buffer would copy them several times over.
	var raw []byte
	if statErr == nil {
		raw = make([]byte, fi.Size())
		_, err = io.ReadFull(f, raw)
	} else {
		raw, err = io.ReadAll(f)
	}
	f.Close()
	if err == nil {
		tr, err = fabric.DecodeTraceBytes(raw)
	}
	if err != nil {
		if statErr != nil {
			fi = nil // no fingerprint: evict unconditionally
		}
		s.evict(s.path(k), fi)
		s.corrupt.Add(1)
		obsEvictions.Inc()
		s.misses.Add(1)
		obsLoadMisses.Inc()
		return nil, false
	}
	s.hits.Add(1)
	obsLoadHits.Inc()
	obsLoadBytes.Add(uint64(len(raw)))
	return tr, true
}

// evict removes a damaged store file — but, given a fingerprint of the file
// that was actually read, only if the path still names that file: in a store
// shared across processes, a concurrent Save may have renamed a fresh valid
// trace into place. The stat-and-compare narrows that race to a vanishing
// window rather than eliminating it; losing the race merely deletes a trace
// the next run re-records and re-saves, never corrupts one. With no
// fingerprint (fi == nil) the removal is unconditional best-effort:
// leaving the file in place would re-read and re-count it as corrupt on
// every future run.
func (s *Store) evict(path string, fi os.FileInfo) {
	if fi != nil {
		cur, err := os.Stat(path)
		if err != nil || !os.SameFile(fi, cur) {
			return
		}
	}
	os.Remove(path)
	// The provenance sidecar describes the removed trace; an orphaned one
	// would mis-stamp whatever trace is re-saved under the address later.
	os.Remove(originPath(path))
}

// Save writes the trace under the key's content address, stamped with its
// origin. The trace write is atomic (temp file + rename), so concurrent
// savers and crashed runs leave either the complete trace or nothing; a
// Load can never observe a torn write as anything but a (self-evicting)
// corrupt file. The origin lands in a best-effort sidecar after the rename
// — provenance is advisory, never load-bearing, so a lost sidecar merely
// reads back as OriginUnknown.
// A degraded store (read-only dir, full disk — see degrade.go) skips the
// write entirely, counting it, and returns nil: the store is a regenerable
// cache tier, so an unwritable directory must never fail the caller. Each
// skip first gives the rate-limited recovery probe a chance to restore
// write-through mode.
func (s *Store) Save(k Key, tr *fabric.Trace, origin Origin) error {
	if !s.Enabled() {
		return nil
	}
	if s.degraded.Load() && !s.maybeProbe() {
		s.saveSkips.Add(1)
		obsSaveSkips.Inc()
		return nil
	}
	defer obsSaveSeconds.ObserveSince(time.Now())
	n, err := s.write(k, tr, origin)
	if err != nil {
		if degradingErr(err) {
			s.enterDegraded(err)
		}
		return err
	}
	s.saves.Add(1)
	obsSaves.Inc()
	obsSaveBytes.Add(uint64(n))
	return nil
}

// write performs Save's temp-file + rename sequence and returns the encoded
// byte count. Every step runs through the fault seam (degrade.go) so tests
// can fail any of them deterministically.
func (s *Store) write(k Key, tr *fabric.Trace, origin Origin) (int64, error) {
	var tmp *os.File
	if err := faulted(FaultCreateTemp, func() (err error) {
		tmp, err = os.CreateTemp(s.dir, "."+k.addr()+".tmp-*")
		return err
	}); err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	// One cleanup covers every failure below: whichever step fails, the temp
	// file must not outlive the call — a degraded shared directory must not
	// accumulate .tmp garbage on top of its real problem. The double Close
	// after a successful close is a harmless no-op error.
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	cw := &countingWriter{w: tmp}
	if err := faulted(FaultEncode, func() error { return fabric.EncodeTrace(cw, tr) }); err != nil {
		return 0, fmt.Errorf("tracestore: encoding %s: %w", k.addr(), err)
	}
	// CreateTemp opens the file 0600; a rename would carry that mode into
	// the store, so directories shared across users or service replicas
	// (and CI cache restores) would hold traces other readers cannot open.
	if err := faulted(FaultChmod, func() error { return tmp.Chmod(0o644) }); err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	if err := faulted(FaultClose, tmp.Close); err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	if err := faulted(FaultRename, func() error { return os.Rename(tmp.Name(), s.path(k)) }); err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	committed = true
	if origin != OriginUnknown {
		_ = os.WriteFile(originPath(s.path(k)), []byte(origin), 0o644)
	}
	return cw.n, nil
}

// countingWriter counts the encoded bytes flowing into a Save's temp file
// so the byte-volume counter reports real I/O, not an extra encode pass.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Origin reports how the stored trace for the key was produced:
// OriginSynthesized or OriginRecorded from its sidecar, OriginUnknown when
// no (or an unrecognized) sidecar exists — which is exactly the state of
// every store written before provenance stamping.
func (s *Store) Origin(k Key) Origin {
	if !s.Enabled() {
		return OriginUnknown
	}
	raw, err := os.ReadFile(originPath(s.path(k)))
	if err != nil {
		return OriginUnknown
	}
	switch o := Origin(strings.TrimSpace(string(raw))); o {
	case OriginRecorded, OriginSynthesized:
		return o
	}
	return OriginUnknown
}

// PrewarmStats summarizes one Prewarm pass over the store directory.
type PrewarmStats struct {
	// Files counts the trace files examined; Valid the ones that decoded
	// cleanly; Corrupt the ones that failed to decode and were evicted.
	Files, Valid, Corrupt int
	// FileBytes totals the encoded size of the valid files. MemBytes totals
	// their decoded columnar footprint (fabric.Trace.MemBytes) — what a
	// process resident-caching every stored trace would grow to.
	FileBytes, MemBytes int64
}

func (ps PrewarmStats) String() string {
	return fmt.Sprintf("trace store prewarm: %d files, %d valid (%.1f MiB encoded, %.1f MiB columnar), %d corrupt evicted",
		ps.Files, ps.Valid, float64(ps.FileBytes)/(1<<20), float64(ps.MemBytes)/(1<<20), ps.Corrupt)
}

// Prewarm decode-validates every trace file in the store directory: valid
// files are read in full (paging them into the OS cache so the first
// request-time Load runs warm) and undecodable ones are evicted, so a
// long-running server starts against a shared cache directory in a
// known-good state instead of discovering damage one request at a time.
// Temp files of in-flight Saves are not matched. Corrupt evictions count
// into the store's lifetime Stats; hit/miss counters are untouched.
func (s *Store) Prewarm() (PrewarmStats, error) {
	var ps PrewarmStats
	if !s.Enabled() {
		return ps, nil
	}
	// ReadDir, not filepath.Glob: a store path containing glob
	// metacharacters ('[', '?', '*') would corrupt the pattern.
	var entries []os.DirEntry
	if err := faulted(FaultReadDir, func() (err error) {
		entries, err = os.ReadDir(s.dir)
		return err
	}); err != nil {
		// An unreadable directory is the same environmental class as an
		// unwritable one: degrade instead of rediscovering the failure on
		// every write-behind save.
		if degradingErr(err) {
			s.enterDegraded(err)
		}
		return ps, fmt.Errorf("tracestore: %w", err)
	}
	for _, entry := range entries {
		if entry.IsDir() || !strings.HasSuffix(entry.Name(), ".trace") {
			continue
		}
		path := filepath.Join(s.dir, entry.Name())
		f, err := os.Open(path)
		if err != nil {
			continue // vanished under a concurrent eviction: nothing to validate
		}
		ps.Files++
		fi, statErr := statFile(f)
		var raw []byte
		if statErr == nil {
			raw = make([]byte, fi.Size())
			_, err = io.ReadFull(f, raw)
		} else {
			raw, err = io.ReadAll(f)
		}
		f.Close()
		var tr *fabric.Trace
		if err == nil {
			tr, err = fabric.DecodeTraceBytes(raw)
		}
		if err != nil {
			if statErr != nil {
				fi = nil
			}
			s.evict(path, fi)
			s.corrupt.Add(1)
			obsEvictions.Inc()
			ps.Corrupt++
			continue
		}
		ps.Valid++
		ps.FileBytes += int64(len(raw))
		ps.MemBytes += tr.MemBytes()
	}
	return ps, nil
}

// Stats snapshots the lifetime counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	degraded, reason := s.Degraded()
	return Stats{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Saves:            s.saves.Load(),
		CorruptEvictions: s.corrupt.Load(),
		SaveSkips:        s.saveSkips.Load(),
		Degraded:         degraded,
		DegradedReason:   reason,
	}
}
