// Package tracestore is a disk-backed, content-addressed store for recorded
// communication traces (fabric.Trace). A trace depends only on its schedule
// identity — (collective, algorithm, rank count, root), plus geometry for
// torus schedules — so the store keys each file by a hash of that identity
// together with the codec and schedule versions: repeated sweeps and CI runs
// load every schedule instead of re-executing it, and any change to the
// format or to an algorithm's schedule simply hashes to fresh addresses,
// leaving stale files unreferenced rather than wrongly reused.
//
// The store is tolerant by design: a missing, truncated or garbled file is a
// miss (counted, and the corrupt file evicted) — callers re-record and
// re-save, so a damaged cache directory can never fail or corrupt a sweep.
package tracestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"binetrees/internal/fabric"
)

// Key is the schedule identity a stored trace is addressed by. Fields are
// hashed, not parsed back; they only need to uniquely name the schedule.
type Key struct {
	// Kind separates key namespaces (e.g. "flat", "torus").
	Kind string
	// Collective and Algo name the schedule.
	Collective, Algo string
	// Shape is the geometry: the rank count for flat schedules, the torus
	// dims (and recorded element count) for torus ones.
	Shape string
	// Root is the collective's root rank.
	Root int
	// SchedVersion tags the generation of the schedule constructions;
	// callers bump it when an algorithm's schedule changes so stale traces
	// are never reused.
	SchedVersion int
}

// addr returns the content address: a hash over every identity field and the
// codec version.
func (k Key) addr() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("codec=%d|sched=%d|kind=%s|coll=%s|algo=%s|shape=%s|root=%d",
		fabric.CodecVersion, k.SchedVersion, k.Kind, k.Collective, k.Algo, k.Shape, k.Root)))
	return hex.EncodeToString(h[:16])
}

// Stats are the store's lifetime counters.
type Stats struct {
	// Hits and Misses count Load outcomes (a corrupt file counts as a miss).
	Hits, Misses uint64
	// Saves counts successfully written traces.
	Saves uint64
	// CorruptEvictions counts files that failed to decode and were removed.
	CorruptEvictions uint64
}

// Store is a directory of encoded traces. The zero value is a disabled
// store: every Load misses, every Save is dropped. Methods are safe for
// concurrent use.
type Store struct {
	dir string

	hits, misses, saves, corrupt atomic.Uint64
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Enabled reports whether the store is backed by a directory.
func (s *Store) Enabled() bool { return s != nil && s.dir != "" }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.addr()+".trace")
}

// Load returns the stored trace for the key, or ok=false on any miss: no
// file, unreadable file, or a file that fails to decode (stale codec,
// truncation, corruption). Undecodable files are evicted so the slot is
// cleanly re-recorded and re-saved by the caller.
func (s *Store) Load(k Key) (tr *fabric.Trace, ok bool) {
	if !s.Enabled() {
		return nil, false
	}
	f, err := os.Open(s.path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	fi, statErr := f.Stat()
	// Read the whole file into an exactly sized buffer and decode in place:
	// full-scale traces run to hundreds of megabytes, and a growing
	// io.ReadAll buffer would copy them several times over.
	var raw []byte
	if statErr == nil {
		raw = make([]byte, fi.Size())
		_, err = io.ReadFull(f, raw)
	} else {
		raw, err = io.ReadAll(f)
	}
	f.Close()
	if err == nil {
		tr, err = fabric.DecodeTraceBytes(raw)
	}
	if err != nil {
		// Evict the damaged file — but only if the path still names the
		// file we read: in a store shared across processes, a concurrent
		// Save may have renamed a fresh valid trace into place. The
		// stat-and-compare narrows that race to a vanishing window rather
		// than eliminating it; losing the race merely deletes a trace the
		// next run re-records and re-saves, never corrupts one.
		if cur, err := os.Stat(s.path(k)); statErr == nil && err == nil && os.SameFile(fi, cur) {
			os.Remove(s.path(k))
		}
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return tr, true
}

// Save writes the trace under the key's content address. The write is
// atomic (temp file + rename), so concurrent savers and crashed runs leave
// either the complete trace or nothing; a Load can never observe a torn
// write as anything but a (self-evicting) corrupt file.
func (s *Store) Save(k Key, tr *fabric.Trace) error {
	if !s.Enabled() {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "."+k.addr()+".tmp-*")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := fabric.EncodeTrace(tmp, tr); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tracestore: encoding %s: %w", k.addr(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracestore: %w", err)
	}
	s.saves.Add(1)
	return nil
}

// Stats snapshots the lifetime counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Saves:            s.saves.Load(),
		CorruptEvictions: s.corrupt.Load(),
	}
}
