package tracestore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"binetrees/internal/fabric"
)

func testTrace(p, seed int) *fabric.Trace {
	var recs []fabric.Record
	for i := 0; i < 10+seed; i++ {
		recs = append(recs, fabric.Record{
			From: i % p, To: (i + 1 + seed) % p, Step: i / 3, Sub: i % 2, Elems: 1 + i*seed,
		})
	}
	return fabric.NewTrace(p, recs)
}

func testKey(algo string, p int) Key {
	return Key{Kind: "flat", Collective: "allreduce", Algo: algo, Shape: "16", Root: 0, SchedVersion: p}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey("ring", 1), testKey("swing", 1)
	t1, t2 := testTrace(8, 1), testTrace(16, 2)
	if _, ok := s.Load(k1); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Save(k1, t1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(k2, t2); err != nil {
		t.Fatal(err)
	}
	got1, ok1 := s.Load(k1)
	got2, ok2 := s.Load(k2)
	if !ok1 || !ok2 {
		t.Fatal("saved traces not found")
	}
	if !reflect.DeepEqual(got1, t1) || !reflect.DeepEqual(got2, t2) {
		t.Fatal("loaded traces differ from saved ones")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Saves != 2 || st.CorruptEvictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreKeyIdentity(t *testing.T) {
	// Every identity field — including the schedule version — must change
	// the content address.
	base := Key{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1}
	variants := []Key{
		{Kind: "torus", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "bcast", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "swing", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "32", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 1, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 2},
	}
	seen := map[string]bool{base.addr(): true}
	for i, k := range variants {
		if seen[k.addr()] {
			t.Fatalf("variant %d collides: %+v", i, k)
		}
		seen[k.addr()] = true
	}
	if base.addr() != (Key{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", SchedVersion: 1}).addr() {
		t.Fatal("identical keys hash differently")
	}
}

func TestStoreEvictsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("ring", 1)
	if err := s.Save(k, testTrace(8, 1)); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	// Truncate the stored file mid-payload: Load must treat it as a miss
	// and remove it so the slot can be re-recorded.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); ok {
		t.Fatal("corrupt file loaded")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt file not evicted")
	}
	st := s.Stats()
	if st.CorruptEvictions != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The slot re-saves and loads cleanly afterwards.
	if err := s.Save(k, testTrace(8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); !ok {
		t.Fatal("re-saved trace not found")
	}
}

func TestDisabledStore(t *testing.T) {
	// nil and zero stores are inert: misses and dropped saves, no errors.
	for _, s := range []*Store{nil, {}} {
		if s.Enabled() {
			t.Fatal("disabled store claims enabled")
		}
		if _, ok := s.Load(testKey("ring", 1)); ok {
			t.Fatal("disabled store hit")
		}
		if err := s.Save(testKey("ring", 1), testTrace(8, 1)); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st != (Stats{}) {
			t.Fatalf("stats %+v", st)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
