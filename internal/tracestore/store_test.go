package tracestore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"binetrees/internal/fabric"
)

func testTrace(p, seed int) *fabric.Trace {
	var recs []fabric.Record
	for i := 0; i < 10+seed; i++ {
		recs = append(recs, fabric.Record{
			From: i % p, To: (i + 1 + seed) % p, Step: i / 3, Sub: i % 2, Elems: 1 + i*seed,
		})
	}
	return fabric.NewTrace(p, recs)
}

func testKey(algo string, p int) Key {
	return Key{Kind: "flat", Collective: "allreduce", Algo: algo, Shape: "16", Root: 0, SchedVersion: p}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey("ring", 1), testKey("swing", 1)
	t1, t2 := testTrace(8, 1), testTrace(16, 2)
	if _, ok := s.Load(k1); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Save(k1, t1, OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(k2, t2, OriginRecorded); err != nil {
		t.Fatal(err)
	}
	got1, ok1 := s.Load(k1)
	got2, ok2 := s.Load(k2)
	if !ok1 || !ok2 {
		t.Fatal("saved traces not found")
	}
	if !reflect.DeepEqual(got1, t1) || !reflect.DeepEqual(got2, t2) {
		t.Fatal("loaded traces differ from saved ones")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Saves != 2 || st.CorruptEvictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreKeyIdentity(t *testing.T) {
	// Every identity field — including the schedule version — must change
	// the content address.
	base := Key{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1}
	variants := []Key{
		{Kind: "torus", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "bcast", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "swing", Shape: "16", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "32", Root: 0, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 1, SchedVersion: 1},
		{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", Root: 0, SchedVersion: 2},
	}
	seen := map[string]bool{base.addr(): true}
	for i, k := range variants {
		if seen[k.addr()] {
			t.Fatalf("variant %d collides: %+v", i, k)
		}
		seen[k.addr()] = true
	}
	if base.addr() != (Key{Kind: "flat", Collective: "allreduce", Algo: "ring", Shape: "16", SchedVersion: 1}).addr() {
		t.Fatal("identical keys hash differently")
	}
}

func TestStoreEvictsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("ring", 1)
	if err := s.Save(k, testTrace(8, 1), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	// Truncate the stored file mid-payload: Load must treat it as a miss
	// and remove it so the slot can be re-recorded.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); ok {
		t.Fatal("corrupt file loaded")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt file not evicted")
	}
	st := s.Stats()
	if st.CorruptEvictions != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The slot re-saves and loads cleanly afterwards.
	if err := s.Save(k, testTrace(8, 1), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); !ok {
		t.Fatal("re-saved trace not found")
	}
}

// TestStoreEvictsCorruptFileWithoutFingerprint is the regression test for
// the silent non-eviction bug: when the open-time Stat fails there is no
// fingerprint to compare, and Load used to leave the garbled file in place —
// re-read and re-counted as corrupt on every future run. It must now fall
// back to a best-effort unconditional remove.
func TestStoreEvictsCorruptFileWithoutFingerprint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("ring", 1)
	if err := s.Save(k, testTrace(8, 1), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("BTRCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	orig := statFile
	statFile = func(*os.File) (os.FileInfo, error) { return nil, errors.New("stat disabled") }
	defer func() { statFile = orig }()
	if _, ok := s.Load(k); ok {
		t.Fatal("corrupt file loaded")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt file not evicted when Stat failed")
	}
	if st := s.Stats(); st.CorruptEvictions != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// A healthy file still loads through the ReadAll fallback path.
	if err := s.Save(k, testTrace(8, 1), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); !ok {
		t.Fatal("valid trace not loaded without a fingerprint")
	}
}

// TestStoreSaveFileMode pins the mode of stored traces: CreateTemp's 0600
// must not survive the rename, or store directories shared across users and
// service replicas hold files other readers cannot open.
func TestStoreSaveFileMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testKey("ring", 1), testTrace(8, 1), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != 0o644 {
		t.Fatalf("stored trace mode %o, want 644", got)
	}
}

// TestStoreLoadEvictSaveRace hammers the Load-evicts / Save-renames window
// of a shared store directory: one goroutine garbles the key's file directly
// and Loads (triggering evictions), another Saves the valid trace and Loads.
// The invariants — every successful Load yields the valid trace, and once
// the corrupter stops a single Save always makes the key loadable (no valid
// trace is ever lost to a stale eviction) — must hold with -race clean.
func TestStoreLoadEvictSaveRace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("ring", 1)
	valid := testTrace(8, 1)
	path := s.path(k)
	const iters = 300
	var wg sync.WaitGroup
	wg.Add(2)
	errc := make(chan error, 2*iters)
	go func() { // corrupter
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := os.WriteFile(path, []byte("BTRCgarbage"), 0o644); err != nil {
				errc <- err
				return
			}
			if tr, ok := s.Load(k); ok && !reflect.DeepEqual(tr, valid) {
				errc <- errors.New("Load returned a trace that is neither valid nor a miss")
				return
			}
		}
	}()
	go func() { // saver
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := s.Save(k, valid, OriginRecorded); err != nil {
				errc <- err
				return
			}
			if tr, ok := s.Load(k); ok && !reflect.DeepEqual(tr, valid) {
				errc <- errors.New("Load returned a garbled trace")
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Quiescent recovery: with the corrupter gone, one Save must stick.
	if err := s.Save(k, valid, OriginRecorded); err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Load(k)
	if !ok || !reflect.DeepEqual(tr, valid) {
		t.Fatal("valid trace lost after the race settled")
	}
}

// TestStorePrewarm covers the startup validation pass: valid files are
// counted with their encoded and columnar sizes, corrupt ones are evicted,
// and in-flight temp files are ignored.
func TestStorePrewarm(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := testTrace(8, 1), testTrace(16, 2)
	if err := s.Save(testKey("ring", 1), t1, OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(testKey("swing", 1), t2, OriginRecorded); err != nil {
		t.Fatal(err)
	}
	badKey := testKey("bruck", 1)
	if err := s.Save(badKey, testTrace(8, 3), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(badKey), []byte("BTRCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".abc.tmp-1"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	ps, err := s.Prewarm()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Files != 3 || ps.Valid != 2 || ps.Corrupt != 1 {
		t.Fatalf("prewarm stats %+v", ps)
	}
	if ps.FileBytes <= 0 || ps.MemBytes != t1.MemBytes()+t2.MemBytes() {
		t.Fatalf("prewarm sizes %+v (want MemBytes %d)", ps, t1.MemBytes()+t2.MemBytes())
	}
	if _, err := os.Stat(s.path(badKey)); !os.IsNotExist(err) {
		t.Fatal("prewarm did not evict the corrupt file")
	}
	if st := s.Stats(); st.CorruptEvictions != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The two valid traces still load.
	if _, ok := s.Load(testKey("ring", 1)); !ok {
		t.Fatal("valid trace missing after prewarm")
	}
	// A disabled store prewarms to nothing.
	var disabled *Store
	if ps, err := disabled.Prewarm(); err != nil || ps != (PrewarmStats{}) {
		t.Fatalf("disabled prewarm %+v err %v", ps, err)
	}
}

func TestDisabledStore(t *testing.T) {
	// nil and zero stores are inert: misses and dropped saves, no errors.
	for _, s := range []*Store{nil, {}} {
		if s.Enabled() {
			t.Fatal("disabled store claims enabled")
		}
		if _, ok := s.Load(testKey("ring", 1)); ok {
			t.Fatal("disabled store hit")
		}
		if err := s.Save(testKey("ring", 1), testTrace(8, 1), OriginRecorded); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st != (Stats{}) {
			t.Fatalf("stats %+v", st)
		}
	}
}

// TestStoreOriginSidecar covers provenance stamping: origins round-trip
// through the sidecar, eviction removes the sidecar with the trace, and a
// garbled sidecar degrades to OriginUnknown without touching the trace.
func TestStoreOriginSidecar(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kSynth, kRec := testKey("ring", 1), testKey("swing", 1)
	if err := s.Save(kSynth, testTrace(8, 1), OriginSynthesized); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(kRec, testTrace(8, 2), OriginRecorded); err != nil {
		t.Fatal(err)
	}
	if got := s.Origin(kSynth); got != OriginSynthesized {
		t.Fatalf("origin %q, want synthesized", got)
	}
	if got := s.Origin(kRec); got != OriginRecorded {
		t.Fatalf("origin %q, want recorded", got)
	}
	// Corrupting the trace evicts the sidecar along with it: the slot's
	// next save must not inherit stale provenance.
	if err := os.WriteFile(s.path(kSynth), []byte("BTRCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(kSynth); ok {
		t.Fatal("corrupt file loaded")
	}
	if _, err := os.Stat(originPath(s.path(kSynth))); !os.IsNotExist(err) {
		t.Fatal("sidecar survived its trace's eviction")
	}
	if got := s.Origin(kSynth); got != OriginUnknown {
		t.Fatalf("evicted slot reports origin %q", got)
	}
	// A garbled sidecar is advisory damage only: the trace still loads, the
	// origin reads unknown.
	if err := os.WriteFile(originPath(s.path(kRec)), []byte("teleported"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(kRec); !ok {
		t.Fatal("trace with a garbled sidecar did not load")
	}
	if got := s.Origin(kRec); got != OriginUnknown {
		t.Fatalf("garbled sidecar reports origin %q", got)
	}
}

// TestStoreOldFormatStaysWarm is the warm-compat gate for provenance (the
// PR 4-style old-store check): a store directory written before origin
// stamping existed — trace files under unchanged content addresses, no
// sidecars — must keep serving hits, reporting OriginUnknown.
func TestStoreOldFormatStaysWarm(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("ring", 1)
	tr := testTrace(8, 1)
	if err := s.Save(k, tr, OriginSynthesized); err != nil {
		t.Fatal(err)
	}
	// Strip every sidecar: the directory is now byte-identical to one
	// written by the pre-provenance Save (same codec, same addresses).
	sidecars, err := filepath.Glob(filepath.Join(dir, "*.origin"))
	if err != nil || len(sidecars) != 1 {
		t.Fatalf("sidecars %v err %v", sidecars, err)
	}
	for _, sc := range sidecars {
		if err := os.Remove(sc); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Load(k)
	if !ok {
		t.Fatal("old-format store went cold")
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("old-format store served a different trace")
	}
	if o := s.Origin(k); o != OriginUnknown {
		t.Fatalf("old-format store reports origin %q", o)
	}
	// Prewarm must not count or evict sidecar-less traces either.
	if ps, err := s.Prewarm(); err != nil || ps.Files != 1 || ps.Valid != 1 || ps.Corrupt != 0 {
		t.Fatalf("prewarm %+v err %v", ps, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
