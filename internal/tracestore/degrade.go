// Degraded read-only mode. The store is a write-behind cache tier: every
// byte it holds can be regenerated from schedule math or a fabric recording,
// so when the directory stops accepting writes — mounted read-only, disk
// full, permissions yanked — the correct response is to stop writing, not to
// stop serving. A Save or Prewarm failure whose cause is one of those
// environmental classes flips the store into degraded mode: subsequent saves
// are skipped (counted, not errored), a gauge and /statsz flag the state,
// and a rate-limited probe rewrites a scratch file until the directory
// recovers, at which point saves resume on their own.
//
// The fault hook is the deterministic test seam: permission failures are
// hard to stage for real (root ignores permission bits entirely), so tests
// inject the exact errno class per filesystem step instead.

package tracestore

import (
	"errors"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"binetrees/internal/obs"
)

var (
	obsDegraded = obs.Default.Gauge("binebench_tracestore_degraded",
		"1 while the store is in degraded read-only mode (writes skipped).")
	obsSaveSkips = obs.Default.Counter("binebench_tracestore_save_skips_total",
		"Saves dropped because the store was in degraded read-only mode.")
)

// FaultOp names one filesystem step of the store's write path; the fault
// hook intercepts steps by op to force a failure class deterministically.
type FaultOp string

const (
	FaultCreateTemp FaultOp = "create-temp" // Save: temp-file creation
	FaultEncode     FaultOp = "encode"      // Save: trace encode into the temp file
	FaultChmod      FaultOp = "chmod"       // Save: world-readable chmod
	FaultClose      FaultOp = "close"       // Save: temp-file close (write-back flush)
	FaultRename     FaultOp = "rename"      // Save: atomic rename into place
	FaultReadDir    FaultOp = "read-dir"    // Prewarm: store directory listing
	FaultProbe      FaultOp = "probe"       // recovery probe write cycle
)

// faultHook boxes the injected hook so an atomic.Value can hold (and clear)
// it without type panics.
type faultBox struct{ fn func(FaultOp) error }

var faultHook atomic.Value // faultBox

// SetFaultHook installs (or, with nil, removes) a test-only hook consulted
// before each store filesystem step: a non-nil return replaces the step's
// real execution with that error. Serving code never sets it.
func SetFaultHook(fn func(FaultOp) error) { faultHook.Store(faultBox{fn}) }

// faulted runs fn, unless the injected hook fails the op first.
func faulted(op FaultOp, fn func() error) error {
	if box, ok := faultHook.Load().(faultBox); ok && box.fn != nil {
		if err := box.fn(op); err != nil {
			return err
		}
	}
	return fn()
}

// degradingErr classifies failures that indicate the directory — not the
// individual write — is broken: read-only filesystem, no space or quota,
// permission denied. Anything else (a bad trace, a vanished temp file) stays
// a per-call error and does not flip the store.
func degradingErr(err error) bool {
	return errors.Is(err, fs.ErrPermission) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EACCES) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT)
}

// Degraded reports whether the store is in degraded read-only mode, and the
// cause that put it there.
func (s *Store) Degraded() (bool, string) {
	if s == nil || !s.degraded.Load() {
		return false, ""
	}
	reason, _ := s.degradedReason.Load().(string)
	return true, reason
}

// SetProbeInterval tunes how often a degraded store re-checks the directory
// for writability (default 5s). Tests drop it to zero so the probe runs on
// the next Save.
func (s *Store) SetProbeInterval(d time.Duration) { s.probeEvery.Store(int64(d)) }

// enterDegraded flips the store read-only, once: repeated failures while
// already degraded update nothing and log nothing.
func (s *Store) enterDegraded(cause error) {
	s.degradedReason.Store(cause.Error())
	if s.degraded.CompareAndSwap(false, true) {
		obsDegraded.Set(1)
		log.Printf("tracestore: %s: entering degraded read-only mode (%v); serving continues from memory/synthesis, probing for recovery every %s",
			s.dir, cause, time.Duration(s.probeEvery.Load()))
	}
}

// exitDegraded restores write-through mode, once.
func (s *Store) exitDegraded() {
	if s.degraded.CompareAndSwap(true, false) {
		obsDegraded.Set(0)
		log.Printf("tracestore: %s: directory writable again, leaving degraded mode", s.dir)
	}
}

// maybeProbe rate-limits recovery probes of a degraded store and reports
// whether the directory just recovered. At most one caller per interval runs
// the probe; everyone else keeps skipping saves.
func (s *Store) maybeProbe() bool {
	now := time.Now().UnixNano()
	last := s.lastProbe.Load()
	if last != 0 && now-last < s.probeEvery.Load() {
		return false
	}
	if !s.lastProbe.CompareAndSwap(last, now) {
		return false
	}
	if err := s.probe(); err != nil {
		return false
	}
	s.exitDegraded()
	return true
}

// probe exercises the full Save write cycle on a scratch name — create,
// write, chmod, close, rename — so recovery is only declared when the exact
// operations a Save needs all work again.
func (s *Store) probe() error {
	return faulted(FaultProbe, func() error {
		tmp, err := os.CreateTemp(s.dir, ".probe-*")
		if err != nil {
			return err
		}
		defer func() { os.Remove(tmp.Name()) }()
		if _, err := tmp.WriteString("probe"); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Chmod(0o644); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		dst := filepath.Join(s.dir, ".probe")
		if err := os.Rename(tmp.Name(), dst); err != nil {
			return err
		}
		return os.Remove(dst)
	})
}
