package tracestore

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
)

// withFaults installs a per-op fault table for the test and removes it on
// cleanup. Ops map to the error each should fail with; unlisted ops run for
// real. The table can be mutated mid-test (guarded by the returned setter)
// to stage failure-then-recovery sequences.
func withFaults(t *testing.T, faults map[FaultOp]error) {
	t.Helper()
	SetFaultHook(func(op FaultOp) error { return faults[op] })
	t.Cleanup(func() { SetFaultHook(nil) })
}

// tmpFiles lists leftover temp files in the store dir — Save failures must
// never leave any behind.
func tmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") || strings.Contains(e.Name(), ".probe-") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

// TestSaveFailureRemovesTempFile is the regression pin for the temp-file
// leak: whichever step of the Save sequence fails — encode, chmod, close or
// rename — the .tmp file is removed, so a misbehaving shared directory does
// not accumulate garbage on top of its real problem.
func TestSaveFailureRemovesTempFile(t *testing.T) {
	boom := errors.New("boom")
	for _, op := range []FaultOp{FaultEncode, FaultChmod, FaultClose, FaultRename} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			withFaults(t, map[FaultOp]error{op: boom})
			if err := s.Save(testKey("leak", 1), testTrace(4, 1), OriginRecorded); !errors.Is(err, boom) {
				t.Fatalf("Save with %s fault = %v, want boom", op, err)
			}
			if tmps := tmpFiles(t, dir); len(tmps) != 0 {
				t.Fatalf("Save with %s fault left temp files behind: %v", op, tmps)
			}
			// A generic failure is not environmental: the store must not
			// degrade over one bad write.
			if degraded, _ := s.Degraded(); degraded {
				t.Fatalf("store degraded on a generic %s error", op)
			}
		})
	}
}

// TestDegradedModeRoundTrip drives the full degradation lifecycle with
// injected faults: an EROFS save flips the store read-only (reads keep
// working, saves skip and count), and once the directory recovers the probe
// restores write-through mode on the next save.
func TestDegradedModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetProbeInterval(0) // probe on every degraded save: the test controls recovery via the fault table
	k, tr := testKey("degrade", 1), testTrace(4, 1)
	if err := s.Save(k, tr, OriginSynthesized); err != nil {
		t.Fatal(err)
	}

	// The directory "goes read-only": every write-path op fails with EROFS,
	// including the recovery probe.
	rofs := &os.PathError{Op: "open", Path: dir, Err: syscall.EROFS}
	faults := map[FaultOp]error{FaultCreateTemp: rofs, FaultProbe: rofs}
	SetFaultHook(func(op FaultOp) error { return faults[op] })
	t.Cleanup(func() { SetFaultHook(nil) })

	k2 := testKey("degrade", 2)
	if err := s.Save(k2, tr, OriginSynthesized); err == nil {
		t.Fatal("Save on a read-only dir returned nil before degrading")
	}
	degraded, reason := s.Degraded()
	if !degraded || !strings.Contains(reason, "read-only") {
		t.Fatalf("after EROFS save: degraded=%v reason=%q", degraded, reason)
	}

	// Degraded saves skip silently: no error, no file, counted.
	if err := s.Save(k2, tr, OriginSynthesized); err != nil {
		t.Fatalf("degraded Save = %v, want nil (skip)", err)
	}
	if _, ok := s.Load(k2); ok {
		t.Fatal("skipped save produced a file")
	}
	st := s.Stats()
	if !st.Degraded || st.SaveSkips == 0 || st.DegradedReason == "" {
		t.Fatalf("degraded stats: %+v", st)
	}
	// Reads are untouched: the pre-failure trace still loads.
	if _, ok := s.Load(k); !ok {
		t.Fatal("degraded store lost read access to an existing trace")
	}

	// The directory recovers; the next save probes, exits degraded mode, and
	// writes through again.
	delete(faults, FaultCreateTemp)
	delete(faults, FaultProbe)
	if err := s.Save(k2, tr, OriginSynthesized); err != nil {
		t.Fatalf("post-recovery Save = %v", err)
	}
	if degraded, _ := s.Degraded(); degraded {
		t.Fatal("store still degraded after a successful probe")
	}
	if _, ok := s.Load(k2); !ok {
		t.Fatal("post-recovery save did not land")
	}
	if tmps := tmpFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("probe left scratch files behind: %v", tmps)
	}
	if st := s.Stats(); st.Degraded || st.DegradedReason != "" {
		t.Fatalf("recovered stats still report degradation: %+v", st)
	}
}

// TestPrewarmDegradesOnPermissionFailure: an unreadable store directory is
// the same environmental class as an unwritable one — Prewarm reports the
// error and flips the store degraded instead of letting every later
// write-behind save rediscover it.
func TestPrewarmDegradesOnPermissionFailure(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	withFaults(t, map[FaultOp]error{
		FaultReadDir: &os.PathError{Op: "open", Path: s.dir, Err: syscall.EACCES},
	})
	if _, err := s.Prewarm(); err == nil {
		t.Fatal("Prewarm on an unreadable dir returned nil")
	}
	if degraded, reason := s.Degraded(); !degraded || reason == "" {
		t.Fatalf("store not degraded after EACCES prewarm: %v %q", degraded, reason)
	}
}

// TestDegradingErrClassification pins which failures flip the store: the
// environmental classes do, generic I/O noise does not.
func TestDegradingErrClassification(t *testing.T) {
	for _, err := range []error{syscall.EROFS, syscall.EACCES, syscall.ENOSPC, syscall.EDQUOT, os.ErrPermission} {
		if !degradingErr(&os.PathError{Op: "open", Path: "x", Err: err}) {
			t.Errorf("degradingErr(%v) = false, want true", err)
		}
	}
	for _, err := range []error{errors.New("boom"), syscall.EIO, os.ErrNotExist} {
		if degradingErr(err) {
			t.Errorf("degradingErr(%v) = true, want false", err)
		}
	}
}
