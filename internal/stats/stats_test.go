package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %f", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Error("empty")
	}
	if g := GeoMean([]float64{1, -1}); !math.IsNaN(g) {
		t.Error("negative input must yield NaN")
	}
	// Property: the geometric mean lies between min and max.
	f := func(raw []uint8) bool {
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r)+1)
		}
		if len(vals) == 0 {
			return true
		}
		g := GeoMean(vals)
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%f) = %f, want %f", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("interpolated median %f", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile")
	}
}

func TestBox(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	b := NewBox(vals)
	if b.N != 9 || b.Median != 5 {
		t.Fatalf("box %+v", b)
	}
	if b.WhiskHi == 100 {
		t.Error("outlier included in whisker")
	}
	if b.WhiskLo != 1 {
		t.Errorf("low whisker %f", b.WhiskLo)
	}
	if b.Mean < 15 {
		t.Errorf("mean %f should include the outlier", b.Mean)
	}
	if NewBox(nil).String() != "n=0" {
		t.Error("empty box string")
	}
	if len(b.String()) == 0 {
		t.Error("box string")
	}
}

func TestBoxRender(t *testing.T) {
	b := NewBox([]float64{10, 20, 30, 40, 50})
	row := b.Render(0, 60, 40)
	if len([]rune(row)) != 40 {
		t.Fatalf("width %d", len(row))
	}
	var hasM, hasBracket bool
	for _, r := range row {
		if r == 'M' {
			hasM = true
		}
		if r == '[' || r == ']' {
			hasBracket = true
		}
	}
	if !hasM || !hasBracket {
		t.Errorf("render %q", row)
	}
	if NewBox(nil).Render(0, 1, 20) != "                    " {
		t.Error("empty render")
	}
}

func TestWinLoss(t *testing.T) {
	candidate := []float64{1, 1, 2, 1}    // times
	baseline := []float64{2, 1.5, 1, 1.0} // candidate wins 2, loses 1, ties 1
	wl := NewWinLoss(candidate, baseline)
	if wl.Configs != 4 {
		t.Fatal("configs")
	}
	if math.Abs(wl.WinPct-50) > 1e-9 || math.Abs(wl.LossPct-25) > 1e-9 {
		t.Fatalf("win %f loss %f", wl.WinPct, wl.LossPct)
	}
	if wl.MaxGain != 100 {
		t.Errorf("max gain %f", wl.MaxGain)
	}
	if wl.MaxDrop != 100 {
		t.Errorf("max drop %f", wl.MaxDrop)
	}
	if wl.AvgGain <= 0 || wl.AvgGain > wl.MaxGain {
		t.Errorf("avg gain %f", wl.AvgGain)
	}
}
