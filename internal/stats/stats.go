// Package stats provides the summary statistics used throughout the
// experiment harness: geometric means for performance ratios (following the
// paper's benchmarking methodology, which cites Hoefler & Belli's "twelve
// ways"), and quartile boxplot summaries for the figure reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of strictly positive values; it is the
// correct average for ratios. It returns 0 for an empty input.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Max returns the maximum of vals, or 0 for an empty input.
func Max(vals []float64) float64 {
	out := 0.0
	for i, v := range vals {
		if i == 0 || v > out {
			out = v
		}
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of vals using linear
// interpolation; vals need not be sorted.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Box is a five-number boxplot summary with Tukey whiskers, matching the
// paper's Fig. 5 legend (smallest sample > Q1−1.5·IQR, largest sample <
// Q3+1.5·IQR).
type Box struct {
	N                int
	WhiskLo, WhiskHi float64
	Q1, Median, Q3   float64
	Mean             float64
}

// NewBox summarizes vals.
func NewBox(vals []float64) Box {
	b := Box{N: len(vals)}
	if len(vals) == 0 {
		return b
	}
	b.Q1 = Quantile(vals, 0.25)
	b.Median = Quantile(vals, 0.5)
	b.Q3 = Quantile(vals, 0.75)
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskLo, b.WhiskHi = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v >= loFence && v < b.WhiskLo {
			b.WhiskLo = v
		}
		if v <= hiFence && v > b.WhiskHi {
			b.WhiskHi = v
		}
	}
	b.Mean = sum / float64(len(vals))
	return b
}

// String renders the box as one compact line.
func (b Box) String() string {
	if b.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d whisk[%.1f,%.1f] q1=%.1f med=%.1f q3=%.1f mean=%.1f",
		b.N, b.WhiskLo, b.WhiskHi, b.Q1, b.Median, b.Q3, b.Mean)
}

// Render draws an ASCII boxplot of the summary on a [lo, hi] axis of the
// given width, e.g. `  |----[==M===]------|  `.
func (b Box) Render(lo, hi float64, width int) string {
	if b.N == 0 || width < 10 || hi <= lo {
		return strings.Repeat(" ", width)
	}
	col := func(v float64) int {
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := []rune(strings.Repeat(" ", width))
	for c := col(b.WhiskLo); c <= col(b.WhiskHi); c++ {
		row[c] = '-'
	}
	for c := col(b.Q1); c <= col(b.Q3); c++ {
		row[c] = '='
	}
	row[col(b.WhiskLo)] = '|'
	row[col(b.WhiskHi)] = '|'
	row[col(b.Q1)] = '['
	row[col(b.Q3)] = ']'
	row[col(b.Median)] = 'M'
	return string(row)
}

// WinLoss summarizes a set of head-to-head time comparisons the way the
// paper's Tables 3–5 do: the fraction of configurations each side wins
// (ties under 1% are neither), and the average (geometric mean) and maximum
// gain/drop in the won/lost configurations.
type WinLoss struct {
	Configs          int
	WinPct, LossPct  float64
	AvgGain, MaxGain float64 // performance gain where the candidate wins
	AvgDrop, MaxDrop float64 // performance drop where it loses
}

// NewWinLoss compares candidate times against baseline times (lower is
// better). Ratios within 1% count as ties, following the paper's treatment
// of "minimal differences (below 1%)".
func NewWinLoss(candidate, baseline []float64) WinLoss {
	wl := WinLoss{Configs: len(candidate)}
	var gains, drops []float64
	for i := range candidate {
		ratio := baseline[i] / candidate[i] // >1 means the candidate is faster
		switch {
		case ratio > 1.01:
			gains = append(gains, ratio-1)
		case ratio < 0.99:
			drops = append(drops, 1/ratio-1)
		}
	}
	if wl.Configs > 0 {
		wl.WinPct = 100 * float64(len(gains)) / float64(wl.Configs)
		wl.LossPct = 100 * float64(len(drops)) / float64(wl.Configs)
	}
	wl.AvgGain, wl.MaxGain = geoPct(gains), 100*Max(gains)
	wl.AvgDrop, wl.MaxDrop = geoPct(drops), 100*Max(drops)
	return wl
}

// geoPct is the geometric mean of (1+x) minus one, in percent — the paper's
// way of averaging improvement ratios.
func geoPct(deltas []float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	ratios := make([]float64, len(deltas))
	for i, d := range deltas {
		ratios[i] = 1 + d
	}
	return 100 * (GeoMean(ratios) - 1)
}
