package fabric

import (
	"bytes"
	"math/rand"
	"testing"
)

// noSelfSchedule is randomSchedule with self-sends redirected to a real
// peer: the TraceBuilder's pattern endpoints reject rank→rank sends (as the
// in-process transport does), while the null transport the reference
// recorder wraps accepts anything.
func noSelfSchedule(rng *rand.Rand, p int) [][]Record {
	sched := randomSchedule(rng, p)
	for r := range sched {
		for i := range sched[r] {
			if sched[r][i].To == r {
				sched[r][i].To = (r + 1) % p
			}
		}
	}
	return sched
}

// buildSchedule drives every rank's send list serially through the builder's
// pattern endpoints — the synthesis execution model.
func buildSchedule(t *testing.T, b *TraceBuilder, sched [][]Record) {
	t.Helper()
	for r := range sched {
		c := b.Comm(r)
		payload := make([]int32, 8)
		for _, m := range sched[r] {
			if err := c.Send(m.To, m.Step, m.Sub, payload[:m.Elems]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func encodeBytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkBuilderMatchesRecorder pins the synthesis guarantee at the fabric
// layer: the same send pattern, driven serially through TraceBuilder
// endpoints and concurrently through a recording fabric run, produces
// byte-identical traces under the codec.
func checkBuilderMatchesRecorder(t *testing.T, rng *rand.Rand) {
	t.Helper()
	p := 2 + rng.Intn(9)
	sched := noSelfSchedule(rng, p)
	rec := NewRecorder(nullFabric{p: p})
	runSchedule(rec, sched)
	b := NewTraceBuilder(p)
	buildSchedule(t, b, sched)
	built := b.Trace()
	if got, want := encodeBytes(t, built), encodeBytes(t, rec.Trace()); !bytes.Equal(got, want) {
		t.Fatalf("built trace diverges from recorded trace (p=%d)\n built %+v", p, built.Records())
	}
	// The builder reset on Trace: a second merge of the same sends must
	// reproduce the same bytes from a clean slate.
	buildSchedule(t, b, sched)
	if !bytes.Equal(encodeBytes(t, b.Trace()), encodeBytes(t, built)) {
		t.Fatal("builder reuse after Trace diverged")
	}
}

// TestTraceBuilderMatchesRecorder is the byte-equivalence property test over
// randomized schedules with clustered steps, duplicate tags and out-of-order
// step emission.
func TestTraceBuilderMatchesRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		checkBuilderMatchesRecorder(t, rng)
	}
}

// FuzzTraceBuilderMerge fuzzes the same property over arbitrary seeds,
// alongside FuzzShardedRecorderMerge in the existing merge fuzz machinery.
func FuzzTraceBuilderMerge(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkBuilderMatchesRecorder(t, rand.New(rand.NewSource(seed)))
	})
}

// TestPatternCommValidation pins the endpoint's misuse surface: the builder
// must reject exactly what the recording stack rejects — bad tags (Recorder)
// and bad destinations (transport) — so a schedule bug cannot slip into a
// synthesized trace.
func TestPatternCommValidation(t *testing.T) {
	b := NewTraceBuilder(4)
	c := b.Comm(1)
	cases := []struct {
		name string
		err  error
	}{
		{"negative step", c.Send(2, -1, 0, nil)},
		{"negative sub", c.Send(2, 0, -1, nil)},
		{"to out of range", c.Send(4, 0, 0, nil)},
		{"negative to", c.Send(-1, 0, 0, nil)},
		{"self send", c.Send(1, 0, 0, nil)},
		{"recv out of range", c.Recv(4, 0, 0, nil)},
		{"recv self", c.Recv(1, 0, 0, nil)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if tr := b.Trace(); tr.NumRecords() != 0 {
		t.Fatalf("rejected sends reached the trace: %d records", tr.NumRecords())
	}
	if err := c.Send(2, 0, 0, make([]int32, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Recv(0, 0, 0, make([]int32, 3)); err != nil {
		t.Fatal(err)
	}
	tr := b.Trace()
	if tr.NumRecords() != 1 || tr.At(0) != (Record{From: 1, To: 2, Step: 0, Sub: 0, Elems: 3}) {
		t.Fatalf("trace %+v", tr.Records())
	}
}
