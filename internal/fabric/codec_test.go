package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// randomTrace builds a trace with the value ranges real recordings produce,
// in the sorted order Recorder.Trace emits.
func randomTrace(rng *rand.Rand) *Trace {
	p := 1 + rng.Intn(64)
	count := rng.Intn(200)
	var recs []Record
	step, from := 0, 0
	for i := 0; i < count; i++ {
		if rng.Intn(3) == 0 {
			step += rng.Intn(3)
			from = 0
		}
		from += rng.Intn(2)
		if from >= p {
			from = p - 1
		}
		recs = append(recs, Record{
			From:  from,
			To:    rng.Intn(p),
			Step:  step,
			Sub:   rng.Intn(4),
			Elems: rng.Intn(1 << 20),
		})
	}
	return NewTrace(p, recs)
}

func TestTraceCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := EncodeTrace(&buf, tr); err != nil {
			t.Fatalf("trace %d: encode: %v", i, err)
		}
		got, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatalf("trace %d: decode: %v", i, err)
		}
		if got.P != tr.P || got.NumRecords() != tr.NumRecords() {
			t.Fatalf("trace %d: shape %d/%d, want %d/%d", i, got.P, got.NumRecords(), tr.P, tr.NumRecords())
		}
		if tr.NumRecords() > 0 && !reflect.DeepEqual(got.Records(), tr.Records()) {
			t.Fatalf("trace %d: records differ", i)
		}
	}
}

func TestTraceCodecRoundTripRecorded(t *testing.T) {
	// A real recording (not just synthetic records) must survive exactly:
	// the store's correctness rests on a loaded trace being byte-for-byte
	// the recorded one.
	f := NewMem(8)
	rec := NewRecorder(f)
	defer rec.Close()
	err := Run(rec, func(c Comm) error {
		if c.Rank() == 0 {
			for to := 1; to < c.Size(); to++ {
				if err := c.Send(to, to-1, 0, make([]int32, to)); err != nil {
					return err
				}
			}
			return nil
		}
		return c.Recv(0, c.Rank()-1, 0, make([]int32, c.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("decoded trace differs:\n got %+v\nwant %+v", got, tr)
	}
}

// TestTraceCodecGolden pins the on-disk byte format: any codec change must
// show up here and force a CodecVersion bump (which re-addresses every
// stored file) rather than silently reinterpreting old files.
func TestTraceCodecGolden(t *testing.T) {
	tr := NewTrace(4, []Record{
		{From: 0, To: 1, Step: 0, Sub: 0, Elems: 2},
		{From: 0, To: 2, Step: 1, Sub: 0, Elems: 300},
		{From: 1, To: 3, Step: 1, Sub: 1, Elems: 300},
		{From: 2, To: 0, Step: 2, Sub: 0, Elems: 1},
	})
	const golden = "42545243010404000002000202000200ac0200020201ac020202050001305d4479"
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(buf.Bytes()); got != golden {
		t.Fatalf("encoding changed (bump CodecVersion!):\n got %s\nwant %s", got, golden)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("golden decode differs: %+v", got)
	}
}

func TestTraceCodecRejectsDamage(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every truncation must fail cleanly.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeTrace(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(raw))
		}
	}
	// Every single-byte corruption must fail cleanly (the magic check or
	// the CRC catches it).
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x5a
		if _, err := DecodeTrace(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupted byte %d accepted", i)
		}
	}
	// An unknown version must be rejected even with a valid checksum.
	payload := []byte{CodecVersion + 1, 1, 0} // version, P=1, no records
	future := append([]byte(nil), traceMagic[:]...)
	future = append(future, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	future = append(future, sum[:]...)
	if _, err := DecodeTrace(bytes.NewReader(future)); err == nil {
		t.Fatal("future codec version accepted")
	}
}
