package fabric

import (
	"fmt"
	"math"
)

// shardCols is one sender's captured (step, to, sub, elems) columns — the
// sending rank is implicit in the shard's index. Both trace producers fill
// them: the Recorder snapshots its per-rank shards into shardCols, and the
// TraceBuilder appends to them directly; mergeShards turns either into the
// final Trace.
type shardCols struct {
	step, to, sub, elems []int32
}

// mergeShards assembles the deterministic (step, from, to, sub)-ordered
// trace from per-sender columns. Each shard is sorted by (step, to, sub,
// elems) — almost always already true of a rank's own send order — and the
// shards are counting-merged by step in rank order, which yields the fully
// sorted columns in O(records + steps) without comparing records across
// ranks. mergeShards takes ownership of the shards and frees each one as
// soon as it is merged.
func mergeShards(p int, shards []shardCols) *Trace {
	n, maxStep := 0, -1
	for s := range shards {
		sh := &shards[s]
		sortShard(sh.step, sh.to, sh.sub, sh.elems)
		n += len(sh.step)
		if k := len(sh.step); k > 0 && int(sh.step[k-1]) > maxStep {
			maxStep = int(sh.step[k-1])
		}
	}
	// Counting merge: cursor[s] is the next free output slot for step s.
	// Walking shards in ascending rank order — each internally sorted by
	// (step, to, sub) — fills every step's region in (from, to, sub) order.
	cursor := make([]int32, maxStep+2)
	for s := range shards {
		for _, st := range shards[s].step {
			cursor[st+1]++
		}
	}
	for s := 1; s < len(cursor); s++ {
		cursor[s] += cursor[s-1]
	}
	step, from, to, sub, elems := makeColumns(n)
	for s := range shards {
		sh := &shards[s]
		for i, st := range sh.step {
			pos := cursor[st]
			cursor[st]++
			step[pos] = st
			from[pos] = int32(s)
			to[pos] = sh.to[i]
			sub[pos] = sh.sub[i]
			elems[pos] = sh.elems[i]
		}
		*sh = shardCols{} // free the shard as soon as it's merged
	}
	return newTraceColumns(p, step, from, to, sub, elems)
}

// TraceBuilder captures a trace from schedule math alone: its Comm endpoints
// log every Send into per-sender columns and complete every Recv immediately
// (leaving the buffer untouched), so a schedule body driven against them —
// rank by rank, with no goroutines, mailboxes, payload copies or deadline
// machinery — emits exactly the (step, from, to, sub, elems) columns a
// Recorder-wrapped fabric run would capture. Trace merges the columns with
// the same shard sort and counting merge the Recorder uses, so the result is
// byte-identical under the codec to a recording of the same schedule.
//
// Each rank's endpoint writes only its own shard, so distinct ranks may be
// driven concurrently; a single rank's endpoint must not be shared across
// goroutines (mirroring the Comm contract).
type TraceBuilder struct {
	p      int
	shards []shardCols
}

// NewTraceBuilder returns a builder over p ranks.
func NewTraceBuilder(p int) *TraceBuilder {
	return &TraceBuilder{p: p, shards: make([]shardCols, p)}
}

// Size returns the rank count.
func (b *TraceBuilder) Size() int { return b.p }

// Comm returns the pattern-only endpoint for the rank.
func (b *TraceBuilder) Comm(rank int) Comm { return &patternComm{b: b, rank: rank} }

// Trace merges the captured columns into the deterministic (step, from, to,
// sub) order, consuming them: the builder is reset for reuse.
func (b *TraceBuilder) Trace() *Trace {
	shards := b.shards
	b.shards = make([]shardCols, b.p)
	return mergeShards(b.p, shards)
}

// patternComm is the TraceBuilder's endpoint. Send applies the same
// validation the recording stack enforces — tag ranges from the Recorder,
// destination range and self-send rejection from the in-process transport —
// so a schedule bug fails synthesis exactly as it would fail a recording
// run; Recv completes immediately, leaving buf as-is (schedules are
// data-independent, and recordings run on all-zero vectors anyway).
type patternComm struct {
	b    *TraceBuilder
	rank int
}

func (c *patternComm) Rank() int { return c.rank }
func (c *patternComm) Size() int { return c.b.p }

func (c *patternComm) Send(to, step, sub int, data []int32) error {
	if step < 0 || step > math.MaxInt32 || sub < 0 || sub > math.MaxInt32 {
		return fmt.Errorf("fabric: record tag out of range (step=%d sub=%d)", step, sub)
	}
	if to < 0 || to >= c.b.p {
		return fmt.Errorf("fabric: send to rank %d of %d", to, c.b.p)
	}
	if to == c.rank {
		return fmt.Errorf("fabric: rank %d sending to itself", to)
	}
	sh := &c.b.shards[c.rank]
	sh.step = append(sh.step, int32(step))
	sh.to = append(sh.to, int32(to))
	sh.sub = append(sh.sub, int32(sub))
	sh.elems = append(sh.elems, int32(len(data)))
	return nil
}

func (c *patternComm) Recv(from, step, sub int, buf []int32) error {
	if from < 0 || from >= c.b.p {
		return fmt.Errorf("fabric: recv from rank %d of %d", from, c.b.p)
	}
	if from == c.rank {
		return fmt.Errorf("fabric: rank %d receiving from itself", from)
	}
	return nil
}
