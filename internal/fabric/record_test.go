package fabric

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// nullFabric is a transport that accepts every send and never delivers:
// recorder tests and benchmarks exercise the recording hot path without
// paying for mailboxes or goroutine scheduling.
type nullFabric struct{ p int }

func (f nullFabric) Size() int          { return f.p }
func (f nullFabric) Comm(rank int) Comm { return nullComm{rank: rank, p: f.p} }
func (f nullFabric) Close() error       { return nil }

type nullComm struct{ rank, p int }

func (c nullComm) Rank() int                                  { return c.rank }
func (c nullComm) Size() int                                  { return c.p }
func (c nullComm) Send(to, step, sub int, data []int32) error { return nil }
func (c nullComm) Recv(from, step, sub int, buf []int32) error {
	return fmt.Errorf("nullComm: no messages")
}

// referenceRecorder is the pre-columnar Recorder: one mutex, one append-only
// []Record, sorted at Trace time. It is the property-test oracle the sharded
// merge must match, and the baseline the recording benchmarks compare
// against.
type referenceRecorder struct {
	inner Fabric
	mu    sync.Mutex
	recs  []Record
}

func newReferenceRecorder(inner Fabric) *referenceRecorder {
	return &referenceRecorder{inner: inner}
}

func (r *referenceRecorder) Size() int    { return r.inner.Size() }
func (r *referenceRecorder) Close() error { return r.inner.Close() }
func (r *referenceRecorder) Comm(rank int) Comm {
	return &refComm{rec: r, inner: r.inner.Comm(rank)}
}

// Trace returns the captured records sorted by (step, from, to, sub, elems)
// — the old implementation's deterministic order, with the elems tiebreak
// the sharded merge guarantees for pathological duplicate tags.
func (r *referenceRecorder) Trace() []Record {
	r.mu.Lock()
	recs := append([]Record(nil), r.recs...)
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Sub != b.Sub {
			return a.Sub < b.Sub
		}
		return a.Elems < b.Elems
	})
	return recs
}

type refComm struct {
	rec   *referenceRecorder
	inner Comm
}

func (c *refComm) Rank() int { return c.inner.Rank() }
func (c *refComm) Size() int { return c.inner.Size() }

func (c *refComm) Send(to, step, sub int, data []int32) error {
	c.rec.mu.Lock()
	c.rec.recs = append(c.rec.recs, Record{
		From: c.inner.Rank(), To: to, Step: step, Sub: sub, Elems: len(data),
	})
	c.rec.mu.Unlock()
	return c.inner.Send(to, step, sub, data)
}

func (c *refComm) Recv(from, step, sub int, buf []int32) error {
	return c.inner.Recv(from, step, sub, buf)
}

// randomSchedule builds per-rank send lists with clustered steps, repeated
// (to, sub) pairs and occasional exact duplicates — the shapes that stress
// the shard sort and the counting merge.
func randomSchedule(rng *rand.Rand, p int) [][]Record {
	sched := make([][]Record, p)
	for r := 0; r < p; r++ {
		m := rng.Intn(60)
		step := 0
		for i := 0; i < m; i++ {
			switch rng.Intn(4) {
			case 0:
				step += rng.Intn(3) // mostly nondecreasing, like real ranks
			case 1:
				if step > 0 {
					step -= 1 // occasional out-of-order step (stresses the sort)
				}
			}
			rec := Record{
				From:  r,
				To:    rng.Intn(p),
				Step:  step,
				Sub:   rng.Intn(3),
				Elems: rng.Intn(5),
			}
			sched[r] = append(sched[r], rec)
			if rng.Intn(8) == 0 {
				sched[r] = append(sched[r], rec) // exact duplicate
			}
		}
	}
	return sched
}

// runSchedule drives every rank's send list concurrently through the
// recorder chain and returns when all sends completed. Each rank reuses one
// payload buffer, so benchmarks measure the recording path rather than
// payload construction.
func runSchedule(f Fabric, sched [][]Record) {
	var wg sync.WaitGroup
	for r := range sched {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := f.Comm(rank)
			maxElems := 0
			for _, m := range sched[rank] {
				if m.Elems > maxElems {
					maxElems = m.Elems
				}
			}
			payload := make([]int32, maxElems)
			for _, m := range sched[rank] {
				if err := c.Send(m.To, m.Step, m.Sub, payload[:m.Elems]); err != nil {
					panic(err)
				}
			}
		}(r)
	}
	wg.Wait()
}

// checkShardedMatchesReference records one randomized concurrent schedule
// through both recorders at once (the sharded Recorder wraps the reference,
// so both observe the identical set of sends) and requires the sharded
// counting merge to equal the single-mutex oracle's sorted order.
func checkShardedMatchesReference(t *testing.T, rng *rand.Rand) {
	t.Helper()
	p := 2 + rng.Intn(9)
	sched := randomSchedule(rng, p)
	ref := newReferenceRecorder(nullFabric{p: p})
	rec := NewRecorder(ref)
	done := make(chan struct{})
	// Concurrent mid-run snapshots must not perturb the final trace.
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			_ = rec.Trace()
		}
	}()
	runSchedule(rec, sched)
	<-done
	got := rec.Trace()
	want := ref.Trace()
	if got.P != p {
		t.Fatalf("trace P = %d, want %d", got.P, p)
	}
	if !reflect.DeepEqual(got.Records(), want) {
		t.Fatalf("sharded merge diverged from single-mutex order\n got %+v\nwant %+v", got.Records(), want)
	}
}

// TestShardedRecorderMatchesReference is the merge-order property test: for
// randomized concurrent send interleavings, the sharded recorder's merged
// (step, from, to, sub) order equals the old single-mutex recorder's sorted
// order.
func TestShardedRecorderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		checkShardedMatchesReference(t, rng)
	}
}

// FuzzShardedRecorderMerge fuzzes the same property over arbitrary seeds
// (the seed corpus runs under plain `go test`; `go test -fuzz` explores).
func FuzzShardedRecorderMerge(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkShardedMatchesReference(t, rand.New(rand.NewSource(seed)))
	})
}

// budgetFabric records SetBudget calls so tests can observe the Recorder's
// sharded budget raises.
type budgetFabric struct {
	nullFabric
	mu    sync.Mutex
	calls []int
}

func (f *budgetFabric) SetBudget(messages int) {
	f.mu.Lock()
	f.calls = append(f.calls, messages)
	f.mu.Unlock()
}

// TestRecorderBudgetRaisesSharded pins the sharded budget counter: senders
// contribute in budgetBatch blocks, and the transport sees a raise at every
// budgetEvery boundary of the cumulative count.
func TestRecorderBudgetRaisesSharded(t *testing.T) {
	f := &budgetFabric{nullFabric: nullFabric{p: 2}}
	rec := NewRecorder(f)
	c := rec.Comm(0)
	for i := 0; i < 2*budgetEvery+5; i++ {
		if err := c.Send(1, i, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	f.mu.Lock()
	calls := append([]int(nil), f.calls...)
	f.mu.Unlock()
	if want := []int{budgetEvery, 2 * budgetEvery}; !reflect.DeepEqual(calls, want) {
		t.Fatalf("budget raises %v, want %v", calls, want)
	}
}

// TestRecorderBudgetSpreadAcrossSenders pins the regression the batched
// counter exists to avoid: a schedule whose volume is spread thinly across
// many ranks — every sender far below budgetEvery — must still accumulate
// into the shared count and raise the deadline.
func TestRecorderBudgetSpreadAcrossSenders(t *testing.T) {
	p := 32
	f := &budgetFabric{nullFabric: nullFabric{p: p}}
	rec := NewRecorder(f)
	for r := 0; r < p; r++ { // p ranks × budgetBatch sends = 2×budgetEvery total
		c := rec.Comm(r)
		for i := 0; i < budgetBatch; i++ {
			if err := c.Send((r+1)%p, i, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.mu.Lock()
	calls := append([]int(nil), f.calls...)
	f.mu.Unlock()
	if want := []int{budgetEvery, 2 * budgetEvery}; !reflect.DeepEqual(calls, want) {
		t.Fatalf("budget raises %v, want %v (no sender reached budgetEvery alone)", calls, want)
	}
}

// ringSchedule is the fig11b hot spot in miniature: every rank sends
// 2(p−1) unit messages, one per step, to its ring neighbour.
func ringSchedule(p int) [][]Record {
	sched := make([][]Record, p)
	for r := 0; r < p; r++ {
		next := (r + 1) % p
		steps := 2 * (p - 1)
		sched[r] = make([]Record, steps)
		for s := 0; s < steps; s++ {
			sched[r][s] = Record{From: r, To: next, Step: s, Elems: 1}
		}
	}
	return sched
}

// BenchmarkRecordRing measures cold recording of a p-rank ring allreduce
// schedule (every rank sends 2(p−1) unit messages) plus the Trace merge —
// the recording hot path of `fig11b -full` at reduced scale — for the
// sharded columnar recorder and the old single-mutex []Record baseline.
func BenchmarkRecordRing(b *testing.B) {
	const p = 1024
	sched := ringSchedule(p)
	msgs := int64(p * 2 * (p - 1))
	b.Run("sharded", func(b *testing.B) {
		b.SetBytes(msgs)
		for i := 0; i < b.N; i++ {
			rec := NewRecorder(nullFabric{p: p})
			runSchedule(rec, sched)
			if tr := rec.Trace(); tr.NumRecords() != int(msgs) {
				b.Fatalf("recorded %d messages, want %d", tr.NumRecords(), msgs)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(msgs)
		for i := 0; i < b.N; i++ {
			rec := newReferenceRecorder(nullFabric{p: p})
			runSchedule(rec, sched)
			if recs := rec.Trace(); len(recs) != int(msgs) {
				b.Fatalf("recorded %d messages, want %d", len(recs), msgs)
			}
		}
	})
}
