package fabric

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is the socket transport: every rank owns a loopback listener and
// messages travel as length-prefixed frames over directional connections
// (dialed lazily on first send). It exists to demonstrate that the
// collectives run unchanged over a real network stack; the frame format is
//
//	uint32 from | uint32 step | uint32 sub | uint32 count | count × int32
//
// in little-endian byte order, preceded on each connection by a single
// uint32 handshake carrying the dialing rank.
type TCP struct {
	boxes     []*mailbox
	listeners []net.Listener
	addrs     []string
	timeout   atomic.Int64 // base receive timeout, nanoseconds
	budget    atomic.Int64 // scaled schedule allowance, nanoseconds

	mu    sync.Mutex
	conns map[[2]int]net.Conn // (from, to) → dialed connection
	done  bool

	wg sync.WaitGroup
}

// NewTCP creates a TCP fabric with p ranks listening on loopback.
func NewTCP(p int) (*TCP, error) {
	f := &TCP{
		boxes:     make([]*mailbox, p),
		listeners: make([]net.Listener, p),
		addrs:     make([]string, p),
		conns:     map[[2]int]net.Conn{},
	}
	f.timeout.Store(int64(DefaultTimeout))
	for i := 0; i < p; i++ {
		f.boxes[i] = newMailbox()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fabric: listen rank %d: %w", i, err)
		}
		f.listeners[i] = ln
		f.addrs[i] = ln.Addr().String()
		f.wg.Add(1)
		go f.acceptLoop(i, ln)
	}
	return f, nil
}

// SetTimeout adjusts the base receive timeout.
func (f *TCP) SetTimeout(d time.Duration) { f.timeout.Store(int64(d)) }

// SetBudget grants every receive the capped per-message allowance for a
// schedule of the given message count on top of the base timeout; see
// (*Mem).SetBudget. The allowance is monotone: stale concurrent raises
// never shrink it.
func (f *TCP) SetBudget(messages int) { raiseBudget(&f.budget, budgetFor(messages)) }

// recvTimeout is the live effective deadline: base plus scaled budget.
func (f *TCP) recvTimeout() time.Duration {
	return time.Duration(f.timeout.Load() + f.budget.Load())
}

// Size returns the number of ranks.
func (f *TCP) Size() int { return len(f.boxes) }

// Comm returns rank's endpoint.
func (f *TCP) Comm(rank int) Comm {
	if rank < 0 || rank >= len(f.boxes) {
		panic(fmt.Sprintf("fabric: rank %d out of range", rank))
	}
	return &tcpComm{f: f, rank: rank}
}

// Close shuts down listeners, connections and mailboxes.
func (f *TCP) Close() error {
	f.mu.Lock()
	f.done = true
	conns := f.conns
	f.conns = map[[2]int]net.Conn{}
	f.mu.Unlock()
	for _, ln := range f.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for _, c := range conns {
		c.Close()
	}
	for _, b := range f.boxes {
		b.close()
	}
	f.wg.Wait()
	return nil
}

func (f *TCP) acceptLoop(rank int, ln net.Listener) {
	defer f.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.readLoop(rank, conn)
		}()
	}
}

func (f *TCP) readLoop(rank int, conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint32(hdr[:]))
	var frame [16]byte
	for {
		if _, err := io.ReadFull(conn, frame[:]); err != nil {
			return
		}
		step := int(binary.LittleEndian.Uint32(frame[0:4]))
		sub := int(binary.LittleEndian.Uint32(frame[4:8]))
		count := int(binary.LittleEndian.Uint32(frame[8:12]))
		// frame[12:16] is reserved padding keeping the header 16 bytes.
		payload := make([]byte, 4*count)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		msg := message{from: from, step: step, sub: sub, n: int32(count)}
		dst := msg.inline[:]
		if count > inlineElems {
			msg.data = make([]int32, count)
			dst = msg.data
		}
		for i := 0; i < count; i++ {
			dst[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		if err := f.boxes[rank].put(msg); err != nil {
			return
		}
	}
}

func (f *TCP) conn(from, to int) (net.Conn, error) {
	key := [2]int{from, to}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil, ErrClosed
	}
	if c, ok := f.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", f.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("fabric: rank %d dialing %d: %w", from, to, err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(from))
	if _, err := c.Write(hdr[:]); err != nil {
		c.Close()
		return nil, err
	}
	f.conns[key] = c
	return c, nil
}

type tcpComm struct {
	f    *TCP
	rank int
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return len(c.f.boxes) }

func (c *tcpComm) Send(to, step, sub int, data []int32) error {
	if to == c.rank {
		return fmt.Errorf("fabric: rank %d sending to itself", to)
	}
	conn, err := c.f.conn(c.rank, to)
	if err != nil {
		return err
	}
	buf := make([]byte, 16+4*len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(step))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(sub))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(v))
	}
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("fabric: rank %d send to %d: %w", c.rank, to, err)
	}
	return nil
}

func (c *tcpComm) Recv(from, step, sub int, buf []int32) error {
	msg, err := c.f.boxes[c.rank].take(from, step, sub, c.f.recvTimeout)
	if err != nil {
		return fmt.Errorf("fabric: rank %d recv: %w", c.rank, err)
	}
	return msg.copyInto(c.rank, from, step, sub, buf)
}
