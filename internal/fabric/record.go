package fabric

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Record is one captured point-to-point transfer, materialized from the
// trace's columnar storage (see Trace). It remains the unit of construction
// (NewTrace) and inspection (Trace.At, Trace.Records) for tests and tools;
// the hot paths read the columns through the per-field accessors instead.
type Record struct {
	From, To int
	// Step is the collective's logical step; messages sharing a step are
	// concurrent on the network.
	Step int
	// Sub distinguishes multiple messages between the same pair within a
	// step (segmented / block-by-block transmissions).
	Sub int
	// Elems is the payload length in vector elements.
	Elems int
}

// Trace is the complete communication record of one collective execution.
// The cost model in internal/netsim replays traces against topologies.
//
// Storage is columnar: five parallel int32 columns (struct-of-arrays), 20
// bytes per record instead of the 40 of a []Record — the full-scale Fugaku
// ring (~134M messages) fits in ~2.7 GB instead of ~5.4. Records are grouped
// by ascending step with a step index over the columns, so replay iterates
// steps without re-grouping, and the totals the evaluator asks for per cell
// (TotalElems, MaxMessagesPerSender) are computed once at construction. A
// Trace is immutable after construction.
type Trace struct {
	P int

	// Parallel columns, grouped by nondecreasing step. Within a step,
	// construction order is preserved (Recorder.Trace produces full
	// (step, from, to, sub) order).
	cStep, cFrom, cTo, cSub, cElems []int32

	// stepOff[s] .. stepOff[s+1] bound step s's records in the columns;
	// len(stepOff) == NumSteps()+1.
	stepOff []int32

	totalElems int64
	maxMsgs    int
}

// NewTrace builds a trace over p ranks from materialized records (tests and
// tools; recordings come from Recorder.Trace and DecodeTrace). Records are
// stably grouped by step if they aren't already; within-step order is
// preserved. Fields must be non-negative, fit in int32, and name ranks below
// p.
func NewTrace(p int, recs []Record) *Trace {
	n := len(recs)
	step, from, to, sub, elems := makeColumns(n)
	for i, r := range recs {
		if r.Step < 0 || r.Step > math.MaxInt32 || r.Sub < 0 || r.Sub > math.MaxInt32 ||
			r.Elems < 0 || r.Elems > math.MaxInt32 || r.From < 0 || r.From >= p || r.To < 0 || r.To >= p {
			panic(fmt.Sprintf("fabric: trace record out of range: %+v (p=%d)", r, p))
		}
		step[i] = int32(r.Step)
		from[i] = int32(r.From)
		to[i] = int32(r.To)
		sub[i] = int32(r.Sub)
		elems[i] = int32(r.Elems)
	}
	return newTraceColumns(p, step, from, to, sub, elems)
}

// makeColumns carves one backing array into the five capped record columns
// every construction path (NewTrace, Recorder.Trace, DecodeTraceBytes)
// fills.
func makeColumns(n int) (step, from, to, sub, elems []int32) {
	cols := make([]int32, 5*n)
	return cols[:n:n], cols[n : 2*n : 2*n], cols[2*n : 3*n : 3*n], cols[3*n : 4*n : 4*n], cols[4*n : 5*n : 5*n]
}

// newTraceColumns assembles a trace from columns it takes ownership of:
// stable-group by step when needed, then index and total in one pass.
// Callers guarantee non-negative fields and ranks below p.
func newTraceColumns(p int, step, from, to, sub, elems []int32) *Trace {
	n := len(step)
	t := &Trace{P: p, cStep: step, cFrom: from, cTo: to, cSub: sub, cElems: elems}
	sorted := true
	for i := 1; i < n; i++ {
		if step[i] < step[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		// Rare path: only hand-built traces interleave steps. Stable so
		// within-step order — which the replay semantics preserve — stays
		// exactly the construction order.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(i, j int) bool { return step[perm[i]] < step[perm[j]] })
		for _, col := range []*[]int32{&t.cStep, &t.cFrom, &t.cTo, &t.cSub, &t.cElems} {
			old := *col
			neu := make([]int32, n)
			for i, pi := range perm {
				neu[i] = old[pi]
			}
			*col = neu
		}
		step, from, elems = t.cStep, t.cFrom, t.cElems
	}
	numSteps := 0
	if n > 0 {
		numSteps = int(step[n-1]) + 1
	}
	t.stepOff = make([]int32, numSteps+1)
	for _, s := range step {
		t.stepOff[s+1]++
	}
	for s := 0; s < numSteps; s++ {
		t.stepOff[s+1] += t.stepOff[s]
	}
	for _, e := range elems {
		t.totalElems += int64(e)
	}
	// Messages-per-sender-per-step with a dense generation-stamped scratch:
	// no maps, one pass.
	if n > 0 {
		cnt := make([]int32, p)
		stamp := make([]int32, p)
		for s := 0; s < numSteps; s++ {
			gen := int32(s) + 1
			for i := t.stepOff[s]; i < t.stepOff[s+1]; i++ {
				f := from[i]
				if stamp[f] != gen {
					stamp[f] = gen
					cnt[f] = 0
				}
				cnt[f]++
				if int(cnt[f]) > t.maxMsgs {
					t.maxMsgs = int(cnt[f])
				}
			}
		}
	}
	return t
}

// NumRecords returns the record count.
func (t *Trace) NumRecords() int { return len(t.cStep) }

// Per-record column accessors; i indexes the trace's step-grouped order.
// These are the replay hot path — they compile to bounds-checked loads.

// From returns record i's sending rank.
func (t *Trace) From(i int) int { return int(t.cFrom[i]) }

// To returns record i's receiving rank.
func (t *Trace) To(i int) int { return int(t.cTo[i]) }

// Step returns record i's logical step.
func (t *Trace) Step(i int) int { return int(t.cStep[i]) }

// Sub returns record i's sub-message tag.
func (t *Trace) Sub(i int) int { return int(t.cSub[i]) }

// Elems returns record i's payload length in vector elements.
func (t *Trace) Elems(i int) int { return int(t.cElems[i]) }

// At materializes record i.
func (t *Trace) At(i int) Record {
	return Record{
		From: int(t.cFrom[i]), To: int(t.cTo[i]),
		Step: int(t.cStep[i]), Sub: int(t.cSub[i]), Elems: int(t.cElems[i]),
	}
}

// Records materializes every record in the trace's step-grouped order
// (tests and tools; the replay iterates the columns instead).
func (t *Trace) Records() []Record {
	out := make([]Record, t.NumRecords())
	for i := range out {
		out[i] = t.At(i)
	}
	return out
}

// NumSteps returns the number of logical steps (the largest step + 1; steps
// with no messages count).
func (t *Trace) NumSteps() int { return len(t.stepOff) - 1 }

// StepBounds returns the half-open column range [lo, hi) of step s's
// records; lo == hi for an empty step.
func (t *Trace) StepBounds(s int) (lo, hi int) {
	return int(t.stepOff[s]), int(t.stepOff[s+1])
}

// Steps returns the records grouped by step in ascending step order
// (materialized; the replay iterates StepBounds over the columns instead).
func (t *Trace) Steps() [][]Record {
	if t.NumRecords() == 0 {
		return nil
	}
	out := make([][]Record, t.NumSteps())
	for s := range out {
		lo, hi := t.StepBounds(s)
		if lo == hi {
			continue
		}
		recs := make([]Record, hi-lo)
		for i := range recs {
			recs[i] = t.At(lo + i)
		}
		out[s] = recs
	}
	return out
}

// MemBytes returns the resident size of the trace's columnar storage: five
// int32 columns plus the step index. (The former []Record layout cost 40
// bytes per record; the columns cost 20.)
func (t *Trace) MemBytes() int64 {
	return 4 * int64(5*len(t.cStep)+len(t.stepOff))
}

// TotalElems returns the total number of vector elements transferred
// (computed once at construction).
func (t *Trace) TotalElems() int64 { return t.totalElems }

// MaxMessagesPerSender returns the largest number of messages any single
// rank sends within one step (computed once at construction); the cost model
// charges per-message overhead serialized at the sender.
func (t *Trace) MaxMessagesPerSender() int { return t.maxMsgs }

// budgetEvery is how many captured sends pass between the Recorder's budget
// raises: frequent enough that the allowance tracks the schedule closely
// (each interval is worth budgetEvery × PerMessageBudget of extra deadline),
// rare enough that the raise is free on the send path.
const budgetEvery = 1024

// budgetBatch is how many sends a shard accumulates locally before adding
// them to the Recorder's shared counter: large enough that the counter is
// never a contended cache line, small enough that schedules whose volume is
// spread thinly across many ranks (each sender far below budgetEvery) still
// feed the global count and earn their deadline — at most budgetBatch−1
// messages per shard ever go uncounted. budgetEvery is a multiple, so
// raises fire exactly at budgetEvery boundaries of the shared counter.
const budgetBatch = 64

// shard is one sender's private append-only record buffer: rank r's sends
// land in shard r in columnar form (From is implicit — it's the shard
// index), so concurrent ranks never contend on a shared mutex or interleave
// in a shared slice. The per-shard mutex is uncontended in normal use (a
// rank records from its own goroutine) and exists so misuse stays safe, and
// so Trace can snapshot mid-run. Padding keeps neighbouring shards off each
// other's cache lines.
type shard struct {
	mu                   sync.Mutex
	step, to, sub, elems []int32
	pending              int      // sends since this shard's last budget contribution
	_                    [80]byte // rounds the struct to 192 bytes, a cache-line multiple
}

// Recorder wraps a fabric and captures every Send into a Trace. Receives are
// not recorded (each message appears once).
//
// Recording is sharded per sender: each rank appends to its own columnar
// buffer, so the hot path is a private (uncontended) lock and four int32
// appends — no cross-rank contention and half the bytes of the former
// single-slice []Record design. Trace merges the shards into deterministic
// (step, from, to, sub) order with a counting merge (no comparison sort of
// the full record set).
//
// The schedule length is unknown until the schedule has run, so when the
// wrapped transport supports deadline budgets (BudgetSetter) the Recorder
// auto-scales it: as the captured trace grows, every receive's deadline
// grows with it (DefaultTimeout plus the capped per-message budget for the
// messages recorded so far). A short schedule that deadlocks still fails
// near the base timeout; a healthy 8192-rank ring — over a hundred million
// messages — earns the deadline it needs as it makes progress. Shards
// contribute to the shared message counter in budgetBatch-sized blocks, so
// the counter never becomes a contended cache line, yet volume spread
// thinly across many senders still accumulates and raises the deadline.
type Recorder struct {
	inner  Fabric
	budget BudgetSetter // nil when the transport has a fixed deadline
	shards []shard      // one per sending rank
	total  atomic.Int64 // completed budgetBatch blocks across all shards, in messages
}

// NewRecorder wraps inner.
func NewRecorder(inner Fabric) *Recorder {
	r := &Recorder{inner: inner, shards: make([]shard, inner.Size())}
	if bs, ok := inner.(BudgetSetter); ok {
		r.budget = bs
	}
	return r
}

// Size returns the rank count of the wrapped fabric.
func (r *Recorder) Size() int { return r.inner.Size() }

// Close closes the wrapped fabric.
func (r *Recorder) Close() error { return r.inner.Close() }

// Comm returns a recording endpoint for the rank.
func (r *Recorder) Comm(rank int) Comm {
	return &recComm{rec: r, sh: &r.shards[rank], inner: r.inner.Comm(rank)}
}

// Trace returns the captured trace in deterministic (step, from, to, sub)
// order: each shard is snapshotted under its lock and the snapshots are
// handed to the shared shard merge (mergeShards) — the same sort and
// counting merge the TraceBuilder's synthesized columns go through.
func (r *Recorder) Trace() *Trace {
	p := r.inner.Size()
	snaps := make([]shardCols, p)
	for s := range r.shards {
		sh := &r.shards[s]
		sh.mu.Lock()
		snaps[s] = shardCols{
			step:  append([]int32(nil), sh.step...),
			to:    append([]int32(nil), sh.to...),
			sub:   append([]int32(nil), sh.sub...),
			elems: append([]int32(nil), sh.elems...),
		}
		sh.mu.Unlock()
	}
	return mergeShards(p, snaps)
}

// sortShard orders one shard's columns by (step, to, sub, elems) unless they
// already are — a rank's own send order almost always is, so the common case
// is a single verification pass.
func sortShard(step, to, sub, elems []int32) {
	sorted := true
	for i := 1; i < len(step); i++ {
		if shardLess(step, to, sub, elems, i, i-1) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.Sort(&shardSorter{step: step, to: to, sub: sub, elems: elems})
}

type shardSorter struct{ step, to, sub, elems []int32 }

func (s *shardSorter) Len() int { return len(s.step) }
func (s *shardSorter) Less(i, j int) bool {
	return shardLess(s.step, s.to, s.sub, s.elems, i, j)
}
func (s *shardSorter) Swap(i, j int) {
	s.step[i], s.step[j] = s.step[j], s.step[i]
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.sub[i], s.sub[j] = s.sub[j], s.sub[i]
	s.elems[i], s.elems[j] = s.elems[j], s.elems[i]
}

// shardLess is the (step, to, sub, elems) record order within one sender's
// shard; elems is a final tiebreak so even pathological duplicate tags merge
// deterministically.
func shardLess(step, to, sub, elems []int32, i, j int) bool {
	if step[i] != step[j] {
		return step[i] < step[j]
	}
	if to[i] != to[j] {
		return to[i] < to[j]
	}
	if sub[i] != sub[j] {
		return sub[i] < sub[j]
	}
	return elems[i] < elems[j]
}

type recComm struct {
	rec   *Recorder
	sh    *shard
	inner Comm
}

func (c *recComm) Rank() int { return c.inner.Rank() }
func (c *recComm) Size() int { return c.inner.Size() }

func (c *recComm) Send(to, step, sub int, data []int32) error {
	if step < 0 || step > math.MaxInt32 || sub < 0 || sub > math.MaxInt32 {
		return fmt.Errorf("fabric: record tag out of range (step=%d sub=%d)", step, sub)
	}
	sh := c.sh
	sh.mu.Lock()
	sh.step = append(sh.step, int32(step))
	sh.to = append(sh.to, int32(to))
	sh.sub = append(sh.sub, int32(sub))
	sh.elems = append(sh.elems, int32(len(data)))
	sh.pending++
	flush := sh.pending >= budgetBatch
	if flush {
		sh.pending = 0
	}
	sh.mu.Unlock()
	if flush && c.rec.budget != nil {
		// Every contribution is exactly budgetBatch, so the shared counter
		// walks multiples of it and exactly one flusher observes each
		// budgetEvery boundary.
		if total := c.rec.total.Add(budgetBatch); total%budgetEvery == 0 {
			c.rec.budget.SetBudget(int(total))
		}
	}
	return c.inner.Send(to, step, sub, data)
}

func (c *recComm) Recv(from, step, sub int, buf []int32) error {
	return c.inner.Recv(from, step, sub, buf)
}
