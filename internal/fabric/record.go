package fabric

import (
	"sort"
	"sync"
)

// Record is one captured point-to-point transfer.
type Record struct {
	From, To int
	// Step is the collective's logical step; messages sharing a step are
	// concurrent on the network.
	Step int
	// Sub distinguishes multiple messages between the same pair within a
	// step (segmented / block-by-block transmissions).
	Sub int
	// Elems is the payload length in vector elements.
	Elems int
}

// Trace is the complete communication record of one collective execution.
// The cost model in internal/netsim replays traces against topologies.
type Trace struct {
	P       int
	Records []Record
}

// Steps returns the records grouped by step in ascending step order.
func (t *Trace) Steps() [][]Record {
	if len(t.Records) == 0 {
		return nil
	}
	maxStep := 0
	for _, r := range t.Records {
		if r.Step > maxStep {
			maxStep = r.Step
		}
	}
	out := make([][]Record, maxStep+1)
	for _, r := range t.Records {
		out[r.Step] = append(out[r.Step], r)
	}
	return out
}

// TotalElems returns the total number of vector elements transferred.
func (t *Trace) TotalElems() int64 {
	var n int64
	for _, r := range t.Records {
		n += int64(r.Elems)
	}
	return n
}

// MaxMessagesPerSender returns the largest number of messages any single
// rank sends within one step; the cost model charges per-message overhead
// serialized at the sender.
func (t *Trace) MaxMessagesPerSender() int {
	type key struct{ step, from int }
	counts := map[key]int{}
	max := 0
	for _, r := range t.Records {
		k := key{r.Step, r.From}
		counts[k]++
		if counts[k] > max {
			max = counts[k]
		}
	}
	return max
}

// budgetEvery is how many captured sends pass between the Recorder's budget
// raises: frequent enough that the allowance tracks the schedule closely
// (each interval is worth budgetEvery × PerMessageBudget of extra deadline),
// rare enough that the raise is free on the send path.
const budgetEvery = 1024

// Recorder wraps a fabric and captures every Send into a Trace. Receives are
// not recorded (each message appears once).
//
// The schedule length is unknown until the schedule has run, so when the
// wrapped transport supports deadline budgets (BudgetSetter) the Recorder
// auto-scales it: as the captured trace grows, every receive's deadline
// grows with it (DefaultTimeout plus the capped per-message budget for the
// messages recorded so far). A short schedule that deadlocks still fails
// near the base timeout; a healthy 8192-rank ring — over a hundred million
// messages — earns the deadline it needs as it makes progress.
type Recorder struct {
	inner  Fabric
	budget BudgetSetter // nil when the transport has a fixed deadline
	mu     sync.Mutex
	recs   []Record
}

// NewRecorder wraps inner.
func NewRecorder(inner Fabric) *Recorder {
	r := &Recorder{inner: inner}
	if bs, ok := inner.(BudgetSetter); ok {
		r.budget = bs
	}
	return r
}

// Size returns the rank count of the wrapped fabric.
func (r *Recorder) Size() int { return r.inner.Size() }

// Close closes the wrapped fabric.
func (r *Recorder) Close() error { return r.inner.Close() }

// Comm returns a recording endpoint for the rank.
func (r *Recorder) Comm(rank int) Comm {
	return &recComm{rec: r, inner: r.inner.Comm(rank)}
}

// Trace returns the captured trace in deterministic (step, from, to, sub)
// order.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	recs := append([]Record(nil), r.recs...)
	r.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Sub < b.Sub
	})
	return &Trace{P: r.inner.Size(), Records: recs}
}

type recComm struct {
	rec   *Recorder
	inner Comm
}

func (c *recComm) Rank() int { return c.inner.Rank() }
func (c *recComm) Size() int { return c.inner.Size() }

func (c *recComm) Send(to, step, sub int, data []int32) error {
	c.rec.mu.Lock()
	c.rec.recs = append(c.rec.recs, Record{
		From: c.inner.Rank(), To: to, Step: step, Sub: sub, Elems: len(data),
	})
	n := len(c.rec.recs)
	c.rec.mu.Unlock()
	if c.rec.budget != nil && n%budgetEvery == 0 {
		c.rec.budget.SetBudget(n)
	}
	return c.inner.Send(to, step, sub, data)
}

func (c *recComm) Recv(from, step, sub int, buf []int32) error {
	return c.inner.Recv(from, step, sub, buf)
}
