// Package fabric is the hand-rolled message-passing runtime the collectives
// run on — the substitute for the MPI point-to-point layer used by the paper
// (no MPI ecosystem exists for Go; see DESIGN.md).
//
// A Fabric hosts p ranks. Each rank obtains a Comm handle and exchanges
// typed vectors ([]int32, matching the paper's 32-bit-integer benchmark
// vectors) with its peers. Messages are matched by (peer, step, sub): step
// is the collective's logical step number and sub distinguishes multiple
// messages between the same pair within one step (e.g. block-by-block
// transmissions, Sec. 4.3.1 of the paper).
//
// Two transports are provided: Mem (in-process mailboxes, used for large
// rank counts) and TCP (length-prefixed frames over loopback sockets, used
// to demonstrate the collectives over a real network stack). A Recorder can
// wrap any fabric to capture the full communication trace for the traffic
// and cost analyses in internal/netsim.
package fabric

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultTimeout is the base bound on how long a Recv waits for a matching
// message before failing. Collectives are deadlock-free by construction; the
// timeout turns a bug into a test failure instead of a hang. Long schedules
// (thousands of steps over thousands of ranks) legitimately keep individual
// receives waiting far beyond any flat constant, so the effective deadline
// is this base plus a budget that scales with the schedule size — see
// SetBudget on the transports and the Recorder's auto-scaling.
const DefaultTimeout = 30 * time.Second

// PerMessageBudget is the extra receive allowance granted per message of a
// schedule's budget: a schedule known (or observed) to move m messages may
// keep any single receive waiting DefaultTimeout + m×PerMessageBudget. The
// value is far above the per-message cost of the in-process transport, so a
// healthy schedule never exhausts it, while a genuinely deadlocked small
// schedule still fails near the base timeout.
const PerMessageBudget = 20 * time.Microsecond

// MaxBudget caps the scaled allowance so a deadlocked full-scale run fails
// within minutes instead of hanging for hours.
const MaxBudget = 15 * time.Minute

// ScaledTimeout returns the effective receive deadline for a schedule of
// the given total message count: the DefaultTimeout base plus the capped
// per-message budget.
func ScaledTimeout(messages int) time.Duration {
	return DefaultTimeout + budgetFor(messages)
}

// budgetFor converts a message count into the capped extra allowance.
func budgetFor(messages int) time.Duration {
	b := time.Duration(messages) * PerMessageBudget
	if b > MaxBudget {
		b = MaxBudget
	}
	return b
}

// raiseBudget CAS-maxes the allowance into the transport's budget cell:
// stale raises (smaller counts landing after larger ones) are no-ops.
func raiseBudget(budget *atomic.Int64, b time.Duration) {
	for {
		cur := budget.Load()
		if int64(b) <= cur {
			return
		}
		if budget.CompareAndSwap(cur, int64(b)) {
			return
		}
	}
}

// BudgetSetter is implemented by transports whose receive deadline scales
// with the schedule size. SetBudget grants every receive an allowance of
// DefaultTimeout (or the SetTimeout override) plus the capped per-message
// budget for the given count. Budgets only grow: a call below the current
// allowance is a no-op, so concurrent granters — many ranks observing
// different cumulative counts — can never regress the deadline, whatever
// order their raises land in. The Recorder calls it automatically as the
// recorded schedule grows, so callers rarely need to.
type BudgetSetter interface {
	SetBudget(messages int)
}

// ErrTimeout is returned when a receive waits longer than the fabric's
// timeout for a matching message.
var ErrTimeout = errors.New("fabric: receive timed out")

// ErrClosed is returned when operating on a closed fabric.
var ErrClosed = errors.New("fabric: closed")

// Comm is one rank's endpoint into a fabric. A Comm must only be used from
// the goroutine driving that rank, but different ranks' Comms may be used
// concurrently.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the fabric.
	Size() int
	// Send delivers a copy of data to rank `to`, tagged (step, sub).
	// It does not block on the receiver.
	Send(to, step, sub int, data []int32) error
	// Recv waits for the message from rank `from` tagged (step, sub) and
	// copies it into buf, which must have exactly the message's length.
	Recv(from, step, sub int, buf []int32) error
}

// Fabric is a set of ranks wired together by some transport.
type Fabric interface {
	Size() int
	// Comm returns the endpoint for the given rank.
	Comm(rank int) Comm
	// Close releases transport resources; pending receives fail.
	Close() error
}

// Run drives fn concurrently for every rank of the fabric and returns the
// first error any rank produced (all ranks are always joined first). It is
// the moral equivalent of mpirun for this runtime.
func Run(f Fabric, fn func(c Comm) error) error {
	p := f.Size()
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		go func(rank int) {
			defer func() {
				if rec := recover(); rec != nil {
					errs <- fmt.Errorf("fabric: rank %d panicked: %v", rank, rec)
				}
			}()
			errs <- fn(f.Comm(rank))
		}(r)
	}
	var first error
	for r := 0; r < p; r++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendRecv performs the pairwise exchange at the heart of every butterfly
// step: send sdata to peer and receive a message of len(rbuf) elements from
// the same peer, both tagged (step, sub).
func SendRecv(c Comm, peer, step, sub int, sdata, rbuf []int32) error {
	if err := c.Send(peer, step, sub, sdata); err != nil {
		return err
	}
	return c.Recv(peer, step, sub, rbuf)
}
