package fabric

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testTransport(t *testing.T, mk func(p int) Fabric) {
	t.Helper()

	t.Run("PairwisePingPong", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 0, 0, []int32{1, 2, 3}); err != nil {
					return err
				}
				buf := make([]int32, 3)
				if err := c.Recv(1, 1, 0, buf); err != nil {
					return err
				}
				for i, v := range buf {
					if v != int32(10*(i+1)) {
						return fmt.Errorf("got %v", buf)
					}
				}
				return nil
			}
			buf := make([]int32, 3)
			if err := c.Recv(0, 0, 0, buf); err != nil {
				return err
			}
			return c.Send(0, 1, 0, []int32{10, 20, 30})
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("OutOfOrderMatching", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			if c.Rank() == 0 {
				// Send tags in reverse order of how they will be received.
				for tag := 4; tag >= 0; tag-- {
					if err := c.Send(1, tag, 0, []int32{int32(tag)}); err != nil {
						return err
					}
				}
				return nil
			}
			for tag := 0; tag <= 4; tag++ {
				buf := make([]int32, 1)
				if err := c.Recv(0, tag, 0, buf); err != nil {
					return err
				}
				if buf[0] != int32(tag) {
					return fmt.Errorf("tag %d carried %d", tag, buf[0])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("SubTagsDistinguishSegments", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			if c.Rank() == 0 {
				for sub := 0; sub < 8; sub++ {
					if err := c.Send(1, 7, sub, []int32{int32(100 + sub)}); err != nil {
						return err
					}
				}
				return nil
			}
			for sub := 7; sub >= 0; sub-- {
				buf := make([]int32, 1)
				if err := c.Recv(0, 7, sub, buf); err != nil {
					return err
				}
				if buf[0] != int32(100+sub) {
					return fmt.Errorf("sub %d carried %d", sub, buf[0])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("AllToAllExchange", func(t *testing.T) {
		p := 8
		f := mk(p)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			for to := 0; to < p; to++ {
				if to == c.Rank() {
					continue
				}
				if err := c.Send(to, 0, 0, []int32{int32(c.Rank())}); err != nil {
					return err
				}
			}
			for from := 0; from < p; from++ {
				if from == c.Rank() {
					continue
				}
				buf := make([]int32, 1)
				if err := c.Recv(from, 0, 0, buf); err != nil {
					return err
				}
				if buf[0] != int32(from) {
					return fmt.Errorf("from %d carried %d", from, buf[0])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("LengthMismatchFails", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, 0, []int32{1, 2})
			}
			buf := make([]int32, 3)
			if err := c.Recv(0, 0, 0, buf); err == nil {
				return fmt.Errorf("length mismatch not detected")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("SendCopiesPayload", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		err := Run(f, func(c Comm) error {
			if c.Rank() == 0 {
				data := []int32{42}
				if err := c.Send(1, 0, 0, data); err != nil {
					return err
				}
				data[0] = 7 // must not affect the in-flight message
				return nil
			}
			time.Sleep(10 * time.Millisecond)
			buf := make([]int32, 1)
			if err := c.Recv(0, 0, 0, buf); err != nil {
				return err
			}
			if buf[0] != 42 {
				return fmt.Errorf("payload aliased sender buffer: %d", buf[0])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("SelfSendRejected", func(t *testing.T) {
		f := mk(2)
		defer f.Close()
		if err := f.Comm(0).Send(0, 0, 0, []int32{1}); err == nil {
			t.Fatal("self send not rejected")
		}
	})
}

func TestMemTransport(t *testing.T) {
	testTransport(t, func(p int) Fabric { return NewMem(p) })
}

func TestTCPTransport(t *testing.T) {
	testTransport(t, func(p int) Fabric {
		f, err := NewTCP(p)
		if err != nil {
			t.Fatal(err)
		}
		return f
	})
}

func TestMemTimeout(t *testing.T) {
	f := NewMem(2)
	defer f.Close()
	f.SetTimeout(20 * time.Millisecond)
	err := f.Comm(0).Recv(1, 0, 0, make([]int32, 1))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want timeout", err)
	}
}

func TestScaledTimeout(t *testing.T) {
	if got := ScaledTimeout(0); got != DefaultTimeout {
		t.Fatalf("zero-message budget: %v, want %v", got, DefaultTimeout)
	}
	if got, want := ScaledTimeout(1_000_000), DefaultTimeout+1_000_000*PerMessageBudget; got != want {
		t.Fatalf("1M-message budget: %v, want %v", got, want)
	}
	if got, want := ScaledTimeout(1<<40), DefaultTimeout+MaxBudget; got != want {
		t.Fatalf("huge budget not capped: %v, want %v", got, want)
	}
}

// longSchedule is the deadline-scaling scenario: rank 0 streams `msgs` tiny
// messages, stalls, then sends a final one that rank 1 has been blocked on
// all along. The final receive must wait out the stall, which only a budget
// scaled to the schedule length allows under a short base timeout.
func longSchedule(f Fabric, msgs int, stall time.Duration) error {
	return Run(f, func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 0, i, []int32{int32(i)}); err != nil {
					return err
				}
			}
			time.Sleep(stall)
			return c.Send(1, 1, 0, []int32{-1})
		}
		return c.Recv(0, 1, 0, make([]int32, 1))
	})
}

// TestDeadlineScalesWithScheduleLength pins the fig11b -full fix: a long
// schedule under an artificially short base timeout succeeds when the
// Recorder auto-scales the deadline with the trace length, and the same
// schedule fails with scaling off (no Recorder, flat base timeout).
func TestDeadlineScalesWithScheduleLength(t *testing.T) {
	const msgs = 16384 // budget: 16384 × PerMessageBudget ≈ 327ms
	base := 20 * time.Millisecond
	stall := 150 * time.Millisecond

	raw := NewMem(2)
	raw.SetTimeout(base)
	err := longSchedule(raw, msgs, stall)
	raw.Close()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("flat base timeout survived the stall: %v", err)
	}

	scaled := NewMem(2)
	scaled.SetTimeout(base)
	rec := NewRecorder(scaled)
	defer rec.Close()
	if err := longSchedule(rec, msgs, stall); err != nil {
		t.Fatalf("auto-scaled deadline timed out: %v", err)
	}
	if got := rec.Trace().NumRecords(); got != msgs+1 {
		t.Fatalf("recorded %d messages, want %d", got, msgs+1)
	}
}

// TestSetBudgetExtendsBlockedReceive pins the live re-evaluation: a budget
// raised while the receiver is already blocked extends the wait in place.
func TestSetBudgetExtendsBlockedReceive(t *testing.T) {
	f := NewMem(2)
	defer f.Close()
	f.SetTimeout(30 * time.Millisecond)
	err := Run(f, func(c Comm) error {
		if c.Rank() == 0 {
			time.Sleep(10 * time.Millisecond) // let rank 1 block first
			f.SetBudget(100_000)              // ≈ 2s allowance
			time.Sleep(100 * time.Millisecond)
			return c.Send(1, 0, 0, []int32{7})
		}
		return c.Recv(0, 0, 0, make([]int32, 1))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBudgetMonotone pins BudgetSetter's only-grow contract: a stale raise
// landing after a larger one (concurrent granters race their SetBudget
// calls) must not shrink the allowance.
func TestBudgetMonotone(t *testing.T) {
	f := NewMem(2)
	defer f.Close()
	f.SetBudget(100_000)
	want := ScaledTimeout(100_000)
	if got := f.recvTimeout(); got != want {
		t.Fatalf("budget: %v, want %v", got, want)
	}
	f.SetBudget(1) // stale raise
	if got := f.recvTimeout(); got != want {
		t.Fatalf("stale raise shrank the budget: %v, want %v", got, want)
	}
	f.SetBudget(200_000)
	if got, want := f.recvTimeout(), ScaledTimeout(200_000); got != want {
		t.Fatalf("larger raise ignored: %v, want %v", got, want)
	}
}

func TestTCPSetBudget(t *testing.T) {
	f, err := NewTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.SetTimeout(20 * time.Millisecond)
	f.SetBudget(100_000) // ≈ 2s allowance
	err = Run(f, func(c Comm) error {
		if c.Rank() == 0 {
			time.Sleep(100 * time.Millisecond)
			return c.Send(1, 0, 0, []int32{7})
		}
		return c.Recv(0, 0, 0, make([]int32, 1))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemClosedFabric(t *testing.T) {
	f := NewMem(2)
	f.Close()
	if err := f.Comm(0).Send(1, 0, 0, []int32{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := f.Comm(0).Recv(1, 0, 0, make([]int32, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	f := NewMem(2)
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		errc <- f.Comm(0).Recv(1, 0, 0, make([]int32, 1))
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	wg.Wait()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	f := NewMem(2)
	defer f.Close()
	err := Run(f, func(c Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	f := NewMem(4)
	defer f.Close()
	want := errors.New("rank failure")
	err := Run(f, func(c Comm) error {
		if c.Rank() == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestRecorderCapturesTrace(t *testing.T) {
	rec := NewRecorder(NewMem(4))
	defer rec.Close()
	err := Run(rec, func(c Comm) error {
		// Step 0: ring shift; step 1: rank 0 segments a message to rank 2.
		next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
		if err := c.Send(next, 0, 0, make([]int32, 10)); err != nil {
			return err
		}
		if err := c.Recv(prev, 0, 0, make([]int32, 10)); err != nil {
			return err
		}
		switch c.Rank() {
		case 0:
			for sub := 0; sub < 3; sub++ {
				if err := c.Send(2, 1, sub, make([]int32, 5)); err != nil {
					return err
				}
			}
		case 2:
			for sub := 0; sub < 3; sub++ {
				if err := c.Recv(0, 1, sub, make([]int32, 5)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if tr.P != 4 {
		t.Fatalf("P = %d", tr.P)
	}
	if got, want := tr.NumRecords(), 4+3; got != want {
		t.Fatalf("%d records, want %d", got, want)
	}
	steps := tr.Steps()
	if len(steps) != 2 || len(steps[0]) != 4 || len(steps[1]) != 3 {
		t.Fatalf("steps: %d/%v", len(steps), steps)
	}
	if tr.TotalElems() != 4*10+3*5 {
		t.Fatalf("total elems %d", tr.TotalElems())
	}
	if tr.MaxMessagesPerSender() != 3 {
		t.Fatalf("max messages per sender %d", tr.MaxMessagesPerSender())
	}
	// Determinism: records sorted by (step, from, to, sub).
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if a.Step > b.Step || (a.Step == b.Step && a.From > b.From) {
			t.Fatalf("trace not sorted: %+v before %+v", a, b)
		}
	}
}

func TestManyRanksStress(t *testing.T) {
	p := 256
	f := NewMem(p)
	defer f.Close()
	// Butterfly-style exchange across 8 steps with payload verification.
	err := Run(f, func(c Comm) error {
		for step := 0; (1 << step) < p; step++ {
			peer := c.Rank() ^ (1 << step)
			want := int32(peer*100 + step)
			if err := c.Send(peer, step, 0, []int32{int32(c.Rank()*100 + step)}); err != nil {
				return err
			}
			buf := make([]int32, 1)
			if err := c.Recv(peer, step, 0, buf); err != nil {
				return err
			}
			if buf[0] != want {
				return fmt.Errorf("step %d: got %d want %d", step, buf[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
