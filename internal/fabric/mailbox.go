package fabric

import (
	"fmt"
	"sync"
	"time"
)

// message is one in-flight point-to-point transfer.
type message struct {
	from, step, sub int
	data            []int32
}

// mailbox is a rank's incoming message queue with out-of-order matching:
// receives specify (from, step, sub) and messages may arrive in any order.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message; the data slice must already be owned by the
// mailbox (callers copy).
func (m *mailbox) put(msg message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	return nil
}

// take waits until a message matching (from, step, sub) is available and
// removes it from the queue. The timeout is a live value, re-evaluated on
// every wake-up: a budget raised while the receiver is already blocked
// (the Recorder auto-scales as a schedule grows) extends the wait in place.
func (m *mailbox) take(from, step, sub int, timeout func() time.Duration) (message, error) {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return message{}, ErrClosed
		}
		for i, msg := range m.pending {
			if msg.from == from && msg.step == step && msg.sub == sub {
				last := len(m.pending) - 1
				m.pending[i] = m.pending[last]
				m.pending = m.pending[:last]
				return msg, nil
			}
		}
		remaining := time.Until(start.Add(timeout()))
		if remaining <= 0 {
			return message{}, fmt.Errorf("%w: waiting for (from=%d step=%d sub=%d)", ErrTimeout, from, step, sub)
		}
		// sync.Cond has no timed wait; a one-shot timer broadcasting the
		// condition bounds the sleep.
		timer := time.AfterFunc(remaining, m.cond.Broadcast)
		m.cond.Wait()
		timer.Stop()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
