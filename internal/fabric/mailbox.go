package fabric

import (
	"fmt"
	"sync"
	"time"
)

// message is one in-flight point-to-point transfer. Payloads of up to
// inlineElems elements are stored inline in the struct — unit-granularity
// trace recordings move hundreds of millions of 1-element blocks, and
// keeping those off the heap removes an allocation per message — while
// larger payloads ride an owned slice.
type message struct {
	from, step, sub int
	n               int32 // payload length in elements
	inline          [inlineElems]int32
	data            []int32 // nil when the payload is inline
}

// inlineElems is the largest payload stored inside the message struct.
const inlineElems = 2

// newMessage builds a message owning a copy of data.
func newMessage(from, step, sub int, data []int32) message {
	msg := message{from: from, step: step, sub: sub, n: int32(len(data))}
	if len(data) <= inlineElems {
		copy(msg.inline[:], data)
	} else {
		msg.data = make([]int32, len(data))
		copy(msg.data, data)
	}
	return msg
}

// payload returns the message's element slice regardless of storage.
func (m *message) payload() []int32 {
	if m.data != nil {
		return m.data
	}
	return m.inline[:m.n]
}

// copyInto checks the length contract and copies the payload into buf.
func (m *message) copyInto(rank, from, step, sub int, buf []int32) error {
	if int(m.n) != len(buf) {
		return fmt.Errorf("fabric: rank %d recv from %d (step=%d sub=%d): got %d elems, want %d",
			rank, from, step, sub, m.n, len(buf))
	}
	copy(buf, m.payload())
	return nil
}

// mailbox is a rank's incoming message queue with out-of-order matching:
// receives specify (from, step, sub) and messages may arrive in any order.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message; the payload must already be owned by the mailbox
// (callers construct via newMessage, which copies).
func (m *mailbox) put(msg message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	return nil
}

// take waits until a message matching (from, step, sub) is available and
// removes it from the queue. The timeout is a live value, re-evaluated on
// every wake-up: a budget raised while the receiver is already blocked
// (the Recorder auto-scales as a schedule grows) extends the wait in place.
func (m *mailbox) take(from, step, sub int, timeout func() time.Duration) (message, error) {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return message{}, ErrClosed
		}
		for i := range m.pending {
			msg := &m.pending[i]
			if msg.from == from && msg.step == step && msg.sub == sub {
				out := *msg
				last := len(m.pending) - 1
				m.pending[i] = m.pending[last]
				m.pending[last] = message{} // release the payload reference
				m.pending = m.pending[:last]
				return out, nil
			}
		}
		remaining := time.Until(start.Add(timeout()))
		if remaining <= 0 {
			return message{}, fmt.Errorf("%w: waiting for (from=%d step=%d sub=%d)", ErrTimeout, from, step, sub)
		}
		// sync.Cond has no timed wait; a one-shot timer broadcasting the
		// condition bounds the sleep.
		timer := time.AfterFunc(remaining, m.cond.Broadcast)
		m.cond.Wait()
		timer.Stop()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
