package fabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary trace codec: the on-disk format of internal/tracestore. The format
// is compact (delta-zigzag varints exploit the sorted (step, from, to, sub)
// order Recorder.Trace produces), versioned (CodecVersion joins the store's
// content address, so a format change can never misparse old files as new
// ones) and self-checking (a CRC over the payload turns torn or corrupted
// writes into decode errors instead of silently wrong traces).

// CodecVersion identifies the trace wire format. Bump it on any encoding
// change; the trace store folds it into every content address, so files
// written by older codecs are simply never found again.
const CodecVersion = 1

// traceMagic opens every encoded trace.
var traceMagic = [4]byte{'B', 'T', 'R', 'C'}

// EncodeTrace writes tr in the versioned binary format.
func EncodeTrace(w io.Writer, tr *Trace) error {
	buf := make([]byte, 0, 16+10*len(tr.Records))
	buf = binary.AppendUvarint(buf, CodecVersion)
	buf = binary.AppendUvarint(buf, uint64(tr.P))
	buf = binary.AppendUvarint(buf, uint64(len(tr.Records)))
	var prev Record
	for _, r := range tr.Records {
		buf = binary.AppendVarint(buf, int64(r.Step-prev.Step))
		buf = binary.AppendVarint(buf, int64(r.From-prev.From))
		buf = binary.AppendVarint(buf, int64(r.To-prev.To))
		buf = binary.AppendUvarint(buf, uint64(r.Sub))
		buf = binary.AppendUvarint(buf, uint64(r.Elems))
		prev = r
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf))
	for _, chunk := range [][]byte{traceMagic[:], buf, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTrace parses a trace encoded by EncodeTrace, rejecting wrong magic,
// unknown versions, checksum mismatches, truncation and out-of-range fields.
func DecodeTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fabric: reading trace: %w", err)
	}
	if len(raw) < len(traceMagic)+4 || string(raw[:4]) != string(traceMagic[:]) {
		return nil, fmt.Errorf("fabric: not an encoded trace")
	}
	payload, sum := raw[4:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sum) {
		return nil, fmt.Errorf("fabric: trace checksum mismatch")
	}
	d := varintReader{buf: payload}
	version := d.uvarint()
	if version != CodecVersion {
		return nil, fmt.Errorf("fabric: trace codec version %d, want %d", version, CodecVersion)
	}
	p := d.uvarint()
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if p == 0 || p > 1<<24 {
		return nil, fmt.Errorf("fabric: trace rank count %d out of range", p)
	}
	if count > uint64(len(payload))/5 { // every record costs ≥ 5 payload bytes (5 varints)
		return nil, fmt.Errorf("fabric: trace record count %d exceeds payload", count)
	}
	tr := &Trace{P: int(p)}
	if count > 0 {
		tr.Records = make([]Record, count)
	}
	var prev Record
	for i := range tr.Records {
		rec := Record{
			Step:  prev.Step + int(d.varint()),
			From:  prev.From + int(d.varint()),
			To:    prev.To + int(d.varint()),
			Sub:   int(d.uvarint()),
			Elems: int(d.uvarint()),
		}
		if d.err != nil {
			return nil, d.err
		}
		if rec.Step < 0 || rec.Sub < 0 || rec.Elems < 0 ||
			rec.From < 0 || rec.From >= tr.P || rec.To < 0 || rec.To >= tr.P {
			return nil, fmt.Errorf("fabric: trace record %d out of range: %+v", i, rec)
		}
		tr.Records[i] = rec
		prev = rec
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("fabric: %d trailing bytes after trace", len(d.buf))
	}
	return tr, nil
}

// varintReader consumes varints from a byte slice, latching the first error.
type varintReader struct {
	buf []byte
	err error
}

func (d *varintReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("fabric: truncated trace varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *varintReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("fabric: truncated trace varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}
