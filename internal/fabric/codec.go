package fabric

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary trace codec: the on-disk format of internal/tracestore. The format
// is compact (delta-zigzag varints exploit the sorted (step, from, to, sub)
// order Recorder.Trace produces), versioned (CodecVersion joins the store's
// content address, so a format change can never misparse old files as new
// ones) and self-checking (a CRC over the payload turns torn or corrupted
// writes into decode errors instead of silently wrong traces). The encoder
// and decoder work straight off the Trace's columns; the wire bytes are
// identical to the former []Record-based codec, so existing stores stay
// warm.

// CodecVersion identifies the trace wire format. Bump it on any encoding
// change; the trace store folds it into every content address, so files
// written by older codecs are simply never found again.
const CodecVersion = 1

// traceMagic opens every encoded trace.
var traceMagic = [4]byte{'B', 'T', 'R', 'C'}

// EncodeTrace writes tr in the versioned binary format.
func EncodeTrace(w io.Writer, tr *Trace) error {
	n := tr.NumRecords()
	buf := make([]byte, 0, 16+10*n)
	buf = binary.AppendUvarint(buf, CodecVersion)
	buf = binary.AppendUvarint(buf, uint64(tr.P))
	buf = binary.AppendUvarint(buf, uint64(n))
	var prevStep, prevFrom, prevTo int64
	for i := 0; i < n; i++ {
		step, from, to := int64(tr.cStep[i]), int64(tr.cFrom[i]), int64(tr.cTo[i])
		buf = binary.AppendVarint(buf, step-prevStep)
		buf = binary.AppendVarint(buf, from-prevFrom)
		buf = binary.AppendVarint(buf, to-prevTo)
		buf = binary.AppendUvarint(buf, uint64(tr.cSub[i]))
		buf = binary.AppendUvarint(buf, uint64(tr.cElems[i]))
		prevStep, prevFrom, prevTo = step, from, to
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf))
	for _, chunk := range [][]byte{traceMagic[:], buf, sum[:]} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTrace parses a trace encoded by EncodeTrace, rejecting wrong magic,
// unknown versions, checksum mismatches, truncation and out-of-range fields.
func DecodeTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fabric: reading trace: %w", err)
	}
	return DecodeTraceBytes(raw)
}

// DecodeTraceBytes is DecodeTrace over an in-memory encoding (the trace
// store reads whole files and decodes without an intermediate copy).
func DecodeTraceBytes(raw []byte) (*Trace, error) {
	if len(raw) < len(traceMagic)+4 || string(raw[:4]) != string(traceMagic[:]) {
		return nil, fmt.Errorf("fabric: not an encoded trace")
	}
	payload, sum := raw[4:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sum) {
		return nil, fmt.Errorf("fabric: trace checksum mismatch")
	}
	d := varintReader{buf: payload}
	version := d.uvarint()
	if version != CodecVersion {
		return nil, fmt.Errorf("fabric: trace codec version %d, want %d", version, CodecVersion)
	}
	p := d.uvarint()
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if p == 0 || p > 1<<24 {
		return nil, fmt.Errorf("fabric: trace rank count %d out of range", p)
	}
	if count > uint64(len(payload))/5 { // every record costs ≥ 5 payload bytes (5 varints)
		return nil, fmt.Errorf("fabric: trace record count %d exceeds payload", count)
	}
	n := int(count)
	step, from, to, sub, elems := makeColumns(n)
	var prevStep, prevFrom, prevTo int64
	for i := 0; i < n; i++ {
		recStep := prevStep + d.varint()
		recFrom := prevFrom + d.varint()
		recTo := prevTo + d.varint()
		recSub := int64(d.uvarint())
		recElems := int64(d.uvarint())
		if d.err != nil {
			return nil, d.err
		}
		if recStep < 0 || recStep > math.MaxInt32 || recSub < 0 || recSub > math.MaxInt32 ||
			recElems < 0 || recElems > math.MaxInt32 ||
			recFrom < 0 || recFrom >= int64(p) || recTo < 0 || recTo >= int64(p) {
			return nil, fmt.Errorf("fabric: trace record %d out of range: step=%d from=%d to=%d sub=%d elems=%d",
				i, recStep, recFrom, recTo, recSub, recElems)
		}
		step[i] = int32(recStep)
		from[i] = int32(recFrom)
		to[i] = int32(recTo)
		sub[i] = int32(recSub)
		elems[i] = int32(recElems)
		prevStep, prevFrom, prevTo = recStep, recFrom, recTo
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("fabric: %d trailing bytes after trace", len(d.buf))
	}
	return newTraceColumns(int(p), step, from, to, sub, elems), nil
}

// varintReader consumes varints from a byte slice, latching the first error.
type varintReader struct {
	buf []byte
	err error
}

func (d *varintReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("fabric: truncated trace varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *varintReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("fabric: truncated trace varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}
