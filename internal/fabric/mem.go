package fabric

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Mem is the in-process transport: each rank has a mailbox and Send copies
// the payload straight into the destination mailbox. It scales to thousands
// of ranks and is the default substrate for correctness tests and trace
// recording.
type Mem struct {
	boxes   []*mailbox
	timeout atomic.Int64 // base receive timeout, nanoseconds
	budget  atomic.Int64 // scaled schedule allowance, nanoseconds
}

// NewMem creates an in-process fabric with p ranks.
func NewMem(p int) *Mem {
	f := &Mem{boxes: make([]*mailbox, p)}
	f.timeout.Store(int64(DefaultTimeout))
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	return f
}

// SetTimeout adjusts the base receive timeout (tests exercising failure
// paths use short timeouts). It may be called while receives are blocked.
func (f *Mem) SetTimeout(d time.Duration) { f.timeout.Store(int64(d)) }

// SetBudget grants every receive the capped per-message allowance for a
// schedule of the given message count on top of the base timeout. Blocked
// receives observe a raised budget in place (the deadline is re-derived on
// every wake-up), which is what lets the Recorder extend deadlines while a
// long schedule is already in flight. The allowance is monotone (see
// BudgetSetter): stale concurrent raises never shrink it.
func (f *Mem) SetBudget(messages int) { raiseBudget(&f.budget, budgetFor(messages)) }

// recvTimeout is the live effective deadline: base plus scaled budget.
func (f *Mem) recvTimeout() time.Duration {
	return time.Duration(f.timeout.Load() + f.budget.Load())
}

// Size returns the number of ranks.
func (f *Mem) Size() int { return len(f.boxes) }

// Comm returns rank's endpoint.
func (f *Mem) Comm(rank int) Comm {
	if rank < 0 || rank >= len(f.boxes) {
		panic(fmt.Sprintf("fabric: rank %d out of range [0,%d)", rank, len(f.boxes)))
	}
	return &memComm{f: f, rank: rank}
}

// Close shuts every mailbox down; pending receives fail with ErrClosed.
func (f *Mem) Close() error {
	for _, b := range f.boxes {
		b.close()
	}
	return nil
}

type memComm struct {
	f    *Mem
	rank int
}

func (c *memComm) Rank() int { return c.rank }
func (c *memComm) Size() int { return len(c.f.boxes) }

func (c *memComm) Send(to, step, sub int, data []int32) error {
	if to < 0 || to >= len(c.f.boxes) {
		return fmt.Errorf("fabric: send to rank %d of %d", to, len(c.f.boxes))
	}
	if to == c.rank {
		return fmt.Errorf("fabric: rank %d sending to itself", to)
	}
	return c.f.boxes[to].put(newMessage(c.rank, step, sub, data))
}

func (c *memComm) Recv(from, step, sub int, buf []int32) error {
	msg, err := c.f.boxes[c.rank].take(from, step, sub, c.f.recvTimeout)
	if err != nil {
		return fmt.Errorf("fabric: rank %d recv: %w", c.rank, err)
	}
	return msg.copyInto(c.rank, from, step, sub, buf)
}
