// Command binebenchd serves the Bine Trees paper artifacts over HTTP: a
// long-running daemon that answers (experiment, systems, scale) requests
// from warm trace caches instead of re-running the suite per invocation.
//
// At startup it binds -addr immediately and prewarms the shared
// -trace-cache directory in the background — every stored trace is
// decode-validated (corrupt files are evicted) and the resident footprint
// is logged. /healthz answers 200 from the first instant (liveness);
// /readyz stays 503 until the prewarm pass completes (readiness), then
// reports the validated footprint and how long the pass took:
//
//	GET /artifact/{experiment}?systems=...&full=...  streamed text artifact
//	GET /healthz                                     liveness (always 200)
//	GET /readyz                                      readiness; 503 while prewarming
//	GET /statsz                                      counters as JSON
//	GET /metrics                                     Prometheus text format
//	GET /tracez                                      recent + slowest request timelines
//
// Responses are byte-identical to the binebench CLI's output for the same
// request: both compile the experiment through the same plan path and render
// with the same serial pass (diffed in tests and CI). Identical concurrent
// requests are deduplicated by singleflight on the compiled plan key, so a
// thundering herd of the same artifact resolves each schedule once; all
// requests share one resident process-wide worker pool and trace cache.
// Cold schedules are synthesized directly from schedule math (byte-identical
// to fabric recordings; -synth=false forces the recording path, and
// -verify-synth cross-checks every synthesis against a recording), and
// /statsz reports the resolver-chain counters — synthesized, verified,
// fallbacks, recordings — alongside the cache and request stats. Replicas
// may share one -trace-cache directory: stored traces are written
// world-readable and corrupt files self-evict on either side.
//
// Overload protection: at most -max-flights non-follower renders run
// concurrently, at most -queue-budget further flights wait for a slot, and
// anything beyond that is shed with 429 Too Many Requests + a Retry-After
// computed from recent p95 serve latency. Followers joining an in-flight
// render are never shed. If the -trace-cache directory turns read-only or
// fills up mid-flight, the store flips to a degraded read-only mode —
// requests keep succeeding from memory and synthesis, /statsz reports the
// degradation, and the store probes periodically for recovery.
//
// Every request carries a request ID (the client's X-Request-ID header, or
// a generated one), echoed on the response and stamped on the JSON access
// log line written per /artifact request (-access-log; stderr by default).
// /metrics exposes stage latency histograms, resolver-origin counters and
// pool gauges in Prometheus text format with no client dependency, and
// /tracez returns the recent and slowest per-request stage timelines.
// -debug-addr serves net/http/pprof on a separate listener so profiling
// stays off the artifact port.
//
// Usage:
//
//	binebenchd -addr :8080 -trace-cache /var/cache/binetrees
//	binebenchd -addr :8080 -debug-addr localhost:6060 -access-log access.jsonl
//	curl localhost:8080/artifact/fig9a
//	curl 'localhost:8080/artifact/all?systems=lumi,fugaku&full=true'
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"binetrees/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = disabled)")
	accessLog := flag.String("access-log", "stderr", "JSON access log destination: stderr, stdout, a file path (appended), or off")
	traceCache := flag.String("trace-cache", "", "directory of the shared persistent trace store, prewarmed in the background at startup (empty = in-process cache only)")
	workers := flag.Int("workers", 0, "resident worker pool width shared by all requests (0 = one per CPU)")
	synthOn := flag.Bool("synth", true, "synthesize cold traces directly from schedule math instead of recording on the goroutine fabric")
	verifySynth := flag.Bool("verify-synth", false, "record every synthesized trace on the fabric too and fail on any encoded-byte difference")
	maxFlights := flag.Int("max-flights", 0, "max concurrent non-follower renders before new flights queue (0 = twice the pool width, min 4)")
	queueBudget := flag.Int("queue-budget", 0, "max flights waiting for a render slot before further ones are shed with 429 (0 = max-flights)")
	flag.Parse()

	logDst, logClose, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatalf("binebenchd: %v", err)
	}
	if logClose != nil {
		defer logClose()
	}

	srv, err := service.New(service.Config{
		TraceDir:     *traceCache,
		Workers:      *workers,
		DisableSynth: !*synthOn,
		VerifySynth:  *verifySynth,
		AccessLog:    logDst,
		MaxFlights:   *maxFlights,
		QueueBudget:  *queueBudget,
	})
	if err != nil {
		log.Fatalf("binebenchd: %v", err)
	}
	if *traceCache != "" {
		// The prewarm pass runs in the background; log its outcome when it
		// lands without holding the listener back. /readyz gates on it. The
		// blocking Prewarm() call must sit inside the goroutine body: a bare
		// `go log.Printf(..., srv.Prewarm())` would evaluate the argument in
		// this goroutine and stall the listener for the whole prewarm.
		go func() { log.Printf("binebenchd: %v", srv.Prewarm()) }()
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	log.Printf("binebenchd: serving artifacts on %s", *addr)

	if *debugAddr != "" {
		// net/http/pprof registers on the default mux; serving that mux on a
		// dedicated listener keeps profiling off the artifact port entirely.
		go func() {
			log.Printf("binebenchd: serving pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, http.DefaultServeMux); err != nil {
				log.Printf("binebenchd: pprof listener: %v", err)
			}
		}()
	}

	select {
	case err := <-done:
		log.Fatalf("binebenchd: %v", err)
	case <-ctx.Done():
	}
	log.Print("binebenchd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("binebenchd: shutdown: %v", err)
	}
	srv.Close()
}

// openAccessLog resolves the -access-log destination. The returned closer is
// non-nil only when a file was opened.
func openAccessLog(dst string) (io.Writer, func() error, error) {
	switch dst {
	case "off", "":
		return nil, nil, nil
	case "stderr":
		return os.Stderr, nil, nil
	case "stdout":
		return os.Stdout, nil, nil
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("access log: %w", err)
	}
	return f, f.Close, nil
}
