// Command binebenchd serves the Bine Trees paper artifacts over HTTP: a
// long-running daemon that answers (experiment, systems, scale) requests
// from warm trace caches instead of re-running the suite per invocation.
//
// At startup it prewarms the shared -trace-cache directory — every stored
// trace is decode-validated (corrupt files are evicted) and the resident
// footprint is logged — then listens on -addr:
//
//	GET /artifact/{experiment}?systems=...&full=...  streamed text artifact
//	GET /healthz                                     liveness
//	GET /statsz                                      counters as JSON
//
// Responses are byte-identical to the binebench CLI's output for the same
// request: both compile the experiment through the same plan path and render
// with the same serial pass (diffed in tests and CI). Identical concurrent
// requests are deduplicated by singleflight on the compiled plan key, so a
// thundering herd of the same artifact resolves each schedule once; all
// requests share one resident process-wide worker pool and trace cache.
// Cold schedules are synthesized directly from schedule math (byte-identical
// to fabric recordings; -synth=false forces the recording path, and
// -verify-synth cross-checks every synthesis against a recording), and
// /statsz reports the resolver-chain counters — synthesized, verified,
// fallbacks, recordings — alongside the cache and request stats. Replicas
// may share one -trace-cache directory: stored traces are written
// world-readable and corrupt files self-evict on either side.
//
// Usage:
//
//	binebenchd -addr :8080 -trace-cache /var/cache/binetrees
//	curl localhost:8080/artifact/fig9a
//	curl 'localhost:8080/artifact/all?systems=lumi,fugaku&full=true'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"binetrees/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	traceCache := flag.String("trace-cache", "", "directory of the shared persistent trace store, prewarmed at startup (empty = in-process cache only)")
	workers := flag.Int("workers", 0, "resident worker pool width shared by all requests (0 = one per CPU)")
	synthOn := flag.Bool("synth", true, "synthesize cold traces directly from schedule math instead of recording on the goroutine fabric")
	verifySynth := flag.Bool("verify-synth", false, "record every synthesized trace on the fabric too and fail on any encoded-byte difference")
	flag.Parse()

	srv, err := service.New(service.Config{
		TraceDir:     *traceCache,
		Workers:      *workers,
		DisableSynth: !*synthOn,
		VerifySynth:  *verifySynth,
	})
	if err != nil {
		log.Fatalf("binebenchd: %v", err)
	}
	if *traceCache != "" {
		log.Printf("binebenchd: %v", srv.Prewarm())
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	log.Printf("binebenchd: serving artifacts on %s", *addr)

	select {
	case err := <-done:
		log.Fatalf("binebenchd: %v", err)
	case <-ctx.Done():
	}
	log.Print("binebenchd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("binebenchd: shutdown: %v", err)
	}
	srv.Close()
}
