// Command binebench regenerates the tables and figures of the Bine Trees
// paper (SC '25) on the simulated systems. Each experiment prints a text
// rendering of the corresponding paper artifact; EXPERIMENTS.md at the
// repository root maps every experiment name to its paper artifact.
//
// Every experiment compiles to a flat job graph of independent recording
// and evaluation cells. A single experiment drains its cells on its own
// worker pool (one worker per CPU by default; -workers overrides);
// -experiment all compiles all experiments up front and drains every
// system's cells — LUMI, Leonardo, MareNostrum, Fugaku — on one shared
// process-wide pool, with -systems selecting a subset of the artifact
// groups and -progress reporting live per-system cell counts on stderr.
// Receive deadlines in the recording fabric scale with the schedule
// length, so full-scale recordings (the 8192-node Fugaku ring) complete
// instead of tripping the flat timeout. Artifacts are byte-identical at
// any pool width and sharding (pinned by tests). Traces are stored columnar
// (struct-of-arrays int32), with replay running off the step index, cached
// routes and dense scratch — see EXPERIMENTS.md "Performance".
//
// Cold schedules are synthesized directly from schedule math (a serial
// pattern walk, no goroutine fabric) and are byte-identical to fabric
// recordings; the fabric remains the fallback and the verification oracle.
// -synth=false forces the recording path, and -verify-synth records every
// synthesized schedule too, failing on any encoded-byte difference (CI's
// equivalence gate). With -trace-cache the resolved traces also persist to
// a content-addressed on-disk store shared across runs — a warm store makes
// repeated -full runs and CI sweeps skip even synthesis. -v prints the
// cache counters (memory/disk hits, synthesized/verified/fallback counts,
// recordings, evictions, and the resident columnar footprint) to stderr so
// warm and cold runs are observable, followed by the per-stage latency
// breakdown — compile, execute, render, cache-lookup, store-load, synth,
// fabric-record, evaluate — and the per-origin resolve histograms (count,
// total, p50/p95/p99). -obs-json dumps the full metric registry (counters,
// gauges, histogram buckets) as JSON for offline analysis; it shares one
// metric vocabulary with binebenchd's /metrics endpoint, so sweep runs and
// served runs are joinable.
//
// Usage:
//
//	binebench -experiment all                     # everything, quick sweep
//	binebench -experiment table3 -full            # one artifact at full paper scale
//	binebench -experiment all -systems lumi,fugaku -progress
//	binebench -experiment all -workers 1
//	binebench -experiment all -trace-cache ~/.cache/binetrees -v
//	binebench -experiment all -verify-synth       # synthesis vs fabric oracle
//	binebench -experiment fig11b -obs-json obs.json
//
// Experiments: fig1, eq2, fig5, table3, fig9a, fig9b, table4, fig10a,
// fig10b, table5, fig11a, fig11b, fig14, hier, ppn, appD, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"

	"binetrees/internal/harness"
	"binetrees/internal/obs"
)

func main() {
	experiment := flag.String("experiment", "all", "which paper artifact to regenerate")
	full := flag.Bool("full", false, "run the full paper-scale sweep (slower) instead of the quick one")
	workers := flag.Int("workers", 0, "sweep worker pool width (0 = one per CPU)")
	systems := flag.String("systems", "", "comma-separated system keys restricting -experiment all ("+strings.Join(harness.SystemKeys(), ", ")+"); empty = all")
	progress := flag.Bool("progress", false, "report live per-system cell counts on stderr")
	traceCache := flag.String("trace-cache", "", "directory of the persistent trace store (empty = in-process cache only)")
	synthOn := flag.Bool("synth", true, "synthesize cold traces directly from schedule math instead of recording on the goroutine fabric")
	verifySynth := flag.Bool("verify-synth", false, "record every synthesized trace on the fabric too and fail on any encoded-byte difference")
	verbose := flag.Bool("v", false, "print trace-cache statistics and the stage latency breakdown to stderr after the run")
	obsJSON := flag.String("obs-json", "", "write the observability registry snapshot (counters, gauges, histogram buckets) as JSON to this file after the run (\"-\" = stderr)")
	flag.Parse()
	if *systems != "" && *experiment != "all" {
		fmt.Fprintln(os.Stderr, "binebench: -systems only applies to -experiment all")
		os.Exit(2)
	}
	harness.SetSynthesis(*synthOn)
	harness.SetVerifySynth(*verifySynth)
	if err := harness.SetTraceStore(*traceCache); err != nil {
		fmt.Fprintln(os.Stderr, "binebench:", err)
		os.Exit(1)
	}
	opts := harness.Options{Quick: !*full, Workers: *workers}
	if *systems != "" {
		opts.Systems = strings.Split(*systems, ",")
	}
	if *progress {
		opts.Progress = progressPrinter(os.Stderr)
	}
	// The process-lifetime context, cancelled on interrupt: Ctrl-C stops
	// dispatching cells (in-flight ones complete, keeping the shared caches
	// consistent) instead of killing the run mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx, os.Stdout, *experiment, opts)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, harness.TraceCacheStats())
		printStageBreakdown(os.Stderr)
	}
	if *obsJSON != "" {
		if derr := dumpObsJSON(*obsJSON); derr != nil {
			fmt.Fprintln(os.Stderr, "binebench:", derr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "binebench:", err)
		os.Exit(1)
	}
}

// printStageBreakdown renders the pipeline stage and resolver-origin latency
// histograms accumulated over the run — the -v observability report. Stages
// with no observations (e.g. store-load without -trace-cache) are omitted.
func printStageBreakdown(w io.Writer) {
	var stages, resolves []obs.MetricSnapshot
	for _, s := range obs.Default.Snapshot() {
		if s.Histogram == nil || s.Histogram.Count == 0 {
			continue
		}
		switch s.Name {
		case "binebench_stage_seconds":
			stages = append(stages, s)
		case "binebench_resolve_seconds":
			resolves = append(resolves, s)
		}
	}
	print := func(title string, snaps []obs.MetricSnapshot) {
		if len(snaps) == 0 {
			return
		}
		fmt.Fprintln(w, title)
		for _, s := range snaps {
			h := s.Histogram
			fmt.Fprintf(w, "  %-24s n=%-7d total=%9.3fs  p50=%s p95=%s p99=%s\n",
				s.Labels, h.Count, h.Sum, fmtSeconds(h.P50), fmtSeconds(h.P95), fmtSeconds(h.P99))
		}
	}
	print("stage latency:", stages)
	print("resolve latency by origin:", resolves)
}

// fmtSeconds renders a quantile estimate compactly (µs/ms/s by magnitude).
func fmtSeconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%6.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%6.2fms", s*1e3)
	default:
		return fmt.Sprintf("%7.3fs", s)
	}
}

// dumpObsJSON writes the full metric registry snapshot as indented JSON —
// the machine-readable counterpart of the -v breakdown, sharing its metric
// vocabulary with binebenchd's /metrics endpoint.
func dumpObsJSON(path string) error {
	if path == "-" {
		return obs.Default.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs-json: %w", err)
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs-json: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs-json: %w", err)
	}
	return nil
}

// progressPrinter renders the per-system cell counters as a single
// rewritten stderr line: "lumi 132/270  leonardo 88/308  ...".
func progressPrinter(w io.Writer) harness.ProgressFunc {
	var mu sync.Mutex
	var order []string
	state := map[string][2]int{}
	return func(system string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := state[system]; !ok {
			order = append(order, system)
		}
		state[system] = [2]int{done, total}
		parts := make([]string, len(order))
		for i, s := range order {
			parts[i] = fmt.Sprintf("%s %d/%d", s, state[s][0], state[s][1])
		}
		// Pad-and-truncate to one fixed-width line so the \r rewrite never
		// wraps and scrolls on narrow terminals.
		const width = 79
		line := strings.Join(parts, "  ")
		if len(line) > width {
			line = line[:width]
		}
		fmt.Fprintf(w, "\r%-*s", width, line)
	}
}

func run(ctx context.Context, w io.Writer, experiment string, opts harness.Options) error {
	if experiment == "all" {
		return harness.RunAll(ctx, w, opts)
	}
	// Single experiments compile and render through the same plan path the
	// binebenchd artifact service uses, so CLI files and served responses
	// are byte-identical by construction.
	return harness.RunExperiment(ctx, w, experiment, opts)
}
