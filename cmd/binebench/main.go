// Command binebench regenerates the tables and figures of the Bine Trees
// paper (SC '25) on the simulated systems. Each experiment prints a text
// rendering of the corresponding paper artifact; EXPERIMENTS.md at the
// repository root maps every experiment name to its paper artifact.
//
// Sweep cells are evaluated on a worker pool (one worker per CPU by
// default; -workers overrides) with a process-wide trace cache: every
// schedule is recorded once and one structural replay per (trace,
// placement) scores all vector sizes, so -full runs scale with the hardware
// while producing byte-identical artifacts at any pool width. With
// -trace-cache the recordings also persist to a content-addressed on-disk
// store shared across runs — a warm store makes repeated -full runs and CI
// sweeps skip every recording (identical output, pinned by tests). -v
// prints the cache counters (memory/disk hits, recordings, evictions) to
// stderr so warm and cold runs are observable.
//
// Usage:
//
//	binebench -experiment all                     # everything, quick sweep
//	binebench -experiment table3 -full            # one artifact at full paper scale
//	binebench -experiment all -workers 1
//	binebench -experiment all -trace-cache ~/.cache/binetrees -v
//
// Experiments: fig1, eq2, fig5, table3, fig9a, fig9b, table4, fig10a,
// fig10b, table5, fig11a, fig11b, fig14, hier, ppn, appD, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"binetrees/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "which paper artifact to regenerate")
	full := flag.Bool("full", false, "run the full paper-scale sweep (slower) instead of the quick one")
	workers := flag.Int("workers", 0, "sweep worker pool width (0 = one per CPU)")
	traceCache := flag.String("trace-cache", "", "directory of the persistent trace store (empty = in-process cache only)")
	verbose := flag.Bool("v", false, "print trace-cache statistics to stderr after the run")
	flag.Parse()
	if err := harness.SetTraceStore(*traceCache); err != nil {
		fmt.Fprintln(os.Stderr, "binebench:", err)
		os.Exit(1)
	}
	opts := harness.Options{Quick: !*full, Workers: *workers}
	err := run(os.Stdout, *experiment, opts)
	if *verbose {
		fmt.Fprintln(os.Stderr, harness.TraceCacheStats())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "binebench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, experiment string, opts harness.Options) error {
	switch experiment {
	case "all":
		return harness.RunAll(w, opts)
	case "fig1":
		return harness.Fig1(w)
	case "eq2":
		return harness.Eq2(w)
	case "fig5":
		return harness.Fig5(w, opts)
	case "table3":
		return harness.TableBinomial(w, harness.LUMI(), opts)
	case "fig9a":
		return harness.HeatmapAllreduce(w, harness.LUMI(), opts)
	case "fig9b":
		return harness.Boxplots(w, harness.LUMI(), opts)
	case "table4":
		return harness.TableBinomial(w, harness.Leonardo(), opts)
	case "fig10a":
		return harness.HeatmapAllreduce(w, harness.Leonardo(), opts)
	case "fig10b":
		return harness.Boxplots(w, harness.Leonardo(), opts)
	case "table5":
		return harness.TableBinomial(w, harness.MareNostrum(), opts)
	case "fig11a":
		return harness.Boxplots(w, harness.MareNostrum(), opts)
	case "fig11b":
		return harness.Fig11b(w, opts)
	case "fig14":
		return harness.Fig14(w, opts)
	case "hier":
		return harness.Hier(w, opts)
	case "ppn":
		return harness.PPN(w, opts)
	case "appD":
		return harness.AppD(w)
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}
