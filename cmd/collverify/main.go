// Command collverify runs every registered collective algorithm over a real
// TCP fabric and verifies the results against locally computed expectations
// — an end-to-end smoke test of the full stack (sockets, matching,
// schedules, reductions).
//
// Usage:
//
//	collverify -p 8 -blocks 4
package main

import (
	"flag"
	"fmt"
	"os"

	"binetrees/internal/coll"
	"binetrees/internal/fabric"
)

func main() {
	p := flag.Int("p", 8, "number of ranks (power of two exercises every algorithm)")
	blocks := flag.Int("blocks", 4, "elements per block")
	flag.Parse()
	if err := run(*p, *blocks); err != nil {
		fmt.Fprintln(os.Stderr, "collverify:", err)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func input(r, n int) []int32 {
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(r*131 + i*7)
	}
	return v
}

func run(p, bs int) error {
	n := p * bs
	pow2 := p&(p-1) == 0
	wantRed := input(0, n)
	for r := 1; r < p; r++ {
		coll.OpSum.Apply(wantRed, input(r, n))
	}
	full := make([]int32, n)
	for r := 0; r < p; r++ {
		copy(full[r*bs:], input(r, bs))
	}
	checked := 0
	for _, algo := range coll.Registry() {
		if algo.Pow2Only && !pow2 {
			continue
		}
		run, err := algo.Make(p, 0)
		if err != nil {
			return fmt.Errorf("%v/%s: %w", algo.Coll, algo.Name, err)
		}
		f, err := fabric.NewTCP(p)
		if err != nil {
			return err
		}
		err = fabric.Run(f, func(c fabric.Comm) error {
			me := c.Rank()
			inLen, outLen := algo.Coll.InOutLens(p, n)
			in := make([]int32, inLen)
			var out []int32
			if outLen > 0 {
				out = make([]int32, outLen)
			}
			switch algo.Coll {
			case coll.CBcast:
				if me == 0 {
					copy(in, input(0, n))
				}
			case coll.CGather, coll.CAllgather:
				copy(in, input(me, bs))
			default:
				copy(in, input(me, n))
			}
			if err := run(c, 0, in, out, coll.OpSum); err != nil {
				return err
			}
			check := func(got, want []int32) error {
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("rank %d element %d: %d != %d", me, i, got[i], want[i])
					}
				}
				return nil
			}
			switch algo.Coll {
			case coll.CBcast:
				return check(in, input(0, n))
			case coll.CReduce:
				if me == 0 {
					return check(out, wantRed)
				}
			case coll.CGather:
				if me == 0 {
					return check(out, full)
				}
			case coll.CScatter:
				return check(out, input(0, n)[me*bs:(me+1)*bs])
			case coll.CReduceScatter:
				return check(out, wantRed[me*bs:(me+1)*bs])
			case coll.CAllgather:
				return check(out, full)
			case coll.CAllreduce:
				return check(in, wantRed)
			case coll.CAlltoall:
				for o := 0; o < p; o++ {
					src := input(o, n)
					if err := check(out[o*bs:(o+1)*bs], src[me*bs:(me+1)*bs]); err != nil {
						return err
					}
				}
			}
			return nil
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("%v/%s over TCP: %w", algo.Coll, algo.Name, err)
		}
		checked++
		fmt.Printf("ok  %-15s %s\n", algo.Coll, algo.Name)
	}
	fmt.Printf("%d algorithms verified over TCP on %d ranks\n", checked, p)
	return nil
}
