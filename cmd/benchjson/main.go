// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name → {ns_per_op, b_per_op, allocs_per_op,
// mb_per_s}, so CI can publish machine-readable performance trajectories
// (BENCH_pipeline.json) next to the human-readable logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_pipeline.json
//
// Input lines that are not benchmark results are ignored. The per-CPU
// suffix Go appends to benchmark names (e.g. "-8") is stripped so results
// from machines with different core counts key identically.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics are one benchmark's parsed figures; absent metrics are omitted.
type Metrics struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		var m Metrics
		seen := false
		// fields[1] is the iteration count; metrics follow as value-unit
		// pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			val := v
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = val
				seen = true
			case "B/op":
				m.BPerOp = &val
			case "allocs/op":
				m.AllocsPerOp = &val
			case "MB/s":
				m.MBPerS = &val
			}
		}
		if seen {
			out[name] = m
		}
	}
	return out, sc.Err()
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		var readers []io.Reader
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil { // map keys marshal sorted
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
