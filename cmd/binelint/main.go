// Binelint runs the repo's analyzer suite (internal/lint) over the module
// and exits non-zero on findings. CI runs it next to go vet:
//
//	go run ./cmd/binelint ./...
package main

import (
	"os"

	"binetrees/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
