// Command binetree inspects Bine and binomial tree/butterfly schedules: it
// prints, for a given rank count, the per-step communication pairs, each
// rank's parent and join step, the per-step modular distances, and (for
// butterflies) the block send sets — a debugging lens onto Sections 2 and 3
// of the paper.
//
// Usage:
//
//	binetree -p 16 -kind bine-dh -root 0
//	binetree -p 8 -butterfly bine-dd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"binetrees/internal/core"
)

func main() {
	p := flag.Int("p", 16, "number of ranks")
	kind := flag.String("kind", "bine-dh", "tree kind: bine-dh, bine-dd, binomial-dd, binomial-dh")
	bfly := flag.String("butterfly", "", "instead of a tree, print a butterfly: bine-dh, bine-dd, binomial-dh, binomial-dd, swing")
	root := flag.Int("root", 0, "tree root")
	flag.Parse()
	if err := run(*p, *kind, *bfly, *root); err != nil {
		fmt.Fprintln(os.Stderr, "binetree:", err)
		os.Exit(1)
	}
}

var treeKinds = map[string]core.Kind{
	"bine-dh":     core.BineDH,
	"bine-dd":     core.BineDD,
	"binomial-dd": core.BinomialDD,
	"binomial-dh": core.BinomialDH,
}

var bflyKinds = map[string]core.ButterflyKind{
	"bine-dh":     core.BflyBineDH,
	"bine-dd":     core.BflyBineDD,
	"binomial-dh": core.BflyBinomialDH,
	"binomial-dd": core.BflyBinomialDD,
	"swing":       core.BflySwing,
}

func run(p int, kindName, bflyName string, root int) error {
	if bflyName != "" {
		return printButterfly(p, bflyName)
	}
	kind, ok := treeKinds[kindName]
	if !ok {
		return fmt.Errorf("unknown tree kind %q", kindName)
	}
	t, err := core.NewTree(kind, p, root)
	if err != nil {
		return err
	}
	fmt.Printf("%s tree over %d ranks, root %d, %d steps\n\n", kindName, p, root, t.Steps)
	for step := 0; step < t.Steps; step++ {
		pairs := t.StepSenders(step)
		var parts []string
		maxDist := 0
		for _, pr := range pairs {
			parts = append(parts, fmt.Sprintf("%d→%d", pr[0], pr[1]))
			if d := core.ModDist(pr[0], pr[1], p); d > maxDist {
				maxDist = d
			}
		}
		fmt.Printf("step %d (max modular distance %d): %s\n", step, maxDist, strings.Join(parts, "  "))
	}
	fmt.Printf("\n%-6s %-8s %-6s %-10s %s\n", "rank", "parent", "join", "negabinary", "subtree (circular runs)")
	for r := 0; r < p; r++ {
		nb := core.RankToNB(core.Mod(r-root, p), p)
		var runs []string
		for _, run := range t.SubtreeRanges(r) {
			if run.Len == 1 {
				runs = append(runs, fmt.Sprintf("%d", run.Start))
			} else {
				runs = append(runs, fmt.Sprintf("%d..%d", run.Start, core.Mod(run.Start+run.Len-1, p)))
			}
		}
		fmt.Printf("%-6d %-8d %-6d %0*b %s\n", r, t.Parent[r], t.JoinStep[r], t.Steps, nb, strings.Join(runs, ","))
	}
	return nil
}

func printButterfly(p int, name string) error {
	kind, ok := bflyKinds[name]
	if !ok {
		return fmt.Errorf("unknown butterfly kind %q", name)
	}
	b, err := core.NewButterfly(kind, p)
	if err != nil {
		return err
	}
	fmt.Printf("%s butterfly over %d ranks, %d steps\n\n", name, p, b.S)
	for i := 0; i < b.S; i++ {
		fmt.Printf("step %d (modular distance %d):\n", i, b.ModDistAt(i))
		for r := 0; r < p; r++ {
			q := b.Partner(r, i)
			if r < q {
				fmt.Printf("  %d ⇄ %d   %d sends blocks %v\n", r, q, r, b.SendSet(r, i))
			}
		}
	}
	fmt.Printf("\npermute positions (block → reverse(ν)): ")
	for blk := 0; blk < p; blk++ {
		fmt.Printf("%d→%d ", blk, b.PermutedPosition(blk))
	}
	fmt.Println()
	return nil
}
