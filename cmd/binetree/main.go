// Command binetree inspects Bine and binomial tree/butterfly schedules: it
// prints, for a given rank count, the per-step communication pairs, each
// rank's parent and join step, the per-step modular distances, and (for
// butterflies) the block send sets — a debugging lens onto Sections 2 and 3
// of the paper.
//
// Flags:
//
//	-p         comma-separated rank counts; schedules are constructed and
//	           rendered on a worker pool and printed in the order given
//	-kind      tree kind: bine-dh, bine-dd, binomial-dd, binomial-dh
//	-butterfly print a butterfly instead of a tree: bine-dh, bine-dd,
//	           binomial-dh, binomial-dd, swing
//	-root      tree root rank
//	-workers   worker pool width (0 = one per CPU)
//	-progress  report live schedule-rendering counts on stderr
//	-trace-cache  directory of the persistent trace store shared with
//	           binebench (schedule printing records no traces, so this only
//	           selects the store the stats report on)
//	-v         print trace-cache statistics to stderr after the run
//	           (hits, recordings, and the resident columnar trace footprint)
//
// Usage:
//
//	binetree -p 16 -kind bine-dh -root 0
//	binetree -p 8 -butterfly bine-dd
//	binetree -p 256,1024,4096 -kind bine-dh -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"binetrees/internal/core"
	"binetrees/internal/harness"
	"binetrees/internal/pool"
)

func main() {
	ps := flag.String("p", "16", "number of ranks (comma-separated list renders several)")
	kind := flag.String("kind", "bine-dh", "tree kind: bine-dh, bine-dd, binomial-dd, binomial-dh")
	bfly := flag.String("butterfly", "", "instead of a tree, print a butterfly: bine-dh, bine-dd, binomial-dh, binomial-dd, swing")
	root := flag.Int("root", 0, "tree root")
	workers := flag.Int("workers", 0, "worker pool width for multiple rank counts (0 = one per CPU)")
	progress := flag.Bool("progress", false, "report live schedule-rendering counts on stderr")
	traceCache := flag.String("trace-cache", "", "directory of the persistent trace store (shared with binebench)")
	verbose := flag.Bool("v", false, "print trace-cache statistics to stderr after the run")
	flag.Parse()
	if err := harness.SetTraceStore(*traceCache); err != nil {
		fmt.Fprintln(os.Stderr, "binetree:", err)
		os.Exit(1)
	}
	err := runAll(os.Stdout, *ps, *kind, *bfly, *root, *workers, *progress)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, harness.TraceCacheStats())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "binetree:", err)
		os.Exit(1)
	}
}

// runAll renders every requested rank count: each count builds and formats
// its schedule on the pool, then the buffers are printed in argument order.
func runAll(w io.Writer, ps, kindName, bflyName string, root, workers int, progress bool) error {
	fields := strings.Split(ps, ",")
	counts := make([]int, 0, len(fields))
	for _, f := range fields {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad rank count %q", f)
		}
		counts = append(counts, p)
	}
	var done atomic.Int64
	outs, err := pool.Collect(workers, len(counts), func(i int) (string, error) {
		var sb strings.Builder
		if err := run(&sb, counts[i], kindName, bflyName, root); err != nil {
			return "", err
		}
		if progress {
			fmt.Fprintf(os.Stderr, "\rrendered %d/%d schedules", done.Add(1), len(counts))
		}
		return sb.String(), nil
	})
	if err != nil {
		return err
	}
	for i, out := range outs {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("=", 80))
		}
		fmt.Fprint(w, out)
	}
	return nil
}

var treeKinds = map[string]core.Kind{
	"bine-dh":     core.BineDH,
	"bine-dd":     core.BineDD,
	"binomial-dd": core.BinomialDD,
	"binomial-dh": core.BinomialDH,
}

var bflyKinds = map[string]core.ButterflyKind{
	"bine-dh":     core.BflyBineDH,
	"bine-dd":     core.BflyBineDD,
	"binomial-dh": core.BflyBinomialDH,
	"binomial-dd": core.BflyBinomialDD,
	"swing":       core.BflySwing,
}

func run(w io.Writer, p int, kindName, bflyName string, root int) error {
	if bflyName != "" {
		return printButterfly(w, p, bflyName)
	}
	kind, ok := treeKinds[kindName]
	if !ok {
		return fmt.Errorf("unknown tree kind %q", kindName)
	}
	t, err := core.NewTree(kind, p, root)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s tree over %d ranks, root %d, %d steps\n\n", kindName, p, root, t.Steps)
	for step := 0; step < t.Steps; step++ {
		pairs := t.StepSenders(step)
		var parts []string
		maxDist := 0
		for _, pr := range pairs {
			parts = append(parts, fmt.Sprintf("%d→%d", pr[0], pr[1]))
			if d := core.ModDist(pr[0], pr[1], p); d > maxDist {
				maxDist = d
			}
		}
		fmt.Fprintf(w, "step %d (max modular distance %d): %s\n", step, maxDist, strings.Join(parts, "  "))
	}
	fmt.Fprintf(w, "\n%-6s %-8s %-6s %-10s %s\n", "rank", "parent", "join", "negabinary", "subtree (circular runs)")
	for r := 0; r < p; r++ {
		nb := core.RankToNB(core.Mod(r-root, p), p)
		var runs []string
		for _, run := range t.SubtreeRanges(r) {
			if run.Len == 1 {
				runs = append(runs, fmt.Sprintf("%d", run.Start))
			} else {
				runs = append(runs, fmt.Sprintf("%d..%d", run.Start, core.Mod(run.Start+run.Len-1, p)))
			}
		}
		fmt.Fprintf(w, "%-6d %-8d %-6d %0*b %s\n", r, t.Parent[r], t.JoinStep[r], t.Steps, nb, strings.Join(runs, ","))
	}
	return nil
}

func printButterfly(w io.Writer, p int, name string) error {
	kind, ok := bflyKinds[name]
	if !ok {
		return fmt.Errorf("unknown butterfly kind %q", name)
	}
	b, err := core.NewButterfly(kind, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s butterfly over %d ranks, %d steps\n\n", name, p, b.S)
	for i := 0; i < b.S; i++ {
		fmt.Fprintf(w, "step %d (modular distance %d):\n", i, b.ModDistAt(i))
		for r := 0; r < p; r++ {
			q := b.Partner(r, i)
			if r < q {
				fmt.Fprintf(w, "  %d ⇄ %d   %d sends blocks %v\n", r, q, r, b.SendSet(r, i))
			}
		}
	}
	fmt.Fprintf(w, "\npermute positions (block → reverse(ν)): ")
	for blk := 0; blk < p; blk++ {
		fmt.Fprintf(w, "%d→%d ", blk, b.PermutedPosition(blk))
	}
	fmt.Fprintln(w)
	return nil
}
