// Command binebenchload is the load/soak harness for binebenchd: it drives
// the artifact endpoint with concurrent clients issuing a mixed
// experiment/full/systems workload, optionally ramping concurrency past the
// daemon's flight budget and aborting a fraction of requests mid-stream (a
// client-disconnect storm), and reports what came back — request and shed
// counts, latency quantiles, Retry-After behavior, bytes — as a JSON
// document (BENCH_serve.json) CI tracks next to BENCH_pipeline.json.
//
// The driver is intentionally closed-loop: each client issues its next
// request as soon as the previous one finishes, so offered load scales with
// concurrency and the daemon's admission control (429 + Retry-After), not
// the driver, is what bounds the work. Shed responses are successes from the
// harness's point of view — they are the behavior under test — and are
// counted separately from transport errors and 5xx.
//
// Usage:
//
//	binebenchload -addr http://localhost:8080 -duration 10s -clients 8
//	binebenchload -clients 2 -max-clients 16 -ramp 5s -abort-rate 0.2
//	binebenchload -duration 30s -require-sheds -fail-on-5xx -out BENCH_serve.json
//
// Exit status: 0 on a completed run, 1 on setup/usage errors, 2 when a
// -require-sheds or -fail-on-5xx assertion fails.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the binebenchd instance under load")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	clients := flag.Int("clients", 4, "initial concurrent clients")
	maxClients := flag.Int("max-clients", 0, "final concurrent clients after the ramp (0 = no ramp, stay at -clients)")
	ramp := flag.Duration("ramp", 0, "time over which to ramp from -clients to -max-clients (0 = all at once)")
	abortRate := flag.Float64("abort-rate", 0, "fraction of requests cancelled mid-stream (client disconnect storm), in [0,1]")
	fullRate := flag.Float64("full-rate", 0, "fraction of requests asking for full-scale artifacts (?full=true)")
	allRate := flag.Float64("all-rate", 0.1, "fraction of requests asking for the systems-selected aggregate (/artifact/all?systems=...)")
	seed := flag.Int64("seed", 1, "pseudo-random seed for the traffic mix")
	out := flag.String("out", "BENCH_serve.json", "where to write the JSON report (empty = stdout only)")
	requireSheds := flag.Bool("require-sheds", false, "exit 2 unless at least one 429 carrying Retry-After was observed")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit 2 if any 5xx response was observed")
	flag.Parse()

	if *maxClients < *clients {
		*maxClients = *clients
	}
	if *abortRate < 0 || *abortRate > 1 {
		log.Fatal("binebenchload: -abort-rate must be in [0,1]")
	}

	// The experiment list comes from the daemon itself (/statsz), so the mix
	// tracks the repo's experiment graph instead of a hard-coded copy.
	experiments, err := fetchExperiments(*addr)
	if err != nil {
		log.Fatalf("binebenchload: %v", err)
	}

	rep := newReport()
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < *maxClients; i++ {
		// Clients beyond the initial set start staggered across the ramp.
		var delay time.Duration
		if i >= *clients && *maxClients > *clients {
			delay = *ramp * time.Duration(i-*clients+1) / time.Duration(*maxClients-*clients)
		}
		wg.Add(1)
		go func(id int, delay time.Duration) {
			defer wg.Done()
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return
			}
			// Per-client RNG: deterministic under -seed, no lock contention.
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			c := &client{
				base: *addr, rng: rng, rep: rep,
				experiments: experiments,
				abortRate:   *abortRate, fullRate: *fullRate, allRate: *allRate,
			}
			for ctx.Err() == nil {
				c.one(ctx)
			}
		}(i, delay)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := rep.document(config{
		Addr: *addr, DurationSeconds: duration.Seconds(),
		Clients: *clients, MaxClients: *maxClients, RampSeconds: ramp.Seconds(),
		AbortRate: *abortRate, FullRate: *fullRate, AllRate: *allRate, Seed: *seed,
	}, elapsed)
	doc.Server = fetchServerStats(*addr)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("binebenchload: %v", err)
	}
	buf = append(buf, '\n')
	os.Stdout.Write(buf)
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("binebenchload: %v", err)
		}
	}

	if *requireSheds && doc.ShedWithRetryAfter == 0 {
		log.Print("binebenchload: FAIL: no 429 with Retry-After observed (admission control never shed)")
		os.Exit(2)
	}
	if *failOn5xx && doc.Status5xx > 0 {
		log.Printf("binebenchload: FAIL: %d 5xx responses observed", doc.Status5xx)
		os.Exit(2)
	}
}

// client is one closed-loop load generator.
type client struct {
	base        string
	rng         *rand.Rand
	rep         *report
	experiments []string
	abortRate   float64
	fullRate    float64
	allRate     float64
}

// one issues a single request from the mix and records its outcome.
func (c *client) one(ctx context.Context) {
	path := c.pick()
	abort := c.rng.Float64() < c.abortRate
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	t0 := time.Now()
	req, err := http.NewRequestWithContext(reqCtx, "GET", c.base+path, nil)
	if err != nil {
		c.rep.record(outcome{err: true}, time.Since(t0))
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // run deadline, not a server failure
		}
		c.rep.record(outcome{err: true}, time.Since(t0))
		return
	}
	defer resp.Body.Close()

	o := outcome{status: resp.StatusCode}
	if resp.StatusCode == http.StatusTooManyRequests {
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			o.retryAfter = ra
		}
		io.Copy(io.Discard, resp.Body)
		c.rep.record(o, time.Since(t0))
		return
	}
	if abort {
		// The disconnect storm: take the first chunk, then hang up.
		io.CopyN(io.Discard, resp.Body, 512)
		cancel()
		o.aborted = true
		c.rep.record(o, time.Since(t0))
		return
	}
	n, err := io.Copy(io.Discard, resp.Body)
	o.bytes = n
	if err != nil && ctx.Err() == nil {
		o.err = true
	}
	c.rep.record(o, time.Since(t0))
}

// pick draws the next request path from the traffic mix.
func (c *client) pick() string {
	r := c.rng.Float64()
	switch {
	case r < c.allRate:
		return "/artifact/all?systems=misc"
	case r < c.allRate+c.fullRate:
		return "/artifact/" + c.experiments[c.rng.Intn(len(c.experiments))] + "?full=true"
	default:
		return "/artifact/" + c.experiments[c.rng.Intn(len(c.experiments))]
	}
}

type outcome struct {
	status     int
	bytes      int64
	retryAfter int
	aborted    bool
	err        bool
}

// report accumulates outcomes across clients.
type report struct {
	mu        sync.Mutex
	total     int
	ok        int
	shed      int
	shedRA    int
	aborted   int
	errs      int
	s5xx      int
	other     map[string]int
	bytes     int64
	okLat     []float64 // full successful responses only
	shedLat   []float64
	minRA     int
	maxRA     int
	retryFreq int // sheds carrying a parseable Retry-After
}

func newReport() *report { return &report{other: map[string]int{}} }

func (r *report) record(o outcome, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	switch {
	case o.err:
		r.errs = r.errs + 1
	case o.status == http.StatusTooManyRequests:
		r.shed++
		r.shedLat = append(r.shedLat, d.Seconds())
		if o.retryAfter > 0 {
			r.shedRA++
			if r.minRA == 0 || o.retryAfter < r.minRA {
				r.minRA = o.retryAfter
			}
			if o.retryAfter > r.maxRA {
				r.maxRA = o.retryAfter
			}
		}
	case o.aborted:
		r.aborted++
	case o.status == http.StatusOK:
		r.ok++
		r.bytes += o.bytes
		r.okLat = append(r.okLat, d.Seconds())
	default:
		if o.status >= 500 {
			r.s5xx++
		}
		r.other[strconv.Itoa(o.status)]++
	}
}

type config struct {
	Addr            string  `json:"addr"`
	DurationSeconds float64 `json:"duration_seconds"`
	Clients         int     `json:"clients"`
	MaxClients      int     `json:"max_clients"`
	RampSeconds     float64 `json:"ramp_seconds"`
	AbortRate       float64 `json:"abort_rate"`
	FullRate        float64 `json:"full_rate"`
	AllRate         float64 `json:"all_rate"`
	Seed            int64   `json:"seed"`
}

type quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// document is the BENCH_serve.json shape.
type document struct {
	Config             config         `json:"config"`
	ElapsedSeconds     float64        `json:"elapsed_seconds"`
	Requests           int            `json:"requests"`
	OK                 int            `json:"ok"`
	Shed               int            `json:"shed"`
	ShedWithRetryAfter int            `json:"shed_with_retry_after"`
	Aborted            int            `json:"aborted"`
	Errors             int            `json:"errors"`
	Status5xx          int            `json:"status_5xx"`
	OtherStatus        map[string]int `json:"other_status,omitempty"`
	Bytes              int64          `json:"bytes"`
	ThroughputRPS      float64        `json:"throughput_rps"`
	OKLatencySeconds   *quantiles     `json:"ok_latency_seconds,omitempty"`
	ShedLatencySeconds *quantiles     `json:"shed_latency_seconds,omitempty"`
	RetryAfterMin      int            `json:"retry_after_min,omitempty"`
	RetryAfterMax      int            `json:"retry_after_max,omitempty"`
	// Server embeds the daemon's own /statsz admission and cache sections at
	// the end of the run, so the report pairs the client-side view with the
	// server-side counters.
	Server map[string]json.RawMessage `json:"server,omitempty"`
}

func (r *report) document(cfg config, elapsed time.Duration) document {
	r.mu.Lock()
	defer r.mu.Unlock()
	doc := document{
		Config:             cfg,
		ElapsedSeconds:     elapsed.Seconds(),
		Requests:           r.total,
		OK:                 r.ok,
		Shed:               r.shed,
		ShedWithRetryAfter: r.shedRA,
		Aborted:            r.aborted,
		Errors:             r.errs,
		Status5xx:          r.s5xx,
		Bytes:              r.bytes,
		RetryAfterMin:      r.minRA,
		RetryAfterMax:      r.maxRA,
	}
	if len(r.other) > 0 {
		doc.OtherStatus = r.other
	}
	if elapsed > 0 {
		doc.ThroughputRPS = float64(r.total) / elapsed.Seconds()
	}
	doc.OKLatencySeconds = summarize(r.okLat)
	doc.ShedLatencySeconds = summarize(r.shedLat)
	return doc
}

// summarize computes exact order-statistic quantiles over the recorded
// latencies — the sample fits in memory, so no histogram approximation.
func summarize(lat []float64) *quantiles {
	if len(lat) == 0 {
		return nil
	}
	sort.Float64s(lat)
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return &quantiles{P50: at(0.50), P90: at(0.90), P95: at(0.95), P99: at(0.99), Max: lat[len(lat)-1]}
}

// fetchExperiments asks the daemon's /statsz for the valid experiment names.
func fetchExperiments(addr string) ([]string, error) {
	resp, err := http.Get(addr + "/statsz")
	if err != nil {
		return nil, fmt.Errorf("fetching /statsz: %w", err)
	}
	defer resp.Body.Close()
	var st struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding /statsz: %w", err)
	}
	if len(st.Experiments) == 0 {
		return nil, fmt.Errorf("daemon at %s reports no experiments", addr)
	}
	return st.Experiments, nil
}

// fetchServerStats grabs the daemon's post-run admission and cache counters;
// best-effort — a report without them is still a report.
func fetchServerStats(addr string) map[string]json.RawMessage {
	resp, err := http.Get(addr + "/statsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var full map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		return nil
	}
	keep := map[string]json.RawMessage{}
	for _, k := range []string{"admission", "cache", "pool", "requests", "renders", "dedup_joins", "failures"} {
		if v, ok := full[k]; ok {
			keep[k] = v
		}
	}
	return keep
}
