// Package binetrees is a from-scratch Go implementation of Bine (binomial
// negabinary) trees and butterflies — the collective-communication
// algorithms of De Sensi et al., "Bine Trees: Enhancing Collective
// Operations by Optimizing Communication Locality" (SC '25) — together with
// the runtime, baselines, network models and experiment harness needed to
// reproduce the paper's evaluation.
//
// The public API is a small façade over the internal packages: a Cluster
// hosts p ranks over an in-process or TCP fabric, each rank gets a Rank
// handle inside Run, and the eight collectives of the paper are methods on
// Rank. Defaults follow the paper's recommendations (Bine algorithms with
// the small/large-vector switch of Sec. 4); every baseline is available by
// name through WithAlgorithm.
//
//	cl := binetrees.NewCluster(16)
//	defer cl.Close()
//	err := cl.Run(func(r *binetrees.Rank) error {
//	    buf := make([]int32, 1<<16)
//	    // ... fill buf ...
//	    return r.Allreduce(buf)
//	})
package binetrees

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Op is an elementwise reduction operator.
type Op = coll.Op

// Built-in reduction operators.
var (
	OpSum  = coll.OpSum
	OpMax  = coll.OpMax
	OpMin  = coll.OpMin
	OpProd = coll.OpProd
	OpBXor = coll.OpBXor
)

// Cluster hosts p communicating ranks.
type Cluster struct {
	fab fabric.Fabric
	rec *fabric.Recorder

	// budget scales the transport's receive deadlines with the message
	// counts of the collectives actually run (nil when the transport has a
	// fixed deadline). When recording is enabled the Recorder auto-scales
	// from observed traffic instead, so the estimate stays out of its way.
	budget  fabric.BudgetSetter
	granted atomic.Int64 // estimated messages granted so far
}

// NewCluster creates an in-process cluster of p ranks.
func NewCluster(p int) *Cluster {
	return newCluster(fabric.NewMem(p))
}

// NewTCPCluster creates a cluster whose ranks exchange length-prefixed
// frames over loopback TCP sockets.
func NewTCPCluster(p int) (*Cluster, error) {
	f, err := fabric.NewTCP(p)
	if err != nil {
		return nil, err
	}
	return newCluster(f), nil
}

func newCluster(f fabric.Fabric) *Cluster {
	cl := &Cluster{fab: f}
	if bs, ok := f.(fabric.BudgetSetter); ok {
		cl.budget = bs
	}
	return cl
}

// grantBudget accumulates a collective invocation's estimated per-rank send
// count into the transport's receive-deadline budget: long schedules —
// many collectives back to back, or large rank counts — earn deadlines
// proportional to the traffic they are about to move, rather than relying
// on the flat base timeout (which only fits short schedules). Estimates are
// deliberately generous upper bounds: an over-grant merely delays the
// detection of a genuinely deadlocked run (capped by fabric.MaxBudget),
// while an under-grant could fail a healthy one.
func (cl *Cluster) grantBudget(msgs int) {
	if cl.budget == nil || cl.rec != nil || msgs <= 0 {
		return
	}
	cl.budget.SetBudget(int(cl.granted.Add(int64(msgs))))
}

// estimateRankSends bounds the messages one rank sends in a single
// invocation of the collective over p ranks: every registered algorithm —
// trees, butterflies, rings, Bruck, pairwise, pipelines — stays within it.
func estimateRankSends(c Collective, p int) int {
	if p <= 1 {
		return 0
	}
	log := bits.Len(uint(p - 1)) // ⌈log₂ p⌉
	switch c {
	case Alltoall:
		// Pairwise and Bruck send ≤ p; the Bine alltoall resends blocks
		// across its log steps.
		return p * (log + 1)
	case ReduceScatter, Allgather, Allreduce:
		// Ring variants send 2(p−1); block-by-block butterflies ≈ p.
		return 2*p + 2*log
	default:
		// Rooted collectives: linear roots send p−1, pipelines send one
		// message per segment, trees send ≤ ⌈log₂ p⌉+1.
		return p + coll.DefaultSegments + log
	}
}

// EnableRecording wraps the cluster's transport so every message is
// captured; Trace returns the recording. Must be called before Run.
func (cl *Cluster) EnableRecording() {
	if cl.rec == nil {
		cl.rec = fabric.NewRecorder(cl.fab)
	}
}

// Trace returns the communication trace recorded so far (nil when
// recording was not enabled).
func (cl *Cluster) Trace() *fabric.Trace {
	if cl.rec == nil {
		return nil
	}
	return cl.rec.Trace()
}

// Size returns the number of ranks.
func (cl *Cluster) Size() int { return cl.fab.Size() }

// Close releases the transport.
func (cl *Cluster) Close() error { return cl.fab.Close() }

// Run drives fn concurrently on every rank and returns the first error.
func (cl *Cluster) Run(fn func(r *Rank) error) error {
	f := cl.fab
	if cl.rec != nil {
		f = cl.rec
	}
	return fabric.Run(f, func(c fabric.Comm) error {
		return fn(&Rank{c: c, cl: cl})
	})
}

// Rank is one rank's handle inside Cluster.Run.
type Rank struct {
	c    fabric.Comm
	cl   *Cluster
	seq  int // tag window sequencing across successive collectives
	opts options
}

// ID returns the rank identifier in [0, Size).
func (r *Rank) ID() int { return r.c.Rank() }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.c.Size() }

type options struct {
	root      int
	op        Op
	algorithm string
}

// Option configures one collective call.
type Option func(*options)

// WithRoot selects the root rank of rooted collectives (default 0).
func WithRoot(root int) Option { return func(o *options) { o.root = root } }

// WithOp selects the reduction operator (default OpSum).
func WithOp(op Op) Option { return func(o *options) { o.op = op } }

// WithAlgorithm forces a registered algorithm by name (see Algorithms);
// default "" picks the paper's Bine algorithm with the small/large-vector
// switch of Sec. 4.
func WithAlgorithm(name string) Option { return func(o *options) { o.algorithm = name } }

// Algorithms lists the registered algorithm names for a collective.
func Algorithms(c Collective) []string {
	var out []string
	for _, a := range coll.ByCollective(coll.Registry(), c) {
		out = append(out, a.Name)
	}
	return out
}

// Collective identifies one of the paper's eight operations.
type Collective = coll.Collective

// The eight collectives.
const (
	Bcast         = coll.CBcast
	Reduce        = coll.CReduce
	Gather        = coll.CGather
	Scatter       = coll.CScatter
	ReduceScatter = coll.CReduceScatter
	Allgather     = coll.CAllgather
	Allreduce     = coll.CAllreduce
	Alltoall      = coll.CAlltoall
)

func (r *Rank) prepare(opts []Option) (options, fabric.Comm) {
	o := options{op: OpSum}
	for _, f := range opts {
		f(&o)
	}
	// Each collective invocation gets its own tag window so back-to-back
	// collectives on the same cluster never confuse messages.
	c := coll.Offset(r.c, r.seq<<16)
	r.seq++
	return o, c
}

// pickDefault returns the paper's recommended Bine algorithm for the
// collective, vector size and rank count (the small/large switch of
// Sec. 4.4–4.5).
func pickDefault(c Collective, p, n int) string {
	_, pow2 := core.Log2(p)
	large := n >= 8*p && n%p == 0 && pow2
	switch c {
	case Bcast:
		if large {
			return "bine-scatter-allgather"
		}
		return "bine-tree"
	case Reduce:
		if large {
			return "bine-rs-gather"
		}
		return "bine-tree"
	case Gather, Scatter:
		return "bine-tree"
	case ReduceScatter:
		if !pow2 {
			return "bine-fold"
		}
		return "bine-send"
	case Allgather:
		if !pow2 {
			return "bine-fold"
		}
		return "bine-send"
	case Allreduce:
		if !pow2 {
			return "bine-fold"
		}
		if large {
			return "bine-bw"
		}
		return "bine-lat"
	case Alltoall:
		if pow2 {
			return "bine"
		}
		return "bruck"
	}
	return ""
}

func (r *Rank) dispatch(collective Collective, n int, in, out []int32, opts []Option) error {
	o, c := r.prepare(opts)
	if r.cl != nil {
		r.cl.grantBudget(estimateRankSends(collective, r.Size()))
	}
	name := o.algorithm
	if name == "" {
		name = pickDefault(collective, r.Size(), n)
	}
	algo, ok := coll.Find(coll.Registry(), collective, name)
	if !ok {
		return fmt.Errorf("binetrees: no %v algorithm named %q", collective, name)
	}
	run, err := algo.Make(r.Size(), o.root)
	if err != nil {
		return fmt.Errorf("binetrees: %v/%s: %w", collective, name, err)
	}
	return run(c, o.root, in, out, o.op)
}

// Bcast broadcasts the root's buf to every rank in place.
func (r *Rank) Bcast(buf []int32, opts ...Option) error {
	return r.dispatch(Bcast, len(buf), buf, nil, opts)
}

// Reduce folds every rank's in into out at the root (out may be nil
// elsewhere).
func (r *Rank) Reduce(in, out []int32, opts ...Option) error {
	return r.dispatch(Reduce, len(in), in, out, opts)
}

// Gather collects each rank's equal-size in block into out at the root
// (rank i's block lands at position i).
func (r *Rank) Gather(in, out []int32, opts ...Option) error {
	return r.dispatch(Gather, len(in)*r.Size(), in, out, opts)
}

// Scatter distributes the root's in vector; each rank receives its block in
// out.
func (r *Rank) Scatter(in, out []int32, opts ...Option) error {
	return r.dispatch(Scatter, len(out)*r.Size(), in, out, opts)
}

// ReduceScatter reduces in across ranks and leaves block ID() in out.
func (r *Rank) ReduceScatter(in, out []int32, opts ...Option) error {
	return r.dispatch(ReduceScatter, len(in), in, out, opts)
}

// Allgather distributes every rank's in block to all ranks' out vectors.
func (r *Rank) Allgather(in, out []int32, opts ...Option) error {
	return r.dispatch(Allgather, len(out), in, out, opts)
}

// Allreduce reduces buf across all ranks in place.
func (r *Rank) Allreduce(buf []int32, opts ...Option) error {
	return r.dispatch(Allreduce, len(buf), buf, nil, opts)
}

// Alltoall sends block i of in to rank i; out collects the blocks received
// from every rank in rank order.
func (r *Rank) Alltoall(in, out []int32, opts ...Option) error {
	return r.dispatch(Alltoall, len(in), in, out, opts)
}
