package binetrees

import (
	"binetrees/internal/coll"
	"binetrees/internal/core"
	"binetrees/internal/fabric"
)

// Torus collectives (Appendix D of the paper): ranks are treated as
// coordinates of a multidimensional torus and every transfer moves along a
// single dimension.

// torusGrant feeds the per-dimension ring/tree traffic of a torus
// collective into the cluster's receive-deadline budget (see grantBudget):
// every torus algorithm here sends at most a few full traversals of each
// ring per rank.
func (r *Rank) torusGrant() {
	if r.cl != nil {
		r.cl.grantBudget(4 * r.Size())
	}
}

// TorusAllreduce runs the torus-optimized Bine allreduce over a torus of
// the given dimensions (the product must equal the cluster size; every
// dimension must be a power of two).
func (r *Rank) TorusAllreduce(dims []int, buf []int32, opts ...Option) error {
	o, c := r.prepare(opts)
	r.torusGrant()
	tor, err := core.NewTorus(dims...)
	if err != nil {
		return err
	}
	return coll.TorusAllreduce(c, tor, buf, o.op)
}

// TorusMultiportAllreduce runs 2·D concurrent Bine allreduces, one per
// torus direction, on equal slices of buf (Appendix D.4; one NIC per
// direction, as on Fugaku). len(buf) must be divisible by 2·D·size.
func (r *Rank) TorusMultiportAllreduce(dims []int, buf []int32, opts ...Option) error {
	o, c := r.prepare(opts)
	r.torusGrant()
	tor, err := core.NewTorus(dims...)
	if err != nil {
		return err
	}
	return coll.TorusMultiportAllreduce(c, tor, buf, o.op)
}

// BucketAllreduce runs the multi-dimensional-ring Bucket baseline on the
// torus (works for any dimension sizes).
func (r *Rank) BucketAllreduce(dims []int, buf []int32, opts ...Option) error {
	o, c := r.prepare(opts)
	r.torusGrant()
	tor, err := core.NewTorus(dims...)
	if err != nil {
		return err
	}
	return coll.BucketAllreduce(c, tor, buf, o.op)
}

// TorusBcast broadcasts along one torus dimension at a time using
// per-dimension Bine trees.
func (r *Rank) TorusBcast(dims []int, buf []int32, opts ...Option) error {
	o, c := r.prepare(opts)
	r.torusGrant()
	tor, err := core.NewTorus(dims...)
	if err != nil {
		return err
	}
	return coll.TorusBcast(c, tor, core.BineDH, o.root, buf)
}

// Trace is a recorded communication trace (see Cluster.EnableRecording).
type Trace = fabric.Trace

// GlobalTraffic returns the bytes (in vector elements) a recorded trace
// moves across group boundaries, given a rank → group map — the paper's
// headline locality metric.
func GlobalTraffic(tr *Trace, groupOf []int) (global, total int64) {
	p := 0
	n := tr.NumRecords()
	for i := 0; i < n; i++ {
		if f := tr.From(i); f >= p {
			p = f + 1
		}
		if t := tr.To(i); t >= p {
			p = t + 1
		}
	}
	g := make([]int, p)
	copy(g, groupOf)
	var gl, tot int64
	for i := 0; i < n; i++ {
		tot += int64(tr.Elems(i))
		if g[tr.From(i)] != g[tr.To(i)] {
			gl += int64(tr.Elems(i))
		}
	}
	return gl, tot
}
