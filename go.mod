module binetrees

go 1.24
