// Torus multiport: the Fugaku-style collectives of Appendix D on the public
// API. A 4×4 torus runs the torus-optimized Bine allreduce, its multi-ported
// variant (one concurrent sub-collective per torus direction) and the Bucket
// baseline, verifying results and comparing step counts and per-direction
// concurrency from the recorded traces.
package main

import (
	"fmt"
	"log"

	"binetrees"
)

func main() {
	dims := []int{4, 4}
	const p = 16
	planes := 2 * len(dims)
	n := p * planes // divisible for the multiport slicing
	want := int32(p * (p - 1) / 2)

	type variant struct {
		name string
		run  func(r *binetrees.Rank, buf []int32) error
	}
	variants := []variant{
		{"bine-torus", func(r *binetrees.Rank, buf []int32) error { return r.TorusAllreduce(dims, buf) }},
		{"bine-multiport", func(r *binetrees.Rank, buf []int32) error { return r.TorusMultiportAllreduce(dims, buf) }},
		{"bucket", func(r *binetrees.Rank, buf []int32) error { return r.BucketAllreduce(dims, buf) }},
	}
	fmt.Printf("allreduce of %d elements on a %v torus (%d ranks)\n\n", n, dims, p)
	for _, v := range variants {
		cl := binetrees.NewCluster(p)
		cl.EnableRecording()
		err := cl.Run(func(r *binetrees.Rank) error {
			buf := make([]int32, n)
			for i := range buf {
				buf[i] = int32(r.ID())
			}
			if err := v.run(r, buf); err != nil {
				return err
			}
			for i, got := range buf {
				if got != want {
					return fmt.Errorf("rank %d element %d: %d != %d", r.ID(), i, got, want)
				}
			}
			return nil
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		tr := cl.Trace()
		cl.Close()
		steps := tr.Steps()
		active := 0
		for _, s := range steps {
			if len(s) > 0 {
				active++
			}
		}
		fmt.Printf("  %-15s %3d synchronous steps, %5d messages, %6d elements moved\n",
			v.name, active, tr.NumRecords(), tr.TotalElems())
	}
	fmt.Println("\nmultiport shares step numbers across its 2·D planes — they run concurrently")
	fmt.Println("on disjoint torus directions, which is how Fugaku's six TNIs are saturated (App. D.4)")
}
