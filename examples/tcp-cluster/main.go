// TCP cluster: the same collectives running over real loopback sockets —
// the hand-rolled messaging substrate standing in for MPI. Eight ranks
// exchange length-prefixed frames; the example runs a Bine allreduce, a
// gather, and an alltoall and verifies all of them.
//
// Receive deadlines scale with the work submitted: each collective call
// feeds its estimated message count into the transport's deadline budget
// (Cluster.grantBudget), so long schedules over TCP earn the wait they
// need instead of relying on the flat base timeout — the same scaling the
// Recorder applies from observed traffic on recording fabrics.
package main

import (
	"fmt"
	"log"

	"binetrees"
)

func main() {
	const (
		p  = 8
		bs = 512
		n  = p * bs
	)
	cl, err := binetrees.NewTCPCluster(p)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	err = cl.Run(func(r *binetrees.Rank) error {
		me := int32(r.ID())
		// Allreduce (max): the result is the largest rank everywhere.
		buf := make([]int32, n)
		for i := range buf {
			buf[i] = me
		}
		if err := r.Allreduce(buf, binetrees.WithOp(binetrees.OpMax)); err != nil {
			return err
		}
		if buf[0] != p-1 {
			return fmt.Errorf("allreduce max: got %d", buf[0])
		}
		// Gather to rank 2.
		block := make([]int32, bs)
		for i := range block {
			block[i] = me
		}
		full := make([]int32, n)
		if err := r.Gather(block, full, binetrees.WithRoot(2)); err != nil {
			return err
		}
		if r.ID() == 2 {
			for o := 0; o < p; o++ {
				if full[o*bs] != int32(o) {
					return fmt.Errorf("gather block %d: got %d", o, full[o*bs])
				}
			}
			fmt.Printf("rank 2 gathered %d blocks over TCP\n", p)
		}
		// Alltoall.
		in := make([]int32, n)
		for d := 0; d < p; d++ {
			for i := 0; i < bs; i++ {
				in[d*bs+i] = me*100 + int32(d)
			}
		}
		out := make([]int32, n)
		if err := r.Alltoall(in, out); err != nil {
			return err
		}
		for o := 0; o < p; o++ {
			if out[o*bs] != int32(o)*100+me {
				return fmt.Errorf("alltoall from %d: got %d", o, out[o*bs])
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("allreduce, gather and alltoall verified over loopback TCP on", p, "ranks")
}
