// Dragonfly allreduce: a LUMI-flavoured scenario on the public API. 256
// ranks are spread over Dragonfly groups with irregular run lengths (the
// fragmented-allocation regime of the paper's Fig. 5); the example records
// every allreduce algorithm's trace and compares the inter-group traffic —
// the quantity Bine trees are designed to reduce.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"binetrees"
)

func main() {
	const (
		p = 256
		n = p * 4
	)
	// Fragmented placement: irregular group run lengths around a 124-node
	// Dragonfly group size scaled down, seeded for reproducibility.
	rng := rand.New(rand.NewSource(42))
	groupOf := make([]int, p)
	group, left := 0, 0
	for i := range groupOf {
		if left == 0 {
			group++
			left = 6 + rng.Intn(26)
		}
		groupOf[i] = group
		left--
	}
	type row struct {
		algo   string
		global int64
		total  int64
	}
	var rows []row
	for _, algo := range binetrees.Algorithms(binetrees.Allreduce) {
		cl := binetrees.NewCluster(p)
		cl.EnableRecording()
		err := cl.Run(func(r *binetrees.Rank) error {
			buf := make([]int32, n)
			for i := range buf {
				buf[i] = int32(r.ID())
			}
			return r.Allreduce(buf, binetrees.WithAlgorithm(algo))
		})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		global, total := binetrees.GlobalTraffic(cl.Trace(), groupOf)
		cl.Close()
		rows = append(rows, row{algo, global, total})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].global < rows[j].global })
	fmt.Printf("allreduce of %d elements on %d ranks over fragmented Dragonfly groups\n", n, p)
	fmt.Printf("%-20s %14s %14s %8s\n", "algorithm", "global elems", "total elems", "global%")
	for _, r := range rows {
		fmt.Printf("%-20s %14d %14d %7.1f%%\n", r.algo, r.global, r.total,
			100*float64(r.global)/float64(r.total))
	}
	fmt.Println("\nring moves the least data across groups but needs 2(p-1) steps;")
	fmt.Println("bine-bw cuts the butterfly's global traffic at logarithmic step count (Sec. 2.4)")
}
