// Fat-tree broadcast: reproduces the paper's motivating example (Fig. 1) on
// the public API. Eight ranks sit two-per-leaf on a 2:1 oversubscribed fat
// tree; the example records the communication trace of each broadcast tree
// and reports the bytes crossing leaf boundaries: 6n for the
// distance-doubling binomial tree (Open MPI), 3n for the distance-halving
// one (MPICH) and the Bine tree.
package main

import (
	"fmt"
	"log"

	"binetrees"
)

func main() {
	const (
		p = 8
		n = 1024 // elements
	)
	// Two nodes per leaf switch: ranks 0,1 share a leaf, 2,3 share the
	// next, and so on.
	groupOf := make([]int, p)
	for i := range groupOf {
		groupOf[i] = i / 2
	}
	fmt.Printf("broadcast of %d elements over %d ranks, 2 ranks per leaf (Fig. 1 scenario)\n\n", n, p)
	for _, algo := range []string{"binomial-dd", "binomial-dh", "bine-tree"} {
		cl := binetrees.NewCluster(p)
		cl.EnableRecording()
		err := cl.Run(func(r *binetrees.Rank) error {
			buf := make([]int32, n)
			if r.ID() == 0 {
				for i := range buf {
					buf[i] = int32(i)
				}
			}
			if err := r.Bcast(buf, binetrees.WithAlgorithm(algo)); err != nil {
				return err
			}
			if buf[n-1] != int32(n-1) {
				return fmt.Errorf("rank %d did not receive the vector", r.ID())
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		global, total := binetrees.GlobalTraffic(cl.Trace(), groupOf)
		cl.Close()
		fmt.Printf("  %-12s  %5.1fn bytes on global links (%d of %d elements)\n",
			algo, float64(global)/float64(n), global, total)
	}
	fmt.Println("\npaper: 6n for distance doubling vs 3n for distance halving")
}
