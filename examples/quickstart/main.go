// Quickstart: the smallest end-to-end use of the public API — an allreduce
// across 16 in-process ranks using the paper's Bine algorithms, followed by
// the same operation with a forced baseline for comparison.
package main

import (
	"fmt"
	"log"

	"binetrees"
)

func main() {
	const (
		p = 16
		n = 1 << 10 // elements per rank
	)
	cl := binetrees.NewCluster(p)
	defer cl.Close()

	// Every rank contributes its rank id to every element; the allreduce
	// result is therefore 0+1+…+15 = 120 everywhere.
	err := cl.Run(func(r *binetrees.Rank) error {
		buf := make([]int32, n)
		for i := range buf {
			buf[i] = int32(r.ID())
		}
		if err := r.Allreduce(buf); err != nil {
			return err
		}
		if r.ID() == 0 {
			fmt.Printf("bine allreduce on %d ranks: buf[0] = %d (want %d)\n", p, buf[0], p*(p-1)/2)
		}
		// The same call with an explicit baseline algorithm.
		for i := range buf {
			buf[i] = int32(r.ID())
		}
		if err := r.Allreduce(buf, binetrees.WithAlgorithm("ring")); err != nil {
			return err
		}
		if r.ID() == 0 {
			fmt.Printf("ring allreduce on %d ranks: buf[0] = %d\n", p, buf[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered allreduce algorithms:", binetrees.Algorithms(binetrees.Allreduce))
}
