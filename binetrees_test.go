package binetrees

import (
	"fmt"
	"testing"
)

func fill(r, n int) []int32 {
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(r*100 + i)
	}
	return v
}

func sumAll(p, n int) []int32 {
	acc := make([]int32, n)
	for r := 0; r < p; r++ {
		for i, v := range fill(r, n) {
			acc[i] += v
		}
	}
	return acc
}

func TestClusterAllreduceDefaults(t *testing.T) {
	for _, p := range []int{4, 16} {
		for _, n := range []int{4, 16 * 64} { // small → bine-lat, large → bine-bw
			cl := NewCluster(p)
			want := sumAll(p, n)
			err := cl.Run(func(r *Rank) error {
				buf := fill(r.ID(), n)
				if err := r.Allreduce(buf); err != nil {
					return err
				}
				for i := range want {
					if buf[i] != want[i] {
						return fmt.Errorf("p=%d n=%d elem %d: %d != %d", p, n, i, buf[i], want[i])
					}
				}
				return nil
			})
			cl.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClusterAllCollectives(t *testing.T) {
	p, bs := 8, 4
	n := p * bs
	cl := NewCluster(p)
	defer cl.Close()
	want := sumAll(p, n)
	err := cl.Run(func(r *Rank) error {
		me := r.ID()
		// Bcast with a non-zero root.
		buf := make([]int32, n)
		if me == 3 {
			copy(buf, fill(3, n))
		}
		if err := r.Bcast(buf, WithRoot(3)); err != nil {
			return err
		}
		for i, v := range fill(3, n) {
			if buf[i] != v {
				return fmt.Errorf("bcast elem %d", i)
			}
		}
		// Reduce with max.
		out := make([]int32, n)
		if err := r.Reduce(fill(me, n), out, WithOp(OpMax)); err != nil {
			return err
		}
		if me == 0 {
			for i, v := range fill(p-1, n) {
				if out[i] != v {
					return fmt.Errorf("reduce elem %d: %d != %d", i, out[i], v)
				}
			}
		}
		// Gather / scatter round trip.
		full := make([]int32, n)
		if err := r.Gather(fill(me, bs), full); err != nil {
			return err
		}
		own := make([]int32, bs)
		if err := r.Scatter(full, own); err != nil {
			return err
		}
		if me == 0 {
			// only the root's full/own are defined end to end here
			for i, v := range fill(0, bs) {
				if own[i] != v {
					return fmt.Errorf("scatter elem %d", i)
				}
			}
		}
		// Reduce-scatter and allgather.
		rs := make([]int32, bs)
		if err := r.ReduceScatter(fill(me, n), rs); err != nil {
			return err
		}
		for i := 0; i < bs; i++ {
			if rs[i] != want[me*bs+i] {
				return fmt.Errorf("reduce-scatter elem %d", i)
			}
		}
		ag := make([]int32, n)
		if err := r.Allgather(fill(me, bs), ag); err != nil {
			return err
		}
		for o := 0; o < p; o++ {
			for i, v := range fill(o, bs) {
				if ag[o*bs+i] != v {
					return fmt.Errorf("allgather block %d elem %d", o, i)
				}
			}
		}
		// Alltoall.
		a2a := make([]int32, n)
		if err := r.Alltoall(fill(me, n), a2a); err != nil {
			return err
		}
		for o := 0; o < p; o++ {
			src := fill(o, n)
			for i := 0; i < bs; i++ {
				if a2a[o*bs+i] != src[me*bs+i] {
					return fmt.Errorf("alltoall block %d elem %d", o, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterExplicitAlgorithms(t *testing.T) {
	p, n := 8, 32
	want := sumAll(p, n)
	for _, name := range Algorithms(Allreduce) {
		cl := NewCluster(p)
		err := cl.Run(func(r *Rank) error {
			buf := fill(r.ID(), n)
			if err := r.Allreduce(buf, WithAlgorithm(name)); err != nil {
				return err
			}
			for i := range want {
				if buf[i] != want[i] {
					return fmt.Errorf("%s elem %d", name, i)
				}
			}
			return nil
		})
		cl.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(Algorithms(Allreduce)) < 5 {
		t.Error("too few allreduce algorithms exposed")
	}
}

func TestClusterUnknownAlgorithm(t *testing.T) {
	cl := NewCluster(2)
	defer cl.Close()
	err := cl.Run(func(r *Rank) error {
		got := r.Allreduce(make([]int32, 2), WithAlgorithm("no-such"))
		if got == nil {
			return fmt.Errorf("unknown algorithm accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterRecording(t *testing.T) {
	cl := NewCluster(4)
	defer cl.Close()
	cl.EnableRecording()
	if err := cl.Run(func(r *Rank) error {
		return r.Allreduce(make([]int32, 8))
	}); err != nil {
		t.Fatal(err)
	}
	tr := cl.Trace()
	if tr == nil || tr.NumRecords() == 0 {
		t.Fatal("no trace recorded")
	}
	if tr.P != 4 {
		t.Fatalf("trace P = %d", tr.P)
	}
}

func TestClusterNonPowerOfTwoDefaults(t *testing.T) {
	p, n := 6, 12
	want := sumAll(p, n)
	cl := NewCluster(p)
	defer cl.Close()
	err := cl.Run(func(r *Rank) error {
		// Rooted collectives fall back to non-power-of-two trees; the
		// alltoall default switches to Bruck.
		buf := make([]int32, n)
		if r.ID() == 0 {
			copy(buf, fill(0, n))
		}
		if err := r.Bcast(buf); err != nil {
			return err
		}
		out := make([]int32, n)
		if err := r.Reduce(fill(r.ID(), n), out); err != nil {
			return err
		}
		if r.ID() == 0 {
			for i := range want {
				if out[i] != want[i] {
					return fmt.Errorf("reduce elem %d", i)
				}
			}
		}
		a2a := make([]int32, n)
		return r.Alltoall(fill(r.ID(), n), a2a)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCluster(t *testing.T) {
	p, n := 4, 16
	cl, err := NewTCPCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want := sumAll(p, n)
	if err := cl.Run(func(r *Rank) error {
		buf := fill(r.ID(), n)
		if err := r.Allreduce(buf); err != nil {
			return err
		}
		for i := range want {
			if buf[i] != want[i] {
				return fmt.Errorf("elem %d", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
